//===- bench_contention.cpp - Concurrent-stream throughput ----------------===//
//
// Not a paper figure: the paper evaluates one micro-kernel on one core.
// This bench measures the serving-side question the governor answers
// (docs/CONCURRENCY.md): when N independent callers issue mixed-shape
// SGEMMs concurrently, how does aggregate throughput compare between
//
//   fixed_tT  — every caller plans at a fixed EXO_GEMM_THREADS=T team
//   governor  — every caller plans at the governor ceiling and each call
//               is granted a width from shape + live pool occupancy
//
// Each row runs N streams (raw std::threads, as gemmd executors would be)
// round-robin over a mixed shape set for the time budget and reports the
// aggregate GFLOPS across all streams. The fixed arms sweep {1, 2, hw}
// deduped to the host's hardware concurrency, so on a 1-core CI box the
// sweep collapses to fixed_t1 and the governor row must tie it.
//
// The never-lose gate: for every stream count, the governor arm must
// reach >= 95% of the best fixed arm. A miss exits nonzero (skipped under
// --smoke, where the shapes are too small to time meaningfully).
//
//   bench_contention [--streams "1,2,4,8"] [--seconds T] [--csv]
//                    [--json [PATH]] [--trace PATH]
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"
#include "gemm/Governor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <cstring>
#include <thread>

namespace {

struct Shape {
  int64_t M, N, K;
};

struct StreamResult {
  double Flops = 0;
  int64_t Calls = 0;
  double Seconds = 0;
};

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

} // namespace

int main(int Argc, char **Argv) {
  using namespace gemm;
  fig::Context Ctx("contention", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;

  std::vector<int64_t> StreamCounts = {1, 2, 4, 8};
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--streams") && I + 1 < Argc) {
      StreamCounts.clear();
      for (const std::string &Tok : exo::split(Argv[++I], ','))
        if (int64_t S = std::atoll(Tok.c_str()); S > 0)
          StreamCounts.push_back(S);
    }
  }
  if (Opt.Smoke)
    StreamCounts = {1, 2};

  // Mixed shapes: one square compute-bound problem, one wide-N and one
  // tall-M skewed problem, one small problem under the governor's default
  // work floor (the small one is why fixed wide teams lose: it pins
  // workers for no speedup while other streams wait).
  std::vector<Shape> Shapes = Opt.Big
                                  ? std::vector<Shape>{{1024, 1024, 1024},
                                                       {256, 2048, 256},
                                                       {2048, 256, 512},
                                                       {96, 96, 96}}
                                  : std::vector<Shape>{{512, 512, 512},
                                                       {128, 768, 128},
                                                       {768, 128, 256},
                                                       {64, 64, 64}};
  if (Opt.Smoke)
    Shapes = {{96, 96, 96}, {48, 64, 48}};

  const int64_t HW = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int64_t> FixedCounts;
  for (int64_t T : {int64_t(1), int64_t(2), HW})
    if (T <= HW &&
        std::find(FixedCounts.begin(), FixedCounts.end(), T) ==
            FixedCounts.end())
      FixedCounts.push_back(T);

  std::printf("Contention: %zu mixed shapes, streams {", Shapes.size());
  for (size_t I = 0; I < StreamCounts.size(); ++I)
    std::printf("%s%lld", I ? "," : "",
                static_cast<long long>(StreamCounts[I]));
  std::printf("}, %lld hardware thread(s)\n", static_cast<long long>(HW));

  // Shared read-only operands per shape; each stream owns its C buffer.
  int64_t MaxC = 0;
  std::vector<std::vector<float>> As, Bs;
  for (const Shape &S : Shapes) {
    As.emplace_back(S.M * S.K);
    Bs.emplace_back(S.K * S.N);
    benchutil::fillRandom(As.back().data(), As.back().size(), 7 + As.size());
    benchutil::fillRandom(Bs.back().data(), Bs.back().size(), 31 + Bs.size());
    MaxC = std::max(MaxC, S.M * S.N);
  }

  auto EngineFor = [](int64_t Threads, bool Governed) {
    EngineConfig Cfg;
    Cfg.Series = EngineSeries::Exo;
    Cfg.Isa = &exo::avx2Isa();
    Cfg.Threads = Threads;
    Cfg.Governor = Governed ? 1 : 0;
    return Cfg;
  };

  struct Arm {
    std::string Name;
    std::unique_ptr<Engine> E;
    int64_t Threads; // fixed team size, or 0 for the governor arm
  };
  std::vector<Arm> Arms;
  for (int64_t T : FixedCounts)
    Arms.push_back({"fixed_t" + std::to_string(T),
                    std::make_unique<Engine>(EngineFor(T, false)), T});
  Arms.push_back(
      {"governor", std::make_unique<Engine>(EngineFor(0, true)), 0});

  // Every arm must produce bitwise-identical results: the governed arm may
  // run any granted width, so this is the thread-count-invariance contract
  // (docs/CONCURRENCY.md) checked end to end.
  {
    std::vector<float> Ref(MaxC), Got(MaxC);
    for (size_t SI = 0; SI < Shapes.size(); ++SI) {
      const Shape &S = Shapes[SI];
      std::fill(Ref.begin(), Ref.end(), 1.0f);
      if (exo::Error Err =
              Arms.front().E->sgemm(S.M, S.N, S.K, 1.0f, As[SI].data(), S.M,
                                    Bs[SI].data(), S.K, 1.0f, Ref.data(),
                                    S.M)) {
        std::fprintf(stderr, "gemm failed: %s\n", Err.message().c_str());
        return 1;
      }
      for (size_t AI = 1; AI < Arms.size(); ++AI) {
        std::fill(Got.begin(), Got.end(), 1.0f);
        if (exo::Error Err =
                Arms[AI].E->sgemm(S.M, S.N, S.K, 1.0f, As[SI].data(), S.M,
                                  Bs[SI].data(), S.K, 1.0f, Got.data(),
                                  S.M)) {
          std::fprintf(stderr, "gemm failed: %s\n", Err.message().c_str());
          return 1;
        }
        if (std::memcmp(Ref.data(), Got.data(),
                        S.M * S.N * sizeof(float)) != 0) {
          std::fprintf(stderr,
                       "WRONG RESULT: arm %s differs from %s on "
                       "%lldx%lldx%lld\n",
                       Arms[AI].Name.c_str(), Arms.front().Name.c_str(),
                       static_cast<long long>(S.M),
                       static_cast<long long>(S.N),
                       static_cast<long long>(S.K));
          return 1;
        }
      }
    }
  }

  benchutil::Table T("contention_aggregate",
                     {"streams", "arm", "gflops", "calls"}, Opt.Csv);
  // gate[streams] = {best fixed GFLOPS, governor GFLOPS}
  std::map<int64_t, std::pair<double, double>> Gate;

  for (int64_t Streams : StreamCounts) {
    for (Arm &A : Arms) {
      std::vector<StreamResult> Results(Streams);
      std::vector<std::vector<float>> Cs(Streams,
                                         std::vector<float>(MaxC, 0.0f));
      std::atomic<bool> Go{false};
      std::atomic<bool> Failed{false};
      std::vector<std::thread> Threads;
      for (int64_t SId = 0; SId < Streams; ++SId) {
        Threads.emplace_back([&, SId] {
          while (!Go.load(std::memory_order_acquire))
            std::this_thread::yield();
          const Clock::time_point Start = Clock::now();
          const Clock::time_point Deadline =
              Start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(Opt.Seconds));
          StreamResult &R = Results[SId];
          size_t I = static_cast<size_t>(SId);
          do {
            const size_t SI = I++ % Shapes.size();
            const Shape &S = Shapes[SI];
            if (exo::Error Err = A.E->sgemm(S.M, S.N, S.K, 1.0f,
                                            As[SI].data(), S.M,
                                            Bs[SI].data(), S.K, 1.0f,
                                            Cs[SId].data(), S.M)) {
              std::fprintf(stderr, "gemm failed: %s\n",
                           Err.message().c_str());
              Failed.store(true);
              break;
            }
            R.Flops += 2.0 * S.M * S.N * S.K;
            ++R.Calls;
          } while (Clock::now() < Deadline && !Failed.load());
          R.Seconds = secondsSince(Start);
        });
      }
      Go.store(true, std::memory_order_release);
      for (std::thread &Th : Threads)
        Th.join();
      if (Failed.load())
        return 1;

      double Flops = 0, Elapsed = 0;
      int64_t Calls = 0;
      for (const StreamResult &R : Results) {
        Flops += R.Flops;
        Calls += R.Calls;
        Elapsed = std::max(Elapsed, R.Seconds);
      }
      const double G = benchutil::gflops(Flops, Elapsed);
      if (A.Threads == 0)
        Gate[Streams].second = G;
      else
        Gate[Streams].first = std::max(Gate[Streams].first, G);

      T.addRow({std::to_string(Streams), A.Name, exo::strf("%.2f", G),
                std::to_string(Calls)});
      benchutil::ReportRow Row;
      Row.Label = "s" + std::to_string(Streams);
      Row.Series = A.Name;
      Row.Value = G;
      Row.SecondsPerCall = Calls ? Elapsed / static_cast<double>(Calls) : 0;
      Row.Reps = Calls;
      Row.Threads = A.Threads ? A.Threads : Governor::global().ceiling();
      Row.Extra["streams"] = static_cast<double>(Streams);
      Row.Extra["aggregate_flops"] = Flops;
      Ctx.Rep.addRow(std::move(Row));
    }
  }
  T.print();

  // Never-lose gate: governor >= 95% of the best fixed arm per row. Too
  // noisy to be meaningful on --smoke shapes.
  bool GatePass = true;
  for (const auto &[Streams, G] : Gate) {
    const double Ratio = G.first > 0 ? G.second / G.first : 1.0;
    std::printf("contention-gate: streams=%lld governor=%.2f best_fixed=%.2f "
                "ratio=%.3f\n",
                static_cast<long long>(Streams), G.second, G.first, Ratio);
    if (Ratio < 0.95)
      GatePass = false;
  }
  std::printf("contention-gate: %s\n",
              Opt.Smoke ? "SKIP (smoke)" : GatePass ? "PASS" : "FAIL");

  int Rc = Ctx.finish();
  if (!Opt.Smoke && !GatePass)
    return 1;
  return Rc;
}
