//===- bench_ablate_edge.cpp - Edge dispatch policy ablation --------------===//
//
// Quantifies the paper's central claim in isolation: on edge-rich problems,
// dispatching to specialized generated kernels beats routing edge tiles
// through the monolithic kernel + scratch tile — with the *same* generated
// full-tile kernel in both configurations.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"

#include <array>
#include <cstdio>
#include <vector>

using namespace gemm;

namespace {

benchutil::Measurement run(Engine &E, int64_t M, int64_t N, int64_t K,
                           double Seconds) {
  std::vector<float> A(M * K), B(K * N), C(M * N, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);
  return benchutil::measure(
      [&] {
        E.sgemm(M, N, K, 1.f, A.data(), M, B.data(), K, 1.f, C.data(), M);
      },
      Seconds);
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("ablate_edge", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Ablation: specialized edge kernels vs scratch-tile "
              "fallback (8x12 full tile in both)\n");

  // Shapes chosen so edge tiles dominate: m % 8 and n % 12 far from 0.
  std::vector<std::array<int64_t, 3>> Problems = {
      {100, 100, 256}, {49, 512, 512},  {196, 256, 512},
      {260, 62, 512},  {804, 110, 300}, {512, 516, 512},
  };
  Problems = fig::smokeSlice(std::move(Problems), Opt.Smoke);

  // Both Engines pin the same 8x12 full tile; only edge dispatch differs.
  EngineConfig SpecCfg;
  SpecCfg.Series = EngineSeries::Exo;
  SpecCfg.ForceMR = 8;
  SpecCfg.ForceNR = 12;
  Engine Specialized(SpecCfg);
  EngineConfig ScrCfg = SpecCfg;
  ScrCfg.SpecializeEdges = false;
  Engine Scratch(ScrCfg);

  benchutil::Table T("ablate_edge_gflops",
                     {"m x n x k", "specialized_edges", "scratch_fallback"},
                     Opt.Csv);
  for (const auto &[M, N, K] : Problems) {
    std::string Label = exo::strf("%lldx%lldx%lld", static_cast<long long>(M),
                                  static_cast<long long>(N),
                                  static_cast<long long>(K));
    double Flops = 2.0 * M * N * K;
    benchutil::Measurement MSpec = run(Specialized, M, N, K, Opt.Seconds);
    benchutil::Measurement MScr = run(Scratch, M, N, K, Opt.Seconds);
    T.addRow(Label,
             {fig::addGemmRow(Ctx, Label, "specialized_edges", M, N, K,
                              MSpec, Flops),
              fig::addGemmRow(Ctx, Label, "scratch_fallback", M, N, K, MScr,
                              Flops)});
  }
  T.print();
  return Ctx.finish();
}
