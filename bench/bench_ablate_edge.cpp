//===- bench_ablate_edge.cpp - Edge dispatch policy ablation --------------===//
//
// Quantifies the paper's central claim in isolation: on edge-rich problems,
// dispatching to specialized generated kernels beats routing edge tiles
// through the monolithic kernel + scratch tile — with the *same* generated
// full-tile kernel in both configurations.
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "exo/support/Str.h"
#include "gemm/ExoProvider.h"
#include "gemm/Gemm.h"

#include <array>
#include <cstdio>
#include <vector>

using namespace gemm;

namespace {

double run(ExoProvider &P, int64_t M, int64_t N, int64_t K, double Seconds) {
  GemmPlan Plan = GemmPlan::standard(P);
  std::vector<float> A(M * K), B(K * N), C(M * N, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);
  double Secs = benchutil::timeIt(
      [&] {
        blisGemm(Plan, P, M, N, K, 1.f, A.data(), M, B.data(), K, 1.f,
                 C.data(), M);
      },
      Seconds);
  return benchutil::gflops(2.0 * M * N * K, Secs);
}

} // namespace

int main(int Argc, char **Argv) {
  benchutil::BenchOptions Opt = benchutil::BenchOptions::parse(Argc, Argv);
  std::printf("Ablation: specialized edge kernels vs scratch-tile "
              "fallback (8x12 full tile in both)\n");

  // Shapes chosen so edge tiles dominate: m % 8 and n % 12 far from 0.
  const std::vector<std::array<int64_t, 3>> Problems = {
      {100, 100, 256}, {49, 512, 512},  {196, 256, 512},
      {260, 62, 512},  {804, 110, 300}, {512, 516, 512},
  };

  benchutil::Table T("ablate_edge_gflops",
                     {"m x n x k", "specialized_edges", "scratch_fallback"},
                     Opt.Csv);
  for (const auto &[M, N, K] : Problems) {
    ExoProvider Specialized(8, 12);
    ExoProvider Scratch(8, 12);
    Scratch.setSpecializeEdges(false);
    T.addRow(exo::strf("%lldx%lldx%lld", static_cast<long long>(M),
                       static_cast<long long>(N),
                       static_cast<long long>(K)),
             {run(Specialized, M, N, K, Opt.Seconds),
              run(Scratch, M, N, K, Opt.Seconds)});
  }
  T.print();
  return 0;
}
