//===- FigCommon.h - Shared series setup for the figure benches -----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four series of the paper's GEMM figures (14-18):
///
///   ALG+NEON — BLIS-like algorithm + hand-vector (intrinsics-style) kernel
///   ALG+BLIS — BLIS-like algorithm + BLIS-style unrolled kernel, no
///              prefetch (the paper notes ALG+ does not use BLIS's
///              in-kernel prefetching)
///   ALG+EXO  — BLIS-like algorithm + generated kernels, shape picked per
///              problem, specialized edge kernels
///   BLIS     — the library emulation: BLIS-style kernel *with* its
///              in-kernel prefetch, monolithic edge handling
///
/// Every bench measures through benchutil::measure() (one warm-up, reps
/// until the time budget, obs stage attribution around the timed reps)
/// and reports through a fig::Context, which owns the shared epilogue:
/// cache-counter dump, BENCH_*.json emission (--json) and chrome-trace
/// export (--trace). See docs/OBSERVABILITY.md.
///
/// With --remote [SOCKET] the four local series collapse into a single
/// "gemmd" series whose calls travel through gemm::Client to a running
/// daemon (docs/GEMMD.md) — the same measurement loop, verification and
/// report plumbing, but the numbers include the IPC round trip.
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_FIGCOMMON_H
#define BENCH_FIGCOMMON_H

#include "benchutil/Bench.h"
#include "benchutil/Report.h"
#include "gemm/Engine.h"
#include "gemm/ExoProvider.h"
#include "gemm/Gemm.h"
#include "gemm/Kernels.h"
#include "gemm/RefGemm.h"
#include "gemm/ThreadPool.h"
#include "ipc/Client.h"

#include <cstdio>
#include <memory>
#include <vector>

namespace fig {

/// --remote state, set once by Context from the parsed options.
inline bool &remoteMode() {
  static bool Remote = false;
  return Remote;
}

/// The one shared session to the daemon in --remote runs (lazy connect on
/// first call; the socket path is fixed before first use by Context).
inline gemm::Client &remoteClient(const std::string &Socket = "") {
  static gemm::Client Client([&] {
    gemm::Client::Options O;
    O.SocketPath = Socket;
    return O;
  }());
  return Client;
}

inline const std::vector<std::string> &seriesNames() {
  static const std::vector<std::string> Local = {"ALG+NEON", "ALG+BLIS",
                                                 "ALG+EXO", "BLIS"};
  static const std::vector<std::string> Remote = {"gemmd"};
  return remoteMode() ? Remote : Local;
}

/// Table header for the per-series columns: a leading label column, one
/// column per *active* series (so --remote's collapse to "gemmd" is
/// reflected), then any trailing columns.
inline std::vector<std::string>
seriesHeader(const char *First,
             std::initializer_list<const char *> Tail = {}) {
  std::vector<std::string> H{First};
  for (const std::string &S : seriesNames())
    H.push_back(S);
  for (const char *T : Tail)
    H.emplace_back(T);
  return H;
}

/// Bench epilogue: dumps the kernel-cache counters accumulated over the
/// run to stderr (so --csv output stays clean). Pre-warming the persistent
/// cache (`ukr_cachectl warm`, see docs/KERNEL_CACHE.md) shows up here as
/// disk-hits with zero compiles. Also reports the macro-kernel team size
/// the run resolved to — the figure benches must say "gemm-threads: 1"
/// for their numbers to be comparable to the paper's single-core
/// methodology (EXO_GEMM_THREADS, when set, applies to every series).
inline void dumpCacheStats() {
  std::fprintf(stderr, "gemm-threads: %lld (plan default; set "
                       "EXO_GEMM_THREADS to override)\n",
               static_cast<long long>(gemm::resolveGemmThreads(0)));
  ukr::printCacheStats(ukr::globalCacheStats(), stderr);
}

/// Owns the CLI options and the JSON reporter of one bench binary, and
/// runs the shared epilogue. Usage:
///
///   fig::Context Ctx("fig14_square", Argc, Argv);
///   ... Ctx.Opt, Ctx.Rep.addRow(...) ...
///   return Ctx.finish();
class Context {
public:
  Context(const char *BenchName, int Argc, char **Argv)
      : Opt(benchutil::BenchOptions::parse(Argc, Argv)), Rep(BenchName),
        BenchName(BenchName) {
    Opt.applyObs();
    remoteMode() = Opt.Remote;
    if (Opt.Remote)
      remoteClient(Opt.RemoteSocket); // fix the socket before first use
    Rep.setOption("seconds", Opt.Seconds);
    Rep.setOption("big", Opt.Big);
    Rep.setOption("smoke", Opt.Smoke);
    Rep.setOption("remote", Opt.Remote);
    Rep.setField("gemm_threads", gemm::resolveGemmThreads(0));
  }

  /// Dumps cache stats and writes the JSON report / chrome trace when
  /// requested. Returns the process exit code.
  int finish() {
    dumpCacheStats();
    int Rc = 0;
    if (std::string Path = Opt.jsonPathFor(BenchName); !Path.empty()) {
      if (exo::Error E = Rep.write(Path)) {
        std::fprintf(stderr, "bench-json: %s\n", E.message().c_str());
        Rc = 1;
      } else {
        std::printf("bench-json: wrote %s (%zu rows)\n", Path.c_str(),
                    Rep.rowCount());
      }
    }
    if (!Opt.TracePath.empty()) {
      if (exo::Error E = obs::writeChromeTrace(Opt.TracePath)) {
        std::fprintf(stderr, "bench-trace: %s\n", E.message().c_str());
        Rc = 1;
      } else {
        std::printf("bench-trace: wrote %s\n", Opt.TracePath.c_str());
      }
    }
    return Rc;
  }

  benchutil::BenchOptions Opt;
  benchutil::Reporter Rep;

private:
  std::string BenchName;
};

/// `--smoke` shape selection: keeps only the last \p Keep entries (the
/// dnn layer tables get smaller toward the end; size sweeps stay cheap
/// with any slice since the budget is also clamped).
template <typename T>
std::vector<T> smokeSlice(std::vector<T> V, bool Smoke, size_t Keep = 2) {
  if (Smoke && V.size() > Keep)
    V.erase(V.begin(), V.end() - static_cast<long>(Keep));
  return V;
}

/// One series' result for one GEMM problem.
struct SeriesPoint {
  std::string Series;
  double Gflops = 0; ///< 0 when the series failed validation
  benchutil::Measurement M;
};

/// The Engine behind one figure series, shared across every problem of a
/// bench run so repeated shapes hit the plan cache the way serving traffic
/// would. All four series use 256-bit kernels: the baselines are AVX2 by
/// construction, and ALG+EXO is held to the same vector width for a fair
/// like-for-like (in the paper every series is 128-bit Neon). The wider
/// AVX-512 kernels appear in bench_ablate_isa instead.
inline gemm::Engine &seriesEngine(size_t PI) {
  using gemm::EngineSeries;
  auto Mk = [](EngineSeries S) {
    gemm::EngineConfig Cfg;
    Cfg.Series = S;
    if (S == EngineSeries::Exo)
      Cfg.Isa = &exo::avx2Isa();
    return Cfg;
  };
  static gemm::Engine Engines[4] = {
      gemm::Engine(Mk(EngineSeries::HandVector)),
      gemm::Engine(Mk(EngineSeries::Blis)),
      gemm::Engine(Mk(EngineSeries::Exo)),
      gemm::Engine(Mk(EngineSeries::BlisPrefetch))};
  return Engines[PI];
}

/// Measures one GEMM problem across the four series (ordering of
/// seriesNames()), validating each result against the reference on first
/// use of a shape. Each series runs through its Engine front door: the
/// verification call plans (and caches) the shape, so the timed reps
/// exercise the hot plan-cache path.
inline std::vector<SeriesPoint> gemmSeriesRun(int64_t M, int64_t N,
                                              int64_t K,
                                              double MinSeconds) {
  using namespace gemm;
  std::vector<float> A(M * K), B(K * N), C(M * N);
  benchutil::fillRandom(A.data(), A.size(), 11);
  benchutil::fillRandom(B.data(), B.size(), 22);

  std::vector<SeriesPoint> Out;
  double Flops = 2.0 * M * N * K;

  if (remoteMode()) {
    // One series, same protocol: verify against the reference once, then
    // time the remote round trip on the daemon's warm plan cache.
    Client &Cl = remoteClient();
    SeriesPoint Pt;
    Pt.Series = seriesNames()[0];
    std::vector<float> CRef(M * N, 1.0f), CChk(M * N, 1.0f);
    refSgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, CRef.data(), M);
    exo::Error Err = Cl.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f,
                              CChk.data(), M);
    if (Err) {
      std::fprintf(stderr, "series %s failed: %s\n", Pt.Series.c_str(),
                   Err.message().c_str());
      Out.push_back(Pt);
      return Out;
    }
    float Diff = benchutil::maxAbsDiff(CRef.data(), CChk.data(), CRef.size());
    if (Diff > 1e-3f * static_cast<float>(K)) {
      std::fprintf(stderr, "series %s WRONG RESULT (maxdiff %g)\n",
                   Pt.Series.c_str(), Diff);
      Out.push_back(Pt);
      return Out;
    }
    Pt.M = benchutil::measure(
        [&] {
          Cl.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, C.data(),
                   M);
        },
        MinSeconds);
    Pt.Gflops = benchutil::gflops(Flops, Pt.M.SecondsPerCall);
    Out.push_back(std::move(Pt));
    return Out;
  }

  for (size_t PI = 0; PI != seriesNames().size(); ++PI) {
    Engine &E = seriesEngine(PI);
    SeriesPoint Pt;
    Pt.Series = seriesNames()[PI];
    // One verified call before timing.
    std::vector<float> CRef(M * N, 1.0f), CChk(M * N, 1.0f);
    refSgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, CRef.data(), M);
    exo::Error Err = E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f,
                             CChk.data(), M);
    if (Err) {
      std::fprintf(stderr, "series %s failed: %s\n", Pt.Series.c_str(),
                   Err.message().c_str());
      Out.push_back(Pt);
      continue;
    }
    float Diff = benchutil::maxAbsDiff(CRef.data(), CChk.data(), CRef.size());
    if (Diff > 1e-3f * static_cast<float>(K)) {
      std::fprintf(stderr, "series %s WRONG RESULT (maxdiff %g)\n",
                   Pt.Series.c_str(), Diff);
      Out.push_back(Pt);
      continue;
    }
    Pt.M = benchutil::measure(
        [&] {
          E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, C.data(),
                  M);
        },
        MinSeconds);
    Pt.Gflops = benchutil::gflops(Flops, Pt.M.SecondsPerCall);
    Out.push_back(std::move(Pt));
  }
  return Out;
}

/// GFLOPS per series — thin view over gemmSeriesRun for callers that only
/// table the numbers.
inline std::vector<double> gemmSeriesGflops(int64_t M, int64_t N, int64_t K,
                                            double MinSeconds) {
  std::vector<double> Out;
  for (const SeriesPoint &Pt : gemmSeriesRun(M, N, K, MinSeconds))
    Out.push_back(Pt.Gflops);
  return Out;
}

/// Appends one GFLOPS row for a single measured kernel/GEMM call and
/// returns the GFLOPS value (for tabling). \p Flops is per call.
inline double addGemmRow(Context &Ctx, const std::string &Label,
                         const std::string &Series, int64_t M, int64_t N,
                         int64_t K, const benchutil::Measurement &Meas,
                         double Flops) {
  benchutil::ReportRow Row;
  Row.Label = Label;
  Row.Series = Series;
  Row.Value = benchutil::gflops(Flops, Meas.SecondsPerCall);
  Row.SecondsPerCall = Meas.SecondsPerCall;
  Row.Reps = Meas.Reps;
  Row.Threads = gemm::resolveGemmThreads(0);
  Row.M = M;
  Row.N = N;
  Row.K = K;
  Row.Stages = Meas.Stages;
  double Out = Row.Value;
  Ctx.Rep.addRow(std::move(Row));
  return Out;
}

/// Appends one report row per series to \p Ctx for a GEMM problem point.
/// \p Metric is "gflops" (better=higher) or "seconds" (better=lower);
/// the other quantity still rides along in the row.
inline void addSeriesRows(Context &Ctx, const std::string &Label, int64_t M,
                          int64_t N, int64_t K,
                          const std::vector<SeriesPoint> &Points,
                          const std::string &Metric = "gflops") {
  for (const SeriesPoint &Pt : Points) {
    benchutil::ReportRow Row;
    Row.Label = Label;
    Row.Series = Pt.Series;
    Row.Metric = Metric;
    Row.Better = Metric == "seconds" ? "lower" : "higher";
    Row.Value = Metric == "seconds" ? Pt.M.SecondsPerCall : Pt.Gflops;
    Row.SecondsPerCall = Pt.M.SecondsPerCall;
    Row.Reps = Pt.M.Reps;
    Row.Threads = gemm::resolveGemmThreads(0);
    Row.M = M;
    Row.N = N;
    Row.K = K;
    Row.Stages = Pt.M.Stages;
    Ctx.Rep.addRow(std::move(Row));
  }
}

} // namespace fig

#endif // BENCH_FIGCOMMON_H
