//===- FigCommon.h - Shared series setup for the figure benches -----------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four series of the paper's GEMM figures (14-18):
///
///   ALG+NEON — BLIS-like algorithm + hand-vector (intrinsics-style) kernel
///   ALG+BLIS — BLIS-like algorithm + BLIS-style unrolled kernel, no
///              prefetch (the paper notes ALG+ does not use BLIS's
///              in-kernel prefetching)
///   ALG+EXO  — BLIS-like algorithm + generated kernels, shape picked per
///              problem, specialized edge kernels
///   BLIS     — the library emulation: BLIS-style kernel *with* its
///              in-kernel prefetch, monolithic edge handling
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_FIGCOMMON_H
#define BENCH_FIGCOMMON_H

#include "benchutil/Bench.h"
#include "gemm/ExoProvider.h"
#include "gemm/Gemm.h"
#include "gemm/Kernels.h"
#include "gemm/RefGemm.h"
#include "gemm/ThreadPool.h"

#include <cstdio>
#include <memory>
#include <vector>

namespace fig {

inline const std::vector<std::string> &seriesNames() {
  static const std::vector<std::string> Names = {"ALG+NEON", "ALG+BLIS",
                                                 "ALG+EXO", "BLIS"};
  return Names;
}

/// Measures one GEMM problem across the four series; returns GFLOPS per
/// series (ordering of seriesNames()). Also validates each result against
/// the reference on first use of a shape.
inline std::vector<double> gemmSeriesGflops(int64_t M, int64_t N, int64_t K,
                                            double MinSeconds) {
  using namespace gemm;
  std::vector<float> A(M * K), B(K * N), C(M * N);
  benchutil::fillRandom(A.data(), A.size(), 11);
  benchutil::fillRandom(B.data(), B.size(), 22);

  // All four series use 256-bit kernels: the baselines are AVX2 by
  // construction, and ALG+EXO is held to the same vector width for a fair
  // like-for-like (in the paper every series is 128-bit Neon). The wider
  // AVX-512 kernels appear in bench_ablate_isa instead.
  auto [Mr, Nr] = ExoProvider::pickShape(M, N, &exo::avx2Isa());
  std::vector<std::unique_ptr<KernelProvider>> Providers;
  Providers.push_back(
      std::make_unique<FixedProvider>(handVectorKernel(), "ALG+NEON"));
  Providers.push_back(
      std::make_unique<FixedProvider>(blisKernel(), "ALG+BLIS"));
  Providers.push_back(std::make_unique<ExoProvider>(Mr, Nr, &exo::avx2Isa()));
  Providers.push_back(
      std::make_unique<FixedProvider>(blisKernelPrefetch(), "BLIS"));

  std::vector<double> Out;
  double Flops = 2.0 * M * N * K;
  for (auto &P : Providers) {
    GemmPlan Plan = GemmPlan::standard(*P);
    // One verified call before timing.
    std::vector<float> CRef(M * N, 1.0f), CChk(M * N, 1.0f);
    refSgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, CRef.data(), M);
    exo::Error Err = blisGemm(Plan, *P, M, N, K, 1.0f, A.data(), M, B.data(),
                              K, 1.0f, CChk.data(), M);
    if (Err) {
      std::fprintf(stderr, "series %s failed: %s\n", P->name(),
                   Err.message().c_str());
      Out.push_back(0);
      continue;
    }
    float Diff = benchutil::maxAbsDiff(CRef.data(), CChk.data(), CRef.size());
    if (Diff > 1e-3f * static_cast<float>(K)) {
      std::fprintf(stderr, "series %s WRONG RESULT (maxdiff %g)\n",
                   P->name(), Diff);
      Out.push_back(0);
      continue;
    }
    double Secs = benchutil::timeIt(
        [&] {
          blisGemm(Plan, *P, M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f,
                   C.data(), M);
        },
        MinSeconds);
    Out.push_back(benchutil::gflops(Flops, Secs));
  }
  return Out;
}

/// Measures seconds per call for one series index (same ordering) — used by
/// the aggregated-time figures.
inline std::vector<double> gemmSeriesSeconds(int64_t M, int64_t N, int64_t K,
                                             double MinSeconds) {
  std::vector<double> G = gemmSeriesGflops(M, N, K, MinSeconds);
  std::vector<double> S;
  for (double V : G)
    S.push_back(V > 0 ? 2.0 * M * N * K / (V * 1e9) : 0.0);
  return S;
}

/// Bench epilogue: dumps the kernel-cache counters accumulated over the
/// run to stderr (so --csv output stays clean). Pre-warming the persistent
/// cache (`ukr_cachectl warm`, see docs/KERNEL_CACHE.md) shows up here as
/// disk-hits with zero compiles. Also reports the macro-kernel team size
/// the run resolved to — the figure benches must say "gemm-threads: 1"
/// for their numbers to be comparable to the paper's single-core
/// methodology (EXO_GEMM_THREADS, when set, applies to every series).
inline void dumpCacheStats() {
  std::fprintf(stderr, "gemm-threads: %lld (plan default; set "
                       "EXO_GEMM_THREADS to override)\n",
               static_cast<long long>(gemm::resolveGemmThreads(0)));
  ukr::printCacheStats(ukr::globalCacheStats(), stderr);
}

} // namespace fig

#endif // BENCH_FIGCOMMON_H
