//===- bench_fig18_vgg_time.cpp - Paper Figure 18 -------------------------===//
//
// Aggregated GEMM time for one VGG16 inference pass (batch 1). Expected
// shape (paper Fig. 18): ALG+EXO and BLIS close at the top.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "dnn/Models.h"

int main(int Argc, char **Argv) {
  fig::Context Ctx("fig18_vgg_time", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Figure 18: aggregated inference GEMM time, VGG16\n");
  std::vector<dnn::LayerGemm> Layers =
      fig::smokeSlice(dnn::vgg16Layers(), Opt.Smoke);

  std::vector<double> Total(fig::seriesNames().size(), 0.0);
  double TotalFlops = 0;
  for (const dnn::LayerGemm &L : Layers) {
    std::vector<fig::SeriesPoint> Pts =
        fig::gemmSeriesRun(L.M, L.N, L.K, Opt.Seconds);
    for (size_t I = 0; I != Pts.size(); ++I)
      Total[I] += Pts[I].M.SecondsPerCall * L.Count;
    TotalFlops += L.flops() * L.Count;
  }

  benchutil::Table T("fig18_vgg_time",
                     {"series", "time_ms", "aggregate_gflops"}, Opt.Csv);
  for (size_t I = 0; I != Total.size(); ++I) {
    T.addRow(fig::seriesNames()[I],
             {Total[I] * 1e3, benchutil::gflops(TotalFlops, Total[I])});
    benchutil::ReportRow Row;
    Row.Label = "vgg16_pass";
    Row.Series = fig::seriesNames()[I];
    Row.Metric = "seconds";
    Row.Better = "lower";
    Row.Value = Total[I];
    Row.SecondsPerCall = Total[I];
    Row.Threads = gemm::resolveGemmThreads(0);
    Ctx.Rep.addRow(std::move(Row));
  }
  T.print();
  return Ctx.finish();
}
