//===- bench_fig18_vgg_time.cpp - Paper Figure 18 -------------------------===//
//
// Aggregated GEMM time for one VGG16 inference pass (batch 1). Expected
// shape (paper Fig. 18): ALG+EXO and BLIS close at the top.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "dnn/Models.h"

int main(int Argc, char **Argv) {
  benchutil::BenchOptions Opt = benchutil::BenchOptions::parse(Argc, Argv);
  std::printf("Figure 18: aggregated inference GEMM time, VGG16\n");

  std::vector<double> Total(fig::seriesNames().size(), 0.0);
  double TotalFlops = 0;
  for (const dnn::LayerGemm &L : dnn::vgg16Layers()) {
    std::vector<double> Secs =
        fig::gemmSeriesSeconds(L.M, L.N, L.K, Opt.Seconds);
    for (size_t I = 0; I != Secs.size(); ++I)
      Total[I] += Secs[I] * L.Count;
    TotalFlops += L.flops() * L.Count;
  }

  benchutil::Table T("fig18_vgg_time",
                     {"series", "time_ms", "aggregate_gflops"}, Opt.Csv);
  for (size_t I = 0; I != Total.size(); ++I)
    T.addRow(fig::seriesNames()[I],
             {Total[I] * 1e3, benchutil::gflops(TotalFlops, Total[I])});
  T.print();
  fig::dumpCacheStats();
  return 0;
}
