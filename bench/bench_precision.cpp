//===- bench_precision.cpp - Throughput per dtype vs the f32 baseline -----===//
//
// Not a paper figure: measures the precision dimension added on top of the
// paper's f32 kernels (docs/PRECISION.md). For a sweep of square problems,
// every served dtype runs through Engine::gemm and reports GFLOPS (GOPS
// for i8 -> i32 — the row's `unit` field says which) plus its throughput
// relative to the f32 row of the same shape.
//
// Before any timing, each (dtype, shape) is gated on correctness against
// the typed reference refGemmT: f32 must match Engine::sgemm bitwise and
// i8 must match the wraparound oracle bitwise; f16/bf16 must agree within
// a few storage ULPs (the engine rounds per Kc block, the oracle once).
// A configuration that fails its gate reports 0 GFLOPS and fails the run.
//
//   bench_precision [--threads T] [--seconds T] [--smoke]
//                   [--csv] [--json [PATH]] [--trace PATH]
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include <cmath>
#include <cstring>
#include <random>

using namespace gemm;

namespace {

void fillStorage(DType Ty, void *P, size_t Elems, unsigned Seed) {
  std::mt19937 Rng(Seed);
  if (Ty == DType::I8I32) {
    std::uniform_int_distribution<int> D(-128, 127);
    int8_t *I = static_cast<int8_t *>(P);
    for (size_t X = 0; X != Elems; ++X)
      I[X] = static_cast<int8_t>(D(Rng));
    return;
  }
  std::uniform_real_distribution<float> D(-1.0f, 1.0f);
  if (Ty == DType::F32) {
    float *F = static_cast<float *>(P);
    for (size_t X = 0; X != Elems; ++X)
      F[X] = D(Rng);
    return;
  }
  uint16_t *H = static_cast<uint16_t *>(P);
  for (size_t X = 0; X != Elems; ++X)
    H[X] = Ty == DType::F16 ? f32ToF16(D(Rng)) : f32ToBf16(D(Rng));
}

/// The pre-timing correctness gate; returns false (and explains on
/// stderr) when the engine's result violates the dtype's contract.
bool gate(Engine &Eng, DType Ty, int64_t S, const void *A, const void *B) {
  const unsigned OutB = dtypeOutBytes(Ty);
  std::vector<unsigned char> Got(S * S * OutB, 0), Want(S * S * OutB, 0);
  exo::Error Err = Eng.gemm(Ty, Trans::None, Trans::None, S, S, S, 1.0, A,
                            S, B, S, 0.0, Got.data(), S);
  if (Err) {
    std::fprintf(stderr, "gate %s %lldx%lld: %s\n", dtypeName(Ty),
                 static_cast<long long>(S), static_cast<long long>(S),
                 Err.message().c_str());
    return false;
  }
  if (Ty == DType::F32) {
    // The refactor's promise: the typed door is bitwise sgemm.
    std::vector<float> Sg(S * S, 0.0f);
    if (exo::Error E2 =
            Eng.sgemm(S, S, S, 1.0f, static_cast<const float *>(A), S,
                      static_cast<const float *>(B), S, 0.0f, Sg.data(), S)) {
      std::fprintf(stderr, "gate f32 sgemm: %s\n", E2.message().c_str());
      return false;
    }
    if (std::memcmp(Got.data(), Sg.data(), Sg.size() * sizeof(float))) {
      std::fprintf(stderr, "gate f32: typed door diverged from sgemm\n");
      return false;
    }
    return true;
  }
  refGemmT(Ty, Trans::None, Trans::None, S, S, S, 1.0, A, S, B, S, 0.0,
           Want.data(), S);
  if (Ty == DType::I8I32) {
    if (std::memcmp(Got.data(), Want.data(), Got.size())) {
      std::fprintf(stderr, "gate i8: engine diverged from the exact "
                           "wraparound reference\n");
      return false;
    }
    return true;
  }
  const float Eps = Ty == DType::F16 ? 0x1p-10f : 0x1p-7f;
  const uint16_t *G = reinterpret_cast<const uint16_t *>(Got.data());
  const uint16_t *W = reinterpret_cast<const uint16_t *>(Want.data());
  for (int64_t X = 0; X != S * S; ++X) {
    float Gf = Ty == DType::F16 ? f16ToF32(G[X]) : bf16ToF32(G[X]);
    float Wf = Ty == DType::F16 ? f16ToF32(W[X]) : bf16ToF32(W[X]);
    if (std::fabs(Gf - Wf) > 4.0f * Eps * (1.0f + std::fabs(Wf))) {
      std::fprintf(stderr,
                   "gate %s: elem %lld off by %g (ULP bound %g)\n",
                   dtypeName(Ty), static_cast<long long>(X),
                   std::fabs(Gf - Wf), 4.0f * Eps * (1.0f + std::fabs(Wf)));
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("precision", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  int64_t Threads = 1;
  for (int I = 1; I < Argc; ++I)
    if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc)
      Threads = std::atoll(Argv[++I]);
  if (Threads < 1) {
    std::fprintf(stderr, "bad --threads\n");
    return 1;
  }

  std::vector<int64_t> Sizes = {64, 128, 256, 512};
  if (Opt.Big)
    Sizes.push_back(1024);
  Sizes = fig::smokeSlice(Sizes, Opt.Smoke);

  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Exo;
  Cfg.Isa = &exo::avx2Isa();
  Cfg.Threads = Threads;
  Engine Eng(Cfg);

  const DType Dtypes[] = {DType::F32, DType::F16, DType::BF16,
                          DType::I8I32};
  std::printf("Precision sweep (threads=%lld): GFLOPS per dtype, "
              "correctness-gated; rel_f32 = throughput vs the f32 row\n",
              static_cast<long long>(Threads));
  std::printf("%-12s %-6s %10s %8s\n", "shape", "dtype", "gflops",
              "rel_f32");

  int Rc = 0;
  for (int64_t S : Sizes) {
    double F32Gflops = 0;
    for (DType Ty : Dtypes) {
      const unsigned InB = dtypeInBytes(Ty);
      const unsigned OutB = dtypeOutBytes(Ty);
      std::vector<unsigned char> A(S * S * InB), B(S * S * InB),
          C(S * S * OutB);
      fillStorage(Ty, A.data(), S * S, 11);
      fillStorage(Ty, B.data(), S * S, 22);
      if (!gate(Eng, Ty, S, A.data(), B.data())) {
        Rc = 1;
        continue;
      }
      benchutil::Measurement M = benchutil::measure(
          [&] {
            Eng.gemm(Ty, Trans::None, Trans::None, S, S, S, 1.0, A.data(),
                     S, B.data(), S, 0.0, C.data(), S);
          },
          Opt.Seconds);
      const double Flops = 2.0 * S * S * S;
      const double G = benchutil::gflops(Flops, M.SecondsPerCall);
      if (Ty == DType::F32)
        F32Gflops = G;

      const std::string Label = std::to_string(S) + "x" +
                                std::to_string(S) + "x" + std::to_string(S);
      benchutil::ReportRow Row;
      Row.Label = Label;
      Row.Series = dtypeName(Ty);
      Row.Value = G;
      Row.SecondsPerCall = M.SecondsPerCall;
      Row.Reps = M.Reps;
      Row.Threads = Threads;
      Row.M = S;
      Row.N = S;
      Row.K = S;
      Row.Stages = M.Stages;
      Row.Extra["unit"] = dtypeIsInt(Ty) ? 1.0 : 0.0; // 1 = GOPS
      if (F32Gflops > 0)
        Row.Extra["rel_f32"] = G / F32Gflops;
      Ctx.Rep.addRow(std::move(Row));

      std::printf("%-12s %-6s %10.2f %8.2f\n", Label.c_str(),
                  dtypeName(Ty), G, F32Gflops > 0 ? G / F32Gflops : 1.0);
    }
  }

  int FinishRc = Ctx.finish();
  return Rc ? Rc : FinishRc;
}
