//===- bench_batched.cpp - Batched GEMM vs N sequential sgemm calls -------===//
//
// Not a paper figure: measures the batched front door added on top of the
// paper's kernels. A batch of small same-shape GEMMs is run three ways —
// N sequential Engine::sgemm calls, one Engine::sgemmBatched call, and one
// Engine::sgemmStridedBatched call over contiguous storage — and the whole
// ResNet50/VGG16 layer tables (multiplicity expanded) are run sequentially
// vs as one batch. The batched rows report their speedup over the
// sequential row so the cross-item scheduling win is visible directly.
//
// Every batched result is memcmp'd against the sequential result before
// timing: the batched paths promise bitwise-identical output, and this
// bench refuses to time a configuration that broke that promise.
//
//   bench_batched [--items N] [--size S] [--threads T]
//                 [--seconds T] [--csv] [--json [PATH]] [--trace PATH]
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "dnn/Models.h"
#include "exo/support/Str.h"

#include <cstring>

using namespace gemm;

namespace {

/// Adds one row; batched-series rows carry speedup over \p BaseGflops.
double addRow(fig::Context &Ctx, const std::string &Label,
              const std::string &Series, int64_t Threads, double Flops,
              const benchutil::Measurement &Meas, double BaseGflops) {
  double G = benchutil::gflops(Flops, Meas.SecondsPerCall);
  benchutil::ReportRow Row;
  Row.Label = Label;
  Row.Series = Series;
  Row.Value = G;
  Row.SecondsPerCall = Meas.SecondsPerCall;
  Row.Reps = Meas.Reps;
  Row.Threads = Threads;
  Row.Stages = Meas.Stages;
  if (BaseGflops > 0)
    Row.Extra["speedup"] = G / BaseGflops;
  Ctx.Rep.addRow(std::move(Row));
  return G;
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("batched", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  int64_t Items = 64, Size = 64, Threads = 4;
  if (Opt.Smoke) {
    Items = 8;
    Size = 48;
  }
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--items") && I + 1 < Argc)
      Items = std::atoll(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--size") && I + 1 < Argc)
      Size = std::atoll(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc)
      Threads = std::atoll(Argv[++I]);
  }
  if (Items < 1 || Size < 1 || Threads < 1) {
    std::fprintf(stderr, "bad --items/--size/--threads\n");
    return 1;
  }

  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Exo;
  Cfg.Isa = &exo::avx2Isa();
  Cfg.Threads = Threads;
  Engine Eng(Cfg);

  std::printf("Batched GEMM: %lld items of %lld^3 at %lld thread(s); "
              "batched rows report speedup over the sequential row\n",
              static_cast<long long>(Items), static_cast<long long>(Size),
              static_cast<long long>(Threads));

  // The uniform small batch, stored contiguously so the identical buffers
  // serve the item-list and the strided entry points.
  const int64_t S = Size, Per = S * S;
  std::vector<float> A(Items * Per), B(Items * Per), C(Items * Per);
  benchutil::fillRandom(A.data(), A.size(), 11);
  benchutil::fillRandom(B.data(), B.size(), 22);
  std::vector<GemmBatchItem> Batch(Items);
  for (int64_t I = 0; I != Items; ++I) {
    GemmBatchItem &It = Batch[I];
    It.M = It.N = It.K = S;
    It.A = A.data() + I * Per;
    It.Lda = S;
    It.B = B.data() + I * Per;
    It.Ldb = S;
    It.C = C.data() + I * Per;
    It.Ldc = S;
  }
  auto RunSeq = [&] {
    for (const GemmBatchItem &It : Batch)
      Eng.sgemm(It.M, It.N, It.K, It.Alpha, It.A, It.Lda, It.B, It.Ldb,
                It.Beta, It.C, It.Ldc);
  };
  auto RunBatched = [&] { Eng.sgemmBatched(Batch.data(), Items); };
  auto RunStrided = [&] {
    Eng.sgemmStridedBatched(Trans::None, Trans::None, S, S, S, 1.0f,
                            A.data(), S, Per, B.data(), S, Per, 0.0f,
                            C.data(), S, Per, Items);
  };

  // Bitwise gate: both batched entry points must reproduce the sequential
  // bits exactly (the differential test suite holds this per-shape; the
  // bench re-checks the exact configuration it is about to time).
  {
    RunSeq();
    std::vector<float> CSeq = C;
    std::memset(C.data(), 0, C.size() * sizeof(float));
    if (exo::Error E = Eng.sgemmBatched(Batch.data(), Items)) {
      std::fprintf(stderr, "sgemmBatched failed: %s\n", E.message().c_str());
      return 1;
    }
    if (std::memcmp(C.data(), CSeq.data(), C.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "WRONG RESULT: batched differs from sequential\n");
      return 1;
    }
    std::memset(C.data(), 0, C.size() * sizeof(float));
    RunStrided();
    if (std::memcmp(C.data(), CSeq.data(), C.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "WRONG RESULT: strided differs from sequential\n");
      return 1;
    }
  }

  benchutil::Table T("batched", {"workload", "seq", "batched", "strided",
                                 "speedup"},
                     Opt.Csv);
  const double Flops = 2.0 * S * S * S * static_cast<double>(Items);
  benchutil::Measurement MSeq = benchutil::measure(RunSeq, Opt.Seconds);
  double GSeq = addRow(Ctx, "uniform", "sequential", Threads, Flops, MSeq, 0);
  benchutil::Measurement MBat = benchutil::measure(RunBatched, Opt.Seconds);
  double GBat =
      addRow(Ctx, "uniform", "batched", Threads, Flops, MBat, GSeq);
  benchutil::Measurement MStr = benchutil::measure(RunStrided, Opt.Seconds);
  double GStr =
      addRow(Ctx, "uniform", "strided", Threads, Flops, MStr, GSeq);
  T.addRow(exo::strf("%lldx%lld^3", static_cast<long long>(Items),
                     static_cast<long long>(S)),
           {GSeq, GBat, GStr, GBat / GSeq});

  // Whole-model batches: every layer instance of the table as one call.
  struct ModelRun {
    const char *Name;
    const std::vector<dnn::LayerGemm> &Layers;
  };
  const ModelRun Models[] = {{"resnet50", dnn::resnet50Layers()},
                             {"vgg16", dnn::vgg16Layers()}};
  for (const ModelRun &MR : Models) {
    std::vector<dnn::LayerGemm> Layers =
        fig::smokeSlice(MR.Layers, Opt.Smoke, 3);
    dnn::ModelBatch MB = dnn::buildModelBatch(Layers, 7);
    if (exo::Error E = dnn::runModelSequential(Eng, MB)) {
      std::fprintf(stderr, "%s sequential failed: %s\n", MR.Name,
                   E.message().c_str());
      return 1;
    }
    benchutil::Measurement MS = benchutil::measure(
        [&] { dnn::runModelSequential(Eng, MB); }, Opt.Seconds);
    double GS =
        addRow(Ctx, MR.Name, "sequential", Threads, MB.Flops, MS, 0);
    benchutil::Measurement MBt = benchutil::measure(
        [&] { dnn::runModelBatch(Eng, MB); }, Opt.Seconds);
    double GB = addRow(Ctx, MR.Name, "batched", Threads, MB.Flops, MBt, GS);
    T.addRow(exo::strf("%s (%zu gemms)", MR.Name, MB.Items.size()),
             {GS, GB, 0.0, GB / GS});
  }
  T.print();

  EngineStats ES = Eng.stats();
  std::fprintf(stderr,
               "batched: items=%llu groups=%llu cross-item=%llu\n",
               static_cast<unsigned long long>(ES.BatchedItems),
               static_cast<unsigned long long>(ES.BatchedGroups),
               static_cast<unsigned long long>(ES.BatchedCrossItem));
  return Ctx.finish();
}
