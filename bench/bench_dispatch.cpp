//===- bench_dispatch.cpp - Engine dispatch overhead ----------------------===//
//
// What the plan-once/execute-many front door costs per call, at each size:
//
//   legacy_direct — blisGemm with a pre-built GemmPlan and provider (no
//                   dispatch layer at all; the floor)
//   hot_plan      — Engine::sgemm with the shape already cached: the
//                   steady state. The acceptance bar is hot_plan within a
//                   few percent of legacy_direct — the plan cache, pooled
//                   workspaces, and raw-callback team dispatch exist to
//                   make the front door free once warm.
//   cold_plan     — Engine::sgemm with the plan cache cleared before every
//                   call, so each rep re-plans (blocking clamp, team
//                   factorization, edge resolution). Kernels still come
//                   from the in-process memo, so this isolates planning
//                   cost, not JIT compilation.
//
// All three run the identical fixed BLIS-style 8x12 kernel, so the spread
// is pure dispatch-layer cost. Rows report seconds per call (better =
// lower) plus an info overhead row; hot_plan additionally emits a GFLOPS
// row carrying mr/nr counters — the emission EXO_GEMM_PLAN_PRIOR consumes
// (see Planner.h).
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include <cstring>

using namespace gemm;

namespace {

void addDispatchRow(fig::Context &Ctx, const std::string &Label,
                    const std::string &Series, int64_t S,
                    const benchutil::Measurement &Meas, int64_t Mr,
                    int64_t Nr) {
  benchutil::ReportRow Row;
  Row.Label = Label;
  Row.Series = Series;
  Row.Metric = "seconds";
  Row.Better = "lower";
  Row.Value = Meas.SecondsPerCall;
  Row.SecondsPerCall = Meas.SecondsPerCall;
  Row.Reps = Meas.Reps;
  Row.Threads = resolveGemmThreads(0);
  Row.M = S;
  Row.N = S;
  Row.K = S;
  Row.Stages = Meas.Stages;
  Row.Extra["mr"] = static_cast<double>(Mr);
  Row.Extra["nr"] = static_cast<double>(Nr);
  Ctx.Rep.addRow(std::move(Row));
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("dispatch", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Dispatch overhead: Engine front door vs direct macro-kernel "
              "call (same fixed 8x12 kernel)\n");

  std::vector<int64_t> Sizes = Opt.Big ? std::vector<int64_t>{256, 512}
                                       : std::vector<int64_t>{64, 256};
  if (Opt.Smoke)
    Sizes = {48};

  // The floor: plan derived once here, provider called directly.
  FixedProvider Direct(blisKernel(), "ALG+BLIS");
  GemmPlan Plan = GemmPlan::standard(Direct);

  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Engine Hot(Cfg), Cold(Cfg);

  benchutil::Table T("dispatch_us_per_call",
                     {"size", "legacy_direct", "hot_plan", "cold_plan",
                      "hot_overhead_pct"},
                     Opt.Csv);
  for (int64_t S : Sizes) {
    std::vector<float> A(S * S), B(S * S), C(S * S);
    benchutil::fillRandom(A.data(), A.size(), 11);
    benchutil::fillRandom(B.data(), B.size(), 22);
    std::string Label = std::to_string(S);

    // Bitwise agreement between the two front doors before timing.
    {
      std::vector<float> CDir(S * S, 1.0f), CEng(S * S, 1.0f);
      exo::Error E1 = blisGemm(Plan, Direct, S, S, S, 1.f, A.data(), S,
                               B.data(), S, 1.f, CDir.data(), S);
      exo::Error E2 = Hot.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f,
                                CEng.data(), S);
      if (E1 || E2) {
        std::fprintf(stderr, "gemm failed: %s\n",
                     (E1 ? E1 : E2).message().c_str());
        return 1;
      }
      if (std::memcmp(CDir.data(), CEng.data(),
                      CDir.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "WRONG RESULT: Engine output differs from direct "
                     "blisGemm at %lld\n",
                     static_cast<long long>(S));
        return 1;
      }
    }

    exo::Expected<PlanChoice> Choice =
        Hot.planFor(Trans::None, Trans::None, S, S, S);
    if (!Choice) {
      std::fprintf(stderr, "planFor failed: %s\n",
                   Choice.takeError().message().c_str());
      return 1;
    }

    benchutil::Measurement MDir = benchutil::measure(
        [&] {
          blisGemm(Plan, Direct, S, S, S, 1.f, A.data(), S, B.data(), S,
                   1.f, C.data(), S);
        },
        Opt.Seconds);
    benchutil::Measurement MHot = benchutil::measure(
        [&] {
          Hot.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, C.data(),
                    S);
        },
        Opt.Seconds);
    benchutil::Measurement MCold = benchutil::measure(
        [&] {
          Cold.clearPlanCache();
          Cold.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, C.data(),
                     S);
        },
        Opt.Seconds);

    double OverheadPct = 100.0 *
                         (MHot.SecondsPerCall - MDir.SecondsPerCall) /
                         MDir.SecondsPerCall;
    T.addRow(Label, {MDir.SecondsPerCall * 1e6, MHot.SecondsPerCall * 1e6,
                     MCold.SecondsPerCall * 1e6, OverheadPct});

    addDispatchRow(Ctx, Label, "legacy_direct", S, MDir, Choice->MR,
                   Choice->NR);
    addDispatchRow(Ctx, Label, "hot_plan", S, MHot, Choice->MR, Choice->NR);
    addDispatchRow(Ctx, Label, "cold_plan", S, MCold, Choice->MR,
                   Choice->NR);

    // Info row: the headline number. Not gated by bench_check ("info"
    // direction) because it is a ratio of two noisy measurements.
    benchutil::ReportRow Over;
    Over.Label = Label;
    Over.Series = "dispatch_overhead";
    Over.Metric = "hot_overhead_pct";
    Over.Better = "info";
    Over.Value = OverheadPct;
    Over.SecondsPerCall = MHot.SecondsPerCall;
    Over.Reps = MHot.Reps;
    Over.M = S;
    Over.N = S;
    Over.K = S;
    Ctx.Rep.addRow(std::move(Over));

    // Planner-prior emission: a higher-is-better row with mr/nr counters
    // for this exact (m, n, k) — what lookupPlanPrior scans for.
    benchutil::ReportRow Prior;
    Prior.Label = Label;
    Prior.Series = "hot_plan";
    Prior.Metric = "gflops";
    Prior.Better = "higher";
    Prior.Value = benchutil::gflops(2.0 * S * S * S, MHot.SecondsPerCall);
    Prior.SecondsPerCall = MHot.SecondsPerCall;
    Prior.Reps = MHot.Reps;
    Prior.M = S;
    Prior.N = S;
    Prior.K = S;
    Prior.Extra["mr"] = static_cast<double>(Choice->MR);
    Prior.Extra["nr"] = static_cast<double>(Choice->NR);
    Ctx.Rep.addRow(std::move(Prior));
  }
  T.print();

  EngineStats St = Hot.stats();
  std::printf("hot engine: %llu hits / %llu misses / %llu builds; cold "
              "engine rebuilt %llu plans\n",
              static_cast<unsigned long long>(St.Hits),
              static_cast<unsigned long long>(St.Misses),
              static_cast<unsigned long long>(St.Builds),
              static_cast<unsigned long long>(Cold.stats().Builds));
  return Ctx.finish();
}
