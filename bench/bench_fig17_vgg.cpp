//===- bench_fig17_vgg.cpp - Paper Figure 17 (and Table II) ---------------===//
//
// Per-layer GFLOPS for the 9 unique VGG16 im2row GEMMs. Expected shape
// (paper Fig. 17): EXO best on a few layers, BLIS-with-prefetch on several,
// ALG+BLIS on a couple; overall close.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"

#include "dnn/Models.h"

int main(int Argc, char **Argv) {
  fig::Context Ctx("fig17_vgg", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::vector<dnn::LayerGemm> Layers =
      fig::smokeSlice(dnn::vgg16Layers(), Opt.Smoke);

  std::printf("Table II: VGG16 im2row GEMM shapes\n");
  benchutil::Table Tab("table2_vgg16_shapes",
                       {"layer", "layers", "m", "n", "k"}, Opt.Csv);
  for (const dnn::LayerGemm &L : Layers)
    Tab.addRow({std::to_string(L.Id), L.Layers, std::to_string(L.M),
                std::to_string(L.N), std::to_string(L.K)});
  Tab.print();

  std::printf("\nFigure 17: per-layer performance, VGG16\n");
  benchutil::Table T("fig17_vgg_gflops",
                     fig::seriesHeader("layer", {"winner"}), Opt.Csv);
  for (const dnn::LayerGemm &L : Layers) {
    std::vector<fig::SeriesPoint> Pts =
        fig::gemmSeriesRun(L.M, L.N, L.K, Opt.Seconds);
    size_t Win = 0;
    for (size_t I = 1; I < Pts.size(); ++I)
      if (Pts[I].Gflops > Pts[Win].Gflops)
        Win = I;
    std::vector<std::string> Cells{std::to_string(L.Id)};
    for (const fig::SeriesPoint &Pt : Pts)
      Cells.push_back(exo::strf("%.2f", Pt.Gflops));
    Cells.push_back(fig::seriesNames()[Win]);
    T.addRow(std::move(Cells));
    fig::addSeriesRows(Ctx, "layer" + std::to_string(L.Id), L.M, L.N, L.K,
                       Pts);
  }
  T.print();
  return Ctx.finish();
}
