//===- bench_tune.cpp - Tuned-prior vs analytical-model ablation ----------===//
//
// The autotuner's value proposition, measured end to end: each shape is
// tuned into a throwaway prior database (gemm::tuneShape), then served by
// two Engines that differ only in EngineConfig::TunedPriors — the "model"
// arm plans from the analytical model alone, the "tuned" arm consults the
// freshly written database first. The never-lose gate is asserted here as
// well as in the planner: a tuned arm measurably below the model arm
// (beyond a generous noise floor) fails the bench, because the planner's
// margin check should have fallen back to the model plan instead.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"
#include "gemm/PriorDb.h"
#include "gemm/Tuner.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

using namespace gemm;

namespace {

/// Tuned may trail model by measurement noise on a quiet plan (the planner
/// guarantees plan equality in the worst case, not timer equality).
constexpr double NeverLoseFloor = 0.85;

std::string makeTempDb() {
  const char *Tmp = std::getenv("TMPDIR");
  std::string Templ =
      std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/bench-tune-priors-XXXXXX";
  std::vector<char> Buf(Templ.begin(), Templ.end());
  Buf.push_back('\0');
  const char *Dir = mkdtemp(Buf.data());
  return Dir ? Dir : "";
}

double measureArm(Engine &E, int64_t M, int64_t N, int64_t K,
                  double Seconds, benchutil::Measurement &MOut) {
  std::vector<float> A(M * K), B(K * N), C(M * N, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 11);
  benchutil::fillRandom(B.data(), B.size(), 22);
  // One untimed call plans the shape; the timed reps ride the plan cache.
  E.sgemm(M, N, K, 1.f, A.data(), M, B.data(), K, 0.f, C.data(), M);
  MOut = benchutil::measure(
      [&] {
        E.sgemm(M, N, K, 1.f, A.data(), M, B.data(), K, 0.f, C.data(), M);
      },
      Seconds);
  return benchutil::gflops(2.0 * M * N * K, MOut.SecondsPerCall);
}

struct Shape {
  int64_t M, N, K;
};

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("tune", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Ablation: tuned priors vs analytical model (Auto series)\n");

  std::string Db = makeTempDb();
  if (Db.empty()) {
    std::fprintf(stderr, "cannot create a temp prior database\n");
    return 1;
  }
  PriorDb::setGlobalRoot(Db);
  Ctx.Rep.setField("prior_db", Db);

  std::vector<Shape> Shapes = Opt.Big
                                  ? std::vector<Shape>{{512, 512, 512},
                                                       {1024, 1024, 1024},
                                                       {3136, 64, 576},
                                                       {196, 512, 1152}}
                                  : std::vector<Shape>{{128, 128, 128},
                                                       {256, 256, 256},
                                                       {392, 64, 576},
                                                       {24, 24, 2048}};
  if (Opt.Smoke)
    Shapes = {{64, 64, 64}};

  TuneOptions TO = tuneOptionsFromEnv();
  if (Opt.Smoke) {
    TO.Budget = std::min<int64_t>(TO.Budget, 4);
    TO.Seconds = std::min(TO.Seconds, 0.01);
  }

  benchutil::Table T("tune_gflops", {"shape", "model", "tuned", "source"},
                     Opt.Csv);
  int Rc = 0;
  size_t Stored = 0;
  uint64_t TunedPlans = 0;
  for (const Shape &S : Shapes) {
    std::string Label = std::to_string(S.M) + "x" + std::to_string(S.N) +
                        "x" + std::to_string(S.K);
    exo::Expected<TuneResult> R = tuneShape(S.M, S.N, S.K, TO);
    if (!R) {
      std::fprintf(stderr, "tune %s: %s\n", Label.c_str(),
                   R.message().c_str());
      Rc = 1;
      continue;
    }
    Stored += R->Stored;

    EngineConfig ModelCfg;
    ModelCfg.Series = EngineSeries::Auto;
    ModelCfg.TunedPriors = false;
    Engine ModelE(ModelCfg);
    EngineConfig TunedCfg;
    TunedCfg.Series = EngineSeries::Auto;
    Engine TunedE(TunedCfg);

    benchutil::Measurement MM, MT;
    double GModel = measureArm(ModelE, S.M, S.N, S.K, Opt.Seconds, MM);
    double GTuned = measureArm(TunedE, S.M, S.N, S.K, Opt.Seconds, MT);
    exo::Expected<PlanChoice> TunedPlan =
        TunedE.planFor(Trans::None, Trans::None, S.M, S.N, S.K);
    const char *Source = TunedPlan ? TunedPlan->Source : "?";
    TunedPlans += TunedE.stats().PlansFromTuned;

    fig::addGemmRow(Ctx, Label, "model", S.M, S.N, S.K, MM,
                    2.0 * S.M * S.N * S.K);
    fig::addGemmRow(Ctx, Label, "tuned", S.M, S.N, S.K, MT,
                    2.0 * S.M * S.N * S.K);
    T.addRow({Label, exo::strf("%.2f", GModel), exo::strf("%.2f", GTuned),
              Source});

    if (GTuned < GModel * NeverLoseFloor) {
      std::fprintf(stderr,
                   "NEVER-LOSE VIOLATION %s: tuned %.2f < model %.2f "
                   "GFLOPS (floor %.0f%%)\n",
                   Label.c_str(), GTuned, GModel, NeverLoseFloor * 100);
      Rc = 1;
    }
  }
  T.print();
  std::printf("tuned records stored: %zu/%zu; plans from tuned priors: "
              "%llu\n",
              Stored, Shapes.size(),
              static_cast<unsigned long long>(TunedPlans));
  return Rc ? Rc : Ctx.finish();
}
