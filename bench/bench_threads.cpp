//===- bench_threads.cpp - Macro-kernel strong scaling --------------------===//
//
// Not a paper figure: the paper evaluates single-core micro-kernels. This
// bench measures the BLIS-style parallel macro-kernel layered above them —
// one SGEMM problem swept over team sizes, reporting GFLOPS, speedup over
// one thread, and parallel efficiency. The 1-thread row runs the identical
// sequential driver the figure benches use, so it doubles as a regression
// check that threading support costs the single-core path nothing.
//
// Defaults to a 2048^3 SGEMM over 1/2/4/8 threads (capped at the host's
// hardware concurrency unless --all-counts is given; on a 1-core CI box
// the >1 rows are oversubscribed and merely prove correctness).
//
//   bench_threads [--size S] [--threads "1,2,4,8"] [--all-counts]
//                 [--store-curve] [--seconds T] [--csv] [--json [PATH]]
//                 [--trace PATH]
//
// --store-curve publishes the measured (threads, speedup) points as this
// machine's strong-scaling curve in the prior database
// (PriorDb::storeCurve), which seeds the governor's per-shape width model
// (Governor.h, docs/CONCURRENCY.md).
//
// Pin the sweep for stable numbers: `taskset -c 0-7 bench_threads`.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"
#include "gemm/PriorDb.h"

#include <cstring>
#include <thread>

int main(int Argc, char **Argv) {
  using namespace gemm;
  fig::Context Ctx("threads", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  int64_t Size = Opt.Big ? 2048 : 768;
  if (Opt.Smoke)
    Size = 96;
  std::vector<int64_t> Counts = {1, 2, 4, 8};
  bool AllCounts = false;
  bool StoreCurve = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--size") && I + 1 < Argc)
      Size = std::atoll(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--all-counts"))
      AllCounts = true;
    else if (!std::strcmp(Argv[I], "--store-curve"))
      StoreCurve = true;
    else if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc) {
      Counts.clear();
      for (const std::string &Tok : exo::split(Argv[++I], ','))
        if (int64_t T = std::atoll(Tok.c_str()); T > 0)
          Counts.push_back(T);
    }
  }
  const int64_t HW = std::max(1u, std::thread::hardware_concurrency());
  if (!AllCounts) {
    std::vector<int64_t> Kept;
    for (int64_t T : Counts)
      if (T <= HW)
        Kept.push_back(T);
    if (Kept.empty())
      Kept.push_back(1);
    Counts = Kept;
  }

  const int64_t M = Size, N = Size, K = Size;
  std::printf("Strong scaling: %lld^3 SGEMM, BLIS macro-kernel "
              "(ic x jr partitioning), %lld hardware thread(s)%s\n",
              static_cast<long long>(Size), static_cast<long long>(HW),
              Opt.Big ? " [paper-scale size]" : " [scaled; use --big]");

  std::vector<float> A(M * K), B(K * N), C(M * N);
  benchutil::fillRandom(A.data(), A.size(), 11);
  benchutil::fillRandom(B.data(), B.size(), 22);

  // Team size is part of the Engine's plan key, so one Engine per count
  // keeps every row's plan cached independently.
  auto EngineFor = [](int64_t Threads) {
    EngineConfig Cfg;
    Cfg.Series = EngineSeries::Exo;
    Cfg.Isa = &exo::avx2Isa();
    Cfg.Threads = Threads;
    return Cfg;
  };

  // Verified once (threaded vs sequential vs reference) before timing.
  {
    Engine E1(EngineFor(1)), ET(EngineFor(Counts.back()));
    std::vector<float> C1(M * N, 1.0f), CT(M * N, 1.0f);
    exo::Error Err1 = E1.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f,
                               C1.data(), M);
    exo::Error Err2 = ET.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f,
                               CT.data(), M);
    if (Err1 || Err2) {
      std::fprintf(stderr, "gemm failed: %s\n",
                   (Err1 ? Err1 : Err2).message().c_str());
      return 1;
    }
    if (std::memcmp(C1.data(), CT.data(), C1.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "WRONG RESULT: %lld-thread output differs from "
                           "1-thread\n",
                   static_cast<long long>(Counts.back()));
      return 1;
    }
  }

  benchutil::Table T("threads_strong_scaling",
                     {"threads", "gflops", "speedup", "efficiency"},
                     Opt.Csv);
  const double Flops = 2.0 * M * N * K;
  double Base = 0;
  std::vector<GovernorCurvePoint> Curve;
  for (int64_t Threads : Counts) {
    Engine E(EngineFor(Threads));
    // Plan once outside the timed region; the reps run the cached plan.
    E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, C.data(), M);
    benchutil::Measurement Meas = benchutil::measure(
        [&] {
          E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, C.data(),
                  M);
        },
        Opt.Seconds);
    double G = benchutil::gflops(Flops, Meas.SecondsPerCall);
    if (Base == 0)
      Base = G;
    T.addRow(exo::strf("%lld", static_cast<long long>(Threads)),
             {G, G / Base, G / Base / static_cast<double>(Threads)});
    benchutil::ReportRow Row;
    Row.Label = "t" + std::to_string(Threads);
    Row.Series = "strong_scaling";
    Row.Value = G;
    Row.SecondsPerCall = Meas.SecondsPerCall;
    Row.Reps = Meas.Reps;
    Row.Threads = Threads;
    Row.M = M;
    Row.N = N;
    Row.K = K;
    Row.Stages = Meas.Stages;
    Row.Extra["speedup"] = G / Base;
    Row.Extra["efficiency"] = G / Base / static_cast<double>(Threads);
    Ctx.Rep.addRow(std::move(Row));
    Curve.push_back({Threads, G / Base});
  }
  T.print();
  if (StoreCurve) {
    if (exo::Error Err = PriorDb::global().storeCurve(Curve)) {
      std::fprintf(stderr, "store-curve: %s\n", Err.message().c_str());
      return 1;
    }
    std::printf("store-curve: %zu point(s) published to %s\n", Curve.size(),
                PriorDb::global().root().c_str());
  }
  return Ctx.finish();
}
