//===- bench_ablate_packing.cpp - Packing cost ablation -------------------===//
//
// §III-B discusses skipping the A packing when data is already packed or
// the problem is too small to amortize it. This ablation measures the
// packing share of total GEMM time as k shrinks, and the raw cost of the
// two packing routines.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "gemm/Pack.h"

#include <cstdio>
#include <vector>

using namespace gemm;

int main(int Argc, char **Argv) {
  fig::Context Ctx("ablate_packing", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Ablation: packing overhead vs problem depth (m = n = %d)\n",
              Opt.Smoke ? 96 : 512);

  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Exo;
  Cfg.ForceMR = 8;
  Cfg.ForceNR = 12;
  Engine E(Cfg);
  // The standalone packing loop below reproduces the blocking the Engine's
  // plan resolves (analytical model for an 8x12 tile).
  BlockSizes Blocks =
      analyticalBlockSizes(CacheConfig::host(), 8, 12, sizeof(float));
  const int64_t M = Opt.Smoke ? 96 : 512, N = M;
  std::vector<int64_t> Depths = {8, 32, 128, 512, 2048};
  if (Opt.Smoke)
    Depths = {8, 64};

  benchutil::Table T("ablate_packing",
                     {"k", "gemm_gflops", "pack_share_pct"}, Opt.Csv);
  for (int64_t K : Depths) {
    std::vector<float> A(M * K), B(K * N), C(M * N, 0.f);
    benchutil::fillRandom(A.data(), A.size(), 1);
    benchutil::fillRandom(B.data(), B.size(), 2);
    benchutil::Measurement GemmM = benchutil::measure(
        [&] {
          E.sgemm(M, N, K, 1.f, A.data(), M, B.data(), K, 1.f, C.data(), M);
        },
        Opt.Seconds);

    // Standalone packing cost for the same operand volume (one pass over A
    // in mc x kc blocks and B in kc x nc blocks).
    int64_t Kc = std::min<int64_t>(Blocks.KC, K);
    int64_t Mc = std::min<int64_t>(Blocks.MC, M);
    int64_t Nc = std::min<int64_t>(Blocks.NC, N);
    std::vector<float> ABuf(((Mc + 7) / 8) * Kc * 8);
    std::vector<float> BBuf(((Nc + 11) / 12) * Kc * 12);
    benchutil::Measurement PackM = benchutil::measure(
        [&] {
          for (int64_t Pc = 0; Pc < K; Pc += Kc) {
            int64_t KcEff = std::min(Kc, K - Pc);
            for (int64_t Jc = 0; Jc < N; Jc += Nc)
              packB(B.data() + Pc + Jc * K, K, KcEff,
                    std::min(Nc, N - Jc), 12, 1.0f, EdgePack::Tight,
                    BBuf.data());
            for (int64_t Ic = 0; Ic < M; Ic += Mc)
              packA(A.data() + Ic + Pc * M, M, std::min(Mc, M - Ic), KcEff,
                    8, 1.0f, EdgePack::Tight, ABuf.data());
          }
        },
        Opt.Seconds);

    double PackSharePct =
        100.0 * PackM.SecondsPerCall / GemmM.SecondsPerCall;
    T.addRow(std::to_string(K),
             {benchutil::gflops(2.0 * M * N * K, GemmM.SecondsPerCall),
              PackSharePct});
    fig::addGemmRow(Ctx, "k" + std::to_string(K), "gemm", M, N, K, GemmM,
                    2.0 * M * N * K);
    benchutil::ReportRow Share;
    Share.Label = "k" + std::to_string(K);
    Share.Series = "pack_share";
    Share.Metric = "pack_share_pct";
    Share.Better = "info";
    Share.Value = PackSharePct;
    Share.SecondsPerCall = PackM.SecondsPerCall;
    Share.Reps = PackM.Reps;
    Share.M = M;
    Share.N = N;
    Share.K = K;
    Ctx.Rep.addRow(std::move(Share));
  }
  T.print();
  std::printf("Small-k problems spend a large share of time packing — the "
              "motivation for the paper's non-packed kernel variant.\n");
  return Ctx.finish();
}
