//===- bench_fig16_resnet_time.cpp - Paper Figure 16 ----------------------===//
//
// Aggregated GEMM time for one ResNet50 v1.5 inference pass (batch 1):
// sum over all 53 layer instances of per-layer time. Expected shape (paper
// Fig. 16): ALG+EXO lowest total, then BLIS, ALG+BLIS, ALG+NEON.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "dnn/Models.h"

int main(int Argc, char **Argv) {
  benchutil::BenchOptions Opt = benchutil::BenchOptions::parse(Argc, Argv);
  std::printf("Figure 16: aggregated inference GEMM time, ResNet50 v1.5\n");

  std::vector<double> Total(fig::seriesNames().size(), 0.0);
  double TotalFlops = 0;
  for (const dnn::LayerGemm &L : dnn::resnet50Layers()) {
    std::vector<double> Secs =
        fig::gemmSeriesSeconds(L.M, L.N, L.K, Opt.Seconds);
    for (size_t I = 0; I != Secs.size(); ++I)
      Total[I] += Secs[I] * L.Count;
    TotalFlops += L.flops() * L.Count;
  }

  benchutil::Table T("fig16_resnet_time",
                     {"series", "time_ms", "aggregate_gflops"}, Opt.Csv);
  for (size_t I = 0; I != Total.size(); ++I)
    T.addRow(fig::seriesNames()[I],
             {Total[I] * 1e3, benchutil::gflops(TotalFlops, Total[I])});
  T.print();
  fig::dumpCacheStats();
  return 0;
}
