//===- bench_fig16_resnet_time.cpp - Paper Figure 16 ----------------------===//
//
// Aggregated GEMM time for one ResNet50 v1.5 inference pass (batch 1):
// sum over all 53 layer instances of per-layer time. Expected shape (paper
// Fig. 16): ALG+EXO lowest total, then BLIS, ALG+BLIS, ALG+NEON.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "dnn/Models.h"

int main(int Argc, char **Argv) {
  fig::Context Ctx("fig16_resnet_time", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Figure 16: aggregated inference GEMM time, ResNet50 v1.5\n");
  std::vector<dnn::LayerGemm> Layers =
      fig::smokeSlice(dnn::resnet50Layers(), Opt.Smoke);

  std::vector<double> Total(fig::seriesNames().size(), 0.0);
  double TotalFlops = 0;
  for (const dnn::LayerGemm &L : Layers) {
    std::vector<fig::SeriesPoint> Pts =
        fig::gemmSeriesRun(L.M, L.N, L.K, Opt.Seconds);
    for (size_t I = 0; I != Pts.size(); ++I)
      Total[I] += Pts[I].M.SecondsPerCall * L.Count;
    TotalFlops += L.flops() * L.Count;
  }

  benchutil::Table T("fig16_resnet_time",
                     {"series", "time_ms", "aggregate_gflops"}, Opt.Csv);
  for (size_t I = 0; I != Total.size(); ++I) {
    T.addRow(fig::seriesNames()[I],
             {Total[I] * 1e3, benchutil::gflops(TotalFlops, Total[I])});
    benchutil::ReportRow Row;
    Row.Label = "resnet50_pass";
    Row.Series = fig::seriesNames()[I];
    Row.Metric = "seconds";
    Row.Better = "lower";
    Row.Value = Total[I];
    Row.SecondsPerCall = Total[I];
    Row.Threads = gemm::resolveGemmThreads(0);
    Ctx.Rep.addRow(std::move(Row));
  }
  T.print();
  return Ctx.finish();
}
