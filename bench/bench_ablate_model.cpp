//===- bench_ablate_model.cpp - Analytical model vs fixed blocking --------===//
//
// The ALG+ series relies on the Low et al. analytical model for (mc, kc,
// nc). This ablation compares it against a naive fixed blocking on square
// problems.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include <cstdio>
#include <vector>

using namespace gemm;

namespace {

benchutil::Measurement run(Engine &E, int64_t S, double Seconds) {
  std::vector<float> A(S * S), B(S * S), C(S * S, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);
  return benchutil::measure(
      [&] {
        E.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, C.data(), S);
      },
      Seconds);
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("ablate_model", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("Ablation: analytical cache model vs fixed blocking "
              "(ALG+EXO kernels)\n");

  // Same pinned 8x12 generated kernel in both Engines; only the blocking
  // differs (EngineConfig::Blocks overrides the analytical model).
  EngineConfig ModelCfg;
  ModelCfg.Series = EngineSeries::Exo;
  ModelCfg.ForceMR = 8;
  ModelCfg.ForceNR = 12;
  Engine ModelE(ModelCfg);
  EngineConfig FixedCfg = ModelCfg;
  FixedCfg.Blocks = fixedBlockSizes(8, 12);
  Engine FixedE(FixedCfg);

  std::printf("model:  %s\nfixed:  %s\ncaches: %s\n",
              analyticalBlockSizes(CacheConfig::host(), 8, 12, sizeof(float))
                  .describe()
                  .c_str(),
              FixedCfg.Blocks->describe().c_str(),
              CacheConfig::host().describe().c_str());

  benchutil::Table T("ablate_model_gflops",
                     {"size", "analytical_model", "fixed_blocking"},
                     Opt.Csv);
  std::vector<int64_t> Sizes =
      Opt.Big ? std::vector<int64_t>{1000, 2000, 4000}
              : std::vector<int64_t>{256, 512, 1024, 1536};
  if (Opt.Smoke)
    Sizes = {64, 96};
  for (int64_t S : Sizes) {
    double Flops = 2.0 * S * S * S;
    benchutil::Measurement MModel = run(ModelE, S, Opt.Seconds);
    benchutil::Measurement MFixed = run(FixedE, S, Opt.Seconds);
    T.addRow(std::to_string(S),
             {fig::addGemmRow(Ctx, std::to_string(S), "analytical_model", S,
                              S, S, MModel, Flops),
              fig::addGemmRow(Ctx, std::to_string(S), "fixed_blocking", S, S,
                              S, MFixed, Flops)});
  }
  T.print();
  return Ctx.finish();
}
