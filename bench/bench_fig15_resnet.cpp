//===- bench_fig15_resnet.cpp - Paper Figure 15 (and Table I) -------------===//
//
// Per-layer GFLOPS for the 20 unique ResNet50 v1.5 im2row GEMMs. Expected
// shape (paper Fig. 15): ALG+EXO is the best option on roughly half the
// layers (the edge-rich ones), BLIS-with-prefetch on most of the rest.
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "exo/support/Str.h"

#include "dnn/Models.h"

int main(int Argc, char **Argv) {
  fig::Context Ctx("fig15_resnet", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::vector<dnn::LayerGemm> Layers =
      fig::smokeSlice(dnn::resnet50Layers(), Opt.Smoke);

  std::printf("Table I: ResNet50 v1.5 im2row GEMM shapes\n");
  benchutil::Table Tab("table1_resnet50_shapes",
                       {"layer", "layers", "m", "n", "k"}, Opt.Csv);
  for (const dnn::LayerGemm &L : Layers)
    Tab.addRow({std::to_string(L.Id), L.Layers, std::to_string(L.M),
                std::to_string(L.N), std::to_string(L.K)});
  Tab.print();

  std::printf("\nFigure 15: per-layer performance, ResNet50 v1.5\n");
  benchutil::Table T("fig15_resnet_gflops",
                     fig::seriesHeader("layer", {"winner"}), Opt.Csv);
  int ExoWins = 0;
  for (const dnn::LayerGemm &L : Layers) {
    std::vector<fig::SeriesPoint> Pts =
        fig::gemmSeriesRun(L.M, L.N, L.K, Opt.Seconds);
    size_t Win = 0;
    for (size_t I = 1; I < Pts.size(); ++I)
      if (Pts[I].Gflops > Pts[Win].Gflops)
        Win = I;
    if (fig::seriesNames()[Win] == "ALG+EXO")
      ++ExoWins;
    std::vector<std::string> Cells{std::to_string(L.Id)};
    for (const fig::SeriesPoint &Pt : Pts)
      Cells.push_back(exo::strf("%.2f", Pt.Gflops));
    Cells.push_back(fig::seriesNames()[Win]);
    T.addRow(std::move(Cells));
    fig::addSeriesRows(Ctx, "layer" + std::to_string(L.Id), L.M, L.N, L.K,
                       Pts);
  }
  T.print();
  std::printf("ALG+EXO is the best option for %d of %zu layers "
              "(paper: 9 of 20 on Carmel).\n",
              ExoWins, Layers.size());
  return Ctx.finish();
}
