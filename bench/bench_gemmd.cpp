//===- bench_gemmd.cpp - gemmd saturation: req/s vs client count ----------===//
//
// What the daemon transport costs and how it scales: an in-process
// gemmd::Server on a private socket, then 1/2/4/8 concurrent client
// sessions (one thread + one gemm::Client each) hammering the same GEMM
// shape for the time budget. Rows per client count:
//
//   gemmd  req_per_s (better=higher)  — aggregate completed requests/s,
//          with aggregate GFLOPS and the per-call mean riding along as
//          extras
//
// plus one "local" baseline row: the same shape through an in-process
// Engine::sgemm on one thread — the ceiling the IPC round trip (staging
// copies + doorbells + scheduling) is measured against.
//
// The first remote call is verified bitwise against the local Engine
// before anything is timed (the gemmd correctness contract; the real
// gate lives in daemon_test).
//
//===----------------------------------------------------------------------===//

#include "FigCommon.h"

#include "daemon/Server.h"
#include "ipc/Client.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <unistd.h>

using namespace gemm;

namespace {

std::string uniqueSocketPath() {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "/tmp/exo-gemmd-bench-%ld.sock",
                static_cast<long>(::getpid()));
  return Buf;
}

struct LoadPoint {
  uint64_t Requests = 0;
  double Seconds = 0;
  double reqPerS() const { return Requests / Seconds; }
};

/// \p Clients sessions flat-out for \p Budget seconds. Sessions connect
/// and warm up before the clock starts, so this measures the steady
/// state, not handshakes.
LoadPoint runLoad(const std::string &Socket, int Clients, int64_t S,
                  double Budget) {
  std::vector<std::unique_ptr<Client>> Cs;
  std::vector<std::vector<float>> As(Clients), Bs(Clients), Ccs(Clients);
  for (int I = 0; I != Clients; ++I) {
    Client::Options O;
    O.SocketPath = Socket;
    Cs.push_back(std::make_unique<Client>(O));
    As[I].resize(S * S);
    Bs[I].resize(S * S);
    Ccs[I].resize(S * S);
    benchutil::fillRandom(As[I].data(), As[I].size(), 11 + I);
    benchutil::fillRandom(Bs[I].data(), Bs[I].size(), 22 + I);
    // Warm-up call: connect + plan-cache hit path established.
    Cs[I]->sgemm(S, S, S, 1.f, As[I].data(), S, Bs[I].data(), S, 0.f,
                 Ccs[I].data(), S);
  }
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Total{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I != Clients; ++I)
    Ts.emplace_back([&, I] {
      uint64_t Mine = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        if (!Cs[I]->sgemm(S, S, S, 1.f, As[I].data(), S, Bs[I].data(), S,
                          0.f, Ccs[I].data(), S))
          ++Mine;
      }
      Total.fetch_add(Mine, std::memory_order_relaxed);
    });
  auto Start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(Budget));
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Ts)
    T.join();
  LoadPoint P;
  P.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  P.Requests = Total.load(std::memory_order_relaxed);
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  fig::Context Ctx("gemmd", Argc, Argv);
  benchutil::BenchOptions &Opt = Ctx.Opt;
  std::printf("gemmd saturation: req/s and aggregate GFLOPS vs concurrent "
              "clients (one shared daemon engine)\n");

  const int64_t S = Opt.Smoke ? 64 : Opt.Big ? 512 : 256;
  std::vector<int> ClientCounts =
      Opt.Smoke ? std::vector<int>{1, 2}
                : Opt.Big ? std::vector<int>{1, 2, 4, 8}
                          : std::vector<int>{1, 2, 4};
  const double Flops = 2.0 * S * S * S;

  gemmd::ServerOptions SO;
  SO.SocketPath = uniqueSocketPath();
  gemmd::Server Server(SO);
  if (exo::Error E = Server.start()) {
    std::fprintf(stderr, "gemmd server: %s\n", E.message().c_str());
    return 1;
  }

  // Correctness first: the remote result must equal the local Engine's
  // bitwise before any number is reported.
  Engine Local;
  {
    std::vector<float> A(S * S), B(S * S), CR(S * S, 1.f), CL(S * S, 1.f);
    benchutil::fillRandom(A.data(), A.size(), 11);
    benchutil::fillRandom(B.data(), B.size(), 22);
    Client::Options CO;
    CO.SocketPath = SO.SocketPath;
    Client Probe(CO);
    exo::Error E1 =
        Probe.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, CR.data(), S);
    exo::Error E2 =
        Local.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 1.f, CL.data(), S);
    if (E1 || E2) {
      std::fprintf(stderr, "gemm failed: %s\n",
                   (E1 ? E1 : E2).message().c_str());
      return 1;
    }
    if (std::memcmp(CR.data(), CL.data(), CR.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "WRONG RESULT: remote differs from local Engine "
                           "at %lld\n",
                   static_cast<long long>(S));
      return 1;
    }
  }

  benchutil::Table T("gemmd_saturation",
                     {"clients", "req_per_s", "agg_gflops", "ms_per_req"},
                     Opt.Csv);

  // The local ceiling: one thread, no transport.
  benchutil::Measurement MLocal;
  {
    std::vector<float> A(S * S), B(S * S), C(S * S);
    benchutil::fillRandom(A.data(), A.size(), 11);
    benchutil::fillRandom(B.data(), B.size(), 22);
    MLocal = benchutil::measure(
        [&] {
          Local.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 0.f, C.data(),
                      S);
        },
        Opt.Seconds);
  }
  double LocalReqPerS = 1.0 / MLocal.SecondsPerCall;
  T.addRow("local", {LocalReqPerS,
                     benchutil::gflops(Flops, MLocal.SecondsPerCall),
                     MLocal.SecondsPerCall * 1e3});
  {
    benchutil::ReportRow Row;
    Row.Label = "local";
    Row.Series = "local";
    Row.Metric = "req_per_s";
    Row.Better = "higher";
    Row.Value = LocalReqPerS;
    Row.SecondsPerCall = MLocal.SecondsPerCall;
    Row.Reps = MLocal.Reps;
    Row.Threads = resolveGemmThreads(0);
    Row.M = Row.N = Row.K = S;
    Row.Extra["clients"] = 0;
    Row.Extra["agg_gflops"] =
        benchutil::gflops(Flops, MLocal.SecondsPerCall);
    Ctx.Rep.addRow(std::move(Row));
  }

  for (int Clients : ClientCounts) {
    LoadPoint P = runLoad(SO.SocketPath, Clients, S, Opt.Seconds);
    double AggGflops = benchutil::gflops(Flops * P.Requests, P.Seconds);
    double MsPerReq =
        P.Requests ? P.Seconds / P.Requests * 1e3 * Clients : 0.0;
    T.addRow(std::to_string(Clients), {P.reqPerS(), AggGflops, MsPerReq});

    benchutil::ReportRow Row;
    Row.Label = "clients" + std::to_string(Clients);
    Row.Series = "gemmd";
    Row.Metric = "req_per_s";
    Row.Better = "higher";
    Row.Value = P.reqPerS();
    Row.SecondsPerCall = P.Requests ? P.Seconds / P.Requests : 0.0;
    Row.Reps = static_cast<int64_t>(P.Requests);
    Row.Threads = resolveGemmThreads(0);
    Row.M = Row.N = Row.K = S;
    Row.Extra["clients"] = Clients;
    Row.Extra["agg_gflops"] = AggGflops;
    Ctx.Rep.addRow(std::move(Row));
  }
  T.print();

  gemmd::ServerStats St = Server.stats();
  std::printf("daemon: %llu request(s), %llu ok, %llu busy, %llu client(s); "
              "plan %llu hit / %llu built; jit %llu compile(s)\n",
              static_cast<unsigned long long>(St.Wire.Requests),
              static_cast<unsigned long long>(St.Wire.Ok),
              static_cast<unsigned long long>(St.Wire.Busy),
              static_cast<unsigned long long>(St.Wire.TotalClients),
              static_cast<unsigned long long>(St.Wire.PlanHits),
              static_cast<unsigned long long>(St.Wire.PlanBuilds),
              static_cast<unsigned long long>(St.Wire.UkrCompiles));
  Server.stop();
  return Ctx.finish();
}
