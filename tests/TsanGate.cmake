# Invoked by the tsan_gate ctest (see tests/CMakeLists.txt): configures and
# builds a nested TSan-instrumented tree, then runs the concurrency-
# sensitive tests — the parallel macro-kernel (GemmTest with an 8-thread
# team), the kernel-cache service, and the gemmd daemon suite (poller +
# executors + cross-process rings) — failing on any data-race report.
#
# Variables: SRC (source root), BIN (nested binary dir).

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SRC} -B ${BIN} -DEXO_UKR_SANITIZE=thread
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "tsan_gate: configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BIN} --target gemm_test ukr_test
          daemon_test gemmd_client_helper
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "tsan_gate: build failed")
endif()

set(ENV{EXO_GEMM_THREADS} 8)
execute_process(COMMAND ${BIN}/tests/gemm_test RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "tsan_gate: gemm_test failed under TSan")
endif()

execute_process(
  COMMAND ${BIN}/tests/ukr_test --gtest_filter=KernelService*
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "tsan_gate: ukr_test (KernelService) failed under TSan")
endif()

# The daemon exercises poller/executor/reaper concurrency plus the shm
# rings; extra workers raise the interleaving pressure.
set(ENV{EXO_GEMMD_WORKERS} 4)
execute_process(COMMAND ${BIN}/tests/daemon_test RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "tsan_gate: daemon_test failed under TSan")
endif()
