//===- engine_alloc_test.cpp - Zero-allocation steady state ---------------===//
//
// Proves the Engine front door's "zero heap allocations per call once
// warm" guarantee (Engine.h): global operator new/delete are replaced with
// counting versions, the Engine is warmed on the workload's shapes, and
// then a batch of hot calls — cache hits, both transpose forms, plus a
// degenerate quick return — must leave the allocation counter untouched.
//
// Deliberately not a gtest: the framework allocates on every assertion, so
// the counted window must stay free of any harness code. Exit 0 on pass,
// 1 with a report on stderr otherwise.
//
// The Blis series keeps the JIT out of the picture; Threads=2 routes the
// hot calls through the ThreadPool's raw-callback dispatch, covering the
// claim that team fan-out does not box closures per call.
//
//===----------------------------------------------------------------------===//

#include "gemm/Engine.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

namespace {
std::atomic<long long> LiveNews{0};
std::atomic<bool> Counting{false};
} // namespace

void *operator new(size_t Size) {
  if (Counting.load(std::memory_order_relaxed))
    LiveNews.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }

namespace {

struct Shape {
  int64_t M, N, K;
};

int run() {
  using namespace gemm;

  // Edge-heavy and tile-aligned shapes, matching the differential sweep's
  // flavor but small enough to keep this binary fast.
  const Shape Shapes[] = {{64, 48, 32}, {33, 29, 31}, {17, 50, 23}};

  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Cfg.Threads = 2;
  Engine E(Cfg);

  std::vector<float> A(64 * 50), B(50 * 50), C(64 * 50);
  for (size_t I = 0; I != A.size(); ++I)
    A[I] = static_cast<float>(I % 13) * 0.25f;
  for (size_t I = 0; I != B.size(); ++I)
    B[I] = static_cast<float>(I % 7) * 0.5f;

  // Warm-up: builds every plan, populates the workspace pool, spins up the
  // thread pool, and lets lazy library/runtime init happen outside the
  // counted window. Two rounds so pooled workspaces are recycled at least
  // once before counting starts.
  for (int Round = 0; Round != 2; ++Round)
    for (const Shape &S : Shapes) {
      if (exo::Error Err = E.sgemm(S.M, S.N, S.K, 1.0f, A.data(), S.M,
                                   B.data(), S.K, 0.5f, C.data(), S.M)) {
        std::fprintf(stderr, "engine_alloc_test: warm-up failed: %s\n",
                     Err.message().c_str());
        return 1;
      }
      if (exo::Error Err =
              E.sgemm(Trans::Transpose, Trans::None, S.M, S.N, S.K, 1.0f,
                      A.data(), S.K, B.data(), S.K, 0.5f, C.data(), S.M)) {
        std::fprintf(stderr, "engine_alloc_test: warm-up (T) failed: %s\n",
                     Err.message().c_str());
        return 1;
      }
    }

  EngineStats Warm = E.stats();

  LiveNews.store(0, std::memory_order_relaxed);
  Counting.store(true, std::memory_order_relaxed);
  int Failures = 0;
  for (int Rep = 0; Rep != 10; ++Rep) {
    for (const Shape &S : Shapes) {
      if (E.sgemm(S.M, S.N, S.K, 1.0f, A.data(), S.M, B.data(), S.K, 0.5f,
                  C.data(), S.M))
        ++Failures;
      if (E.sgemm(Trans::Transpose, Trans::None, S.M, S.N, S.K, 1.0f,
                  A.data(), S.K, B.data(), S.K, 0.5f, C.data(), S.M))
        ++Failures;
    }
    // Degenerate quick return: must also be allocation-free.
    if (E.sgemm(0, 8, 8, 1.0f, nullptr, 1, nullptr, 1, 0.0f, C.data(), 64))
      ++Failures;
  }
  Counting.store(false, std::memory_order_relaxed);
  long long Allocs = LiveNews.load(std::memory_order_relaxed);

  EngineStats Hot = E.stats();
  if (Failures != 0) {
    std::fprintf(stderr, "engine_alloc_test: %d hot calls failed\n",
                 Failures);
    return 1;
  }
  if (Hot.Misses != Warm.Misses || Hot.Builds != Warm.Builds) {
    std::fprintf(stderr,
                 "engine_alloc_test: hot window was not actually hot "
                 "(builds %llu -> %llu, misses %llu -> %llu)\n",
                 static_cast<unsigned long long>(Warm.Builds),
                 static_cast<unsigned long long>(Hot.Builds),
                 static_cast<unsigned long long>(Warm.Misses),
                 static_cast<unsigned long long>(Hot.Misses));
    return 1;
  }
  if (Allocs != 0) {
    std::fprintf(stderr,
                 "engine_alloc_test: %lld heap allocations in the hot "
                 "window (expected 0)\n",
                 Allocs);
    return 1;
  }
  std::printf("engine_alloc_test: PASS (0 allocations across %d hot calls, "
              "%llu cached plans)\n",
              10 * (2 * 3 + 1), static_cast<unsigned long long>(E.planCount()));
  return 0;
}

} // namespace

int main() { return run(); }
