//===- JitCacheTestEnv.h - Ephemeral JIT-cache isolation for tests --------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test binaries that can reach the JIT (directly or through KernelService /
/// ExoProvider) must never read or publish artifacts in the developer's real
/// cache (~/.cache/exo-ukr): a stale artifact there can mask a codegen
/// regression, and test runs would pollute it with throwaway kernels.
///
/// Linking JitCacheTestEnv.cpp into a test binary registers a gtest global
/// environment that, before any test runs, repoints both the process
/// environment (EXO_JIT_CACHE_DIR, inherited by any subprocess the tests
/// spawn) and the already-constructed JitDiskCache::global() at a fresh
/// directory under TMPDIR. Tests that want a *private* cache on top of the
/// shared ephemeral one (cold/warm-dir scenarios) call makeTempDir().
///
//===----------------------------------------------------------------------===//

#ifndef EXO_TESTS_JITCACHETESTENV_H
#define EXO_TESTS_JITCACHETESTENV_H

#include <string>

namespace exotest {

/// A fresh mkdtemp directory under $TMPDIR (default /tmp). Leaked on
/// purpose: loaded artifacts may stay dlopen-mapped for the process
/// lifetime, so tearing the directory down under them would be undefined.
/// Returns "" (and fails the current test) when creation fails.
std::string makeTempDir(const char *Prefix = "exo-test");

/// The ephemeral cache root the global environment installed, or "" when
/// JitCacheTestEnv.cpp is not linked into this binary.
const std::string &jitCacheTestRoot();

} // namespace exotest

#endif // EXO_TESTS_JITCACHETESTENV_H
