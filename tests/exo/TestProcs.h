//===- TestProcs.h - Shared procedure builders for tests ------------------===//

#ifndef EXO_TESTS_TESTPROCS_H
#define EXO_TESTS_TESTPROCS_H

#include "exo/ir/Builder.h"

namespace exotest {

/// The micro-kernel specification (same shape as ukr::makeUkernelRef, local
/// to the exo tests so they do not depend on the ukr layer):
/// C[NR, MR] (row stride ldc) += Ac[KC, MR] * Bc[KC, NR].
inline exo::Proc makeMicroGemm() {
  using namespace exo;
  ProcBuilder B("ukernel_ref");
  ExprPtr MR = B.sizeParam("MR");
  ExprPtr NR = B.sizeParam("NR");
  ExprPtr KC = B.sizeParam("KC");
  ExprPtr Ldc = B.sizeParam("ldc");
  B.tensorParam("Ac", ScalarKind::F32, {KC, MR}, MemSpace::dram(), false);
  B.tensorParam("Bc", ScalarKind::F32, {KC, NR}, MemSpace::dram(), false);
  B.tensorParam("C", ScalarKind::F32, {NR, MR}, MemSpace::dram(), true,
                "ldc");
  B.precond(BinOpExpr::make(BinOpExpr::Op::Ge, Ldc, MR));
  ExprPtr K = B.beginFor("k", idx(0), KC);
  ExprPtr J = B.beginFor("j", idx(0), NR);
  ExprPtr I = B.beginFor("i", idx(0), MR);
  B.reduce("C", {J, I}, B.readOf("Ac", {K, I}) * B.readOf("Bc", {K, J}));
  B.endFor();
  B.endFor();
  B.endFor();
  return B.build();
}

} // namespace exotest

#endif // EXO_TESTS_TESTPROCS_H
