//===- JitTest.cpp - Runtime compilation ----------------------------------===//

#include "exo/jit/Jit.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(JitTest, CompilerAvailable) {
  // The repository's tests require a working system C compiler (the JIT is
  // how Exo-generated C runs at all).
  EXPECT_TRUE(jitAvailable());
}

TEST(JitTest, CompileAndCall) {
  if (!jitAvailable())
    GTEST_SKIP();
  auto K = jitCompile("int exo_test_add(int a, int b) { return a + b; }\n",
                      "exo_test_add", "");
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  auto Fn = (*K)->as<int (*)(int, int)>();
  EXPECT_EQ(Fn(2, 40), 42);
}

TEST(JitTest, CacheReturnsSameKernel) {
  if (!jitAvailable())
    GTEST_SKIP();
  const char *Src = "int exo_test_cached(void) { return 7; }\n";
  auto K1 = jitCompile(Src, "exo_test_cached", "");
  auto K2 = jitCompile(Src, "exo_test_cached", "");
  ASSERT_TRUE(static_cast<bool>(K1));
  ASSERT_TRUE(static_cast<bool>(K2));
  EXPECT_EQ(K1->get(), K2->get());
}

TEST(JitTest, CompileErrorReported) {
  if (!jitAvailable())
    GTEST_SKIP();
  auto K = jitCompile("this is not C\n", "nope", "");
  ASSERT_FALSE(static_cast<bool>(K));
  EXPECT_NE(K.message().find("JIT compilation failed"), std::string::npos);
}

TEST(JitTest, MissingSymbolReported) {
  if (!jitAvailable())
    GTEST_SKIP();
  auto K = jitCompile("int present(void) { return 1; }\n", "absent", "");
  ASSERT_FALSE(static_cast<bool>(K));
  EXPECT_NE(K.message().find("absent"), std::string::npos);
}
