//===- TypeTest.cpp - Scalar kinds and memory spaces ----------------------===//

#include "exo/ir/Type.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(ScalarKindTest, NamesRoundTrip) {
  for (ScalarKind K : {ScalarKind::F16, ScalarKind::F32, ScalarKind::F64,
                       ScalarKind::I8, ScalarKind::I16, ScalarKind::I32,
                       ScalarKind::Index, ScalarKind::Bool}) {
    ScalarKind Out;
    ASSERT_TRUE(parseScalarKind(scalarKindName(K), Out));
    EXPECT_EQ(Out, K);
  }
}

TEST(ScalarKindTest, ParseRejectsUnknown) {
  ScalarKind Out;
  EXPECT_FALSE(parseScalarKind("f128", Out));
  EXPECT_FALSE(parseScalarKind("", Out));
}

TEST(ScalarKindTest, Sizes) {
  EXPECT_EQ(scalarKindBytes(ScalarKind::F16), 2u);
  EXPECT_EQ(scalarKindBytes(ScalarKind::F32), 4u);
  EXPECT_EQ(scalarKindBytes(ScalarKind::F64), 8u);
  EXPECT_EQ(scalarKindBytes(ScalarKind::I8), 1u);
  EXPECT_EQ(scalarKindBytes(ScalarKind::Index), 0u);
}

TEST(ScalarKindTest, FloatClassification) {
  EXPECT_TRUE(isFloatKind(ScalarKind::F16));
  EXPECT_TRUE(isFloatKind(ScalarKind::F32));
  EXPECT_FALSE(isFloatKind(ScalarKind::I32));
  EXPECT_FALSE(isFloatKind(ScalarKind::Index));
}

TEST(MemSpaceTest, DramSingleton) {
  const MemSpace *D1 = MemSpace::dram();
  const MemSpace *D2 = MemSpace::dram();
  EXPECT_EQ(D1, D2);
  EXPECT_FALSE(D1->isRegisterFile());
  EXPECT_EQ(D1->name(), "DRAM");
  EXPECT_TRUE(D1->supports(ScalarKind::F32));
  EXPECT_FALSE(D1->supports(ScalarKind::Index));
}

TEST(MemSpaceTest, RegisterFileInterning) {
  const MemSpace *R1 = MemSpace::makeRegisterFile(
      "TestReg128", {{ScalarKind::F32, {"testv4f", 4}}});
  const MemSpace *R2 = MemSpace::makeRegisterFile(
      "TestReg128", {{ScalarKind::F32, {"testv4f", 4}}});
  EXPECT_EQ(R1, R2);
  EXPECT_TRUE(R1->isRegisterFile());
  EXPECT_EQ(R1->lanes(ScalarKind::F32), 4u);
  EXPECT_EQ(R1->vecType(ScalarKind::F32).CType, "testv4f");
  EXPECT_TRUE(R1->supports(ScalarKind::F32));
  EXPECT_FALSE(R1->supports(ScalarKind::F64));
}

TEST(MemSpaceTest, Lookup) {
  MemSpace::makeRegisterFile("TestLookupSpace",
                             {{ScalarKind::F64, {"v2d", 2}}});
  EXPECT_NE(MemSpace::lookup("TestLookupSpace"), nullptr);
  EXPECT_EQ(MemSpace::lookup("NoSuchSpace"), nullptr);
  EXPECT_EQ(MemSpace::lookup("DRAM"), MemSpace::dram());
}
