//===- ExtraXformsTest.cpp - cut_loop, fuse_loops, remove_loop ------------===//

#include "exo/ir/Printer.h"
#include "exo/pattern/Cursor.h"
#include "exo/sched/Schedule.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;
using exotest::makeMicroGemm;

namespace {

Proc expectOk(Expected<Proc> P, const char *What) {
  EXPECT_TRUE(static_cast<bool>(P)) << What << ": " << P.message();
  return P ? P.take() : Proc();
}

Proc evaled(int64_t MR = 8, int64_t NR = 12) {
  return expectOk(partialEval(makeMicroGemm(), {{"MR", MR}, {"NR", NR}}),
                  "partial_eval");
}

} // namespace

TEST(CutLoopTest, SplitsRange) {
  Proc P = expectOk(cutLoop(evaled(8, 10), "for j in _: _", 8), "cut");
  std::string S = printProc(P);
  EXPECT_NE(S.find("for j in seq(0, 8)"), std::string::npos) << S;
  EXPECT_NE(S.find("for j in seq(8, 10)"), std::string::npos) << S;
}

TEST(CutLoopTest, EdgesOfTheRange) {
  // Cutting at 0 leaves an empty prefix loop; at N an empty tail loop.
  Proc P0 = expectOk(cutLoop(evaled(), "for j in _: _", 0), "cut0");
  EXPECT_NE(printProc(P0).find("for j in seq(0, 0)"), std::string::npos);
  Proc PN = expectOk(cutLoop(evaled(), "for j in _: _", 12), "cutN");
  EXPECT_NE(printProc(PN).find("for j in seq(12, 12)"), std::string::npos);
}

TEST(CutLoopTest, OutOfRangeRejected) {
  EXPECT_FALSE(static_cast<bool>(cutLoop(evaled(), "for j in _: _", 13)));
  EXPECT_FALSE(static_cast<bool>(cutLoop(evaled(), "for j in _: _", -1)));
  EXPECT_FALSE(static_cast<bool>(cutLoop(evaled(), "for k in _: _", 1)))
      << "symbolic bounds cannot be cut";
}

TEST(FuseLoopsTest, CutThenFuseRejectedOnBoundMismatch) {
  Proc P = expectOk(cutLoop(evaled(8, 12), "for j in _: _", 4), "cut");
  auto Q = fuseLoops(P, "for j in _: _");
  EXPECT_FALSE(static_cast<bool>(Q)) << "bounds differ after a cut";
}

TEST(FuseLoopsTest, FusesIdenticalSiblings) {
  // Build: for a in (0,N): x[a] = 1 ; for b in (0,N): y[b] = x[b]
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr A = B.beginFor("a", idx(0), N);
  B.assign("x", {A}, ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  ExprPtr Bv = B.beginFor("b", idx(0), N);
  B.assign("y", {Bv}, B.readOf("x", {Bv}));
  B.endFor();
  Proc P = B.build();

  Proc Q = expectOk(fuseLoops(P, "for a in _: _"), "fuse");
  ASSERT_EQ(Q.body().size(), 1u);
  const auto *F = castS<ForStmt>(Q.body()[0]);
  EXPECT_EQ(F->loopVar(), "a");
  ASSERT_EQ(F->body().size(), 2u);
  // The second loop's variable was renamed.
  std::string S = printProc(Q);
  EXPECT_NE(S.find("y[a] = x[a]"), std::string::npos) << S;
}

TEST(FuseLoopsTest, NoSiblingRejected) {
  EXPECT_FALSE(static_cast<bool>(fuseLoops(evaled(), "for i in _: _")));
}

TEST(RemoveLoopTest, DropsInvariantLoop) {
  // for k: x[0] = 1 — the body ignores k; removing is safe since KC >= 1.
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr K = B.beginFor("k", idx(0), N);
  B.assign("x", {idx(0)}, ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();

  Proc Q = expectOk(removeLoop(P, "for k in _: _"), "remove");
  ASSERT_EQ(Q.body().size(), 1u);
  EXPECT_TRUE(isaS<AssignStmt>(Q.body()[0]));
}

TEST(RemoveLoopTest, DependentBodyRejected) {
  auto Q = removeLoop(evaled(), "for i in _: _");
  ASSERT_FALSE(static_cast<bool>(Q));
  EXPECT_NE(Q.message().find("loop variable"), std::string::npos);
}

TEST(RemoveLoopTest, PossiblyZeroTripRejected) {
  // for k in seq(0, N - 1): the trip count can be zero when N == 1.
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  B.beginFor("k", idx(0), N - 1);
  B.assign("x", {idx(0)}, ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();
  EXPECT_FALSE(static_cast<bool>(removeLoop(P, "for k in _: _")));
}
