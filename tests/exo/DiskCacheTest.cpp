//===- DiskCacheTest.cpp - Persistent JIT artifact cache ------------------===//

#include "exo/jit/DiskCache.h"

#include "JitCacheTestEnv.h"
#include "exo/jit/Jit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unistd.h>
#include <utime.h>

using namespace exo;

namespace {

/// A private cache root for one test (on top of the binary-wide ephemeral
/// EXO_JIT_CACHE_DIR the shared environment installs).
std::string makeTempDir() { return exotest::makeTempDir("exo-dctest"); }

/// Simulates a torn write from another process: the artifact path is
/// replaced (new inode) with a short garbage prefix. Replacing rather than
/// truncating in place keeps any in-process mapping of the old file valid,
/// exactly like a concurrent writer would.
void corruptFile(const std::string &Path) {
  std::string Tmp = Path + ".corrupt";
  std::ofstream(Tmp) << "\x7f" "ELFnope";
  ASSERT_EQ(::rename(Tmp.c_str(), Path.c_str()), 0) << Path;
}

} // namespace

TEST(Fnv1aTest, KnownVectors) {
  // Reference values for the 64-bit FNV-1a function (offset basis
  // 0xcbf29ce484222325, prime 0x100000001b3).
  EXPECT_EQ(fnv1a64(std::string_view("")), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64(std::string_view("foobar")), 0x85944171f73967e8ull);
}

TEST(Fnv1aTest, SeedChainsLikeConcatenation) {
  std::string_view S = "kernel source text";
  for (size_t Cut = 0; Cut <= S.size(); ++Cut)
    EXPECT_EQ(fnv1a64(S.substr(Cut), fnv1a64(S.substr(0, Cut))), fnv1a64(S))
        << Cut;
  // And the pointer overload agrees with the string_view one.
  EXPECT_EQ(fnv1a64(S.data(), S.size()), fnv1a64(S));
}

TEST(ArtifactKeyTest, SensitiveToEveryField) {
  uint64_t Base = jitArtifactKey("int f(void){return 1;}", "-O2", "f");
  EXPECT_NE(jitArtifactKey("int f(void){return 2;}", "-O2", "f"), Base);
  EXPECT_NE(jitArtifactKey("int f(void){return 1;}", "-O3", "f"), Base);
  EXPECT_NE(jitArtifactKey("int f(void){return 1;}", "-O2", "g"), Base);
  // Field boundaries must not alias: moving a byte across the
  // source/flags boundary changes the key.
  EXPECT_NE(jitArtifactKey("ab", "c", "s"), jitArtifactKey("a", "bc", "s"));
  EXPECT_NE(jitArtifactKey("a", "bc", "s"), jitArtifactKey("a", "b", "cs"));
}

TEST(ArtifactKeyTest, CompilerIdentityIsNonEmpty) {
  if (!jitAvailable())
    GTEST_SKIP();
  // The identity pins the resolved compiler plus its version banner; an
  // empty identity would silently share artifacts across toolchains.
  EXPECT_FALSE(jitCompilerIdentity().empty());
  EXPECT_NE(jitCompilerIdentity().find(jitCompilerCommand()),
            std::string::npos);
}

TEST(DiskCacheTest, StoreLookupRemove) {
  std::string Dir = makeTempDir();
  JitDiskCache Cache(Dir);
  ASSERT_TRUE(Cache.enabled());

  std::string Obj = Dir + "/fake.so";
  std::ofstream(Obj) << "not really an object, 32 bytes..";
  ArtifactMeta Meta;
  Meta.Symbol = "sym";
  Meta.Flags = "-O3";
  Meta.Compiler = "cc test";

  EXPECT_EQ(Cache.lookup(42), "");
  auto Stored = Cache.store(42, Obj, Meta);
  ASSERT_TRUE(static_cast<bool>(Stored)) << Stored.message();
  EXPECT_EQ(Cache.lookup(42), *Stored);

  std::vector<JitDiskCache::Entry> Entries = Cache.list();
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Key, 42u);
  EXPECT_EQ(Entries[0].Meta.Symbol, "sym");
  EXPECT_EQ(Entries[0].Meta.Flags, "-O3");
  EXPECT_EQ(Entries[0].Meta.Abi, JitCacheAbiVersion);

  EXPECT_TRUE(Cache.remove(42));
  EXPECT_EQ(Cache.lookup(42), "");
  EXPECT_FALSE(Cache.remove(42));
}

TEST(DiskCacheTest, CorruptMetaIsFlaggedCountedAndEvictedFirst) {
  std::string Dir = makeTempDir();
  JitDiskCache Cache(Dir);
  ASSERT_TRUE(Cache.enabled());

  std::string Obj = Dir + "/fake.so";
  std::ofstream(Obj) << std::string(100, 'x');
  ArtifactMeta Meta;
  Meta.Symbol = "sym";
  for (uint64_t Key : {1u, 2u})
    ASSERT_TRUE(static_cast<bool>(Cache.store(Key, Obj, Meta)));

  // Scribble over key 1's sidecar the way the old std::atoi parse used to
  // accept silently: an abi field that is not a number at all. The entry
  // must come back flagged, not defaulted to abi 0.
  std::ofstream(Dir + "/k0000000000000001.meta")
      << "symbol=sym\nabi=banana\n";

  uint64_t Before = JitDiskCache::corruptMetaObserved();
  std::vector<JitDiskCache::Entry> Entries = Cache.list();
  ASSERT_EQ(Entries.size(), 2u);
  for (const JitDiskCache::Entry &E : Entries)
    EXPECT_EQ(E.MetaCorrupt, E.Key == 1u) << "key " << E.Key;
  EXPECT_EQ(JitDiskCache::corruptMetaObserved() - Before, 1u);

  // An out-of-range numeric abi is just as corrupt as a non-numeric one.
  std::ofstream(Dir + "/k0000000000000002.meta")
      << "symbol=sym\nabi=99999999999999999999\n";
  for (const JitDiskCache::Entry &E : Cache.list())
    EXPECT_TRUE(E.MetaCorrupt) << "key " << E.Key;

  // Restore key 2's sidecar; pruning under pressure must sacrifice the
  // corrupt entry first even when it is not the LRU victim.
  ASSERT_TRUE(Cache.remove(2));
  ASSERT_TRUE(static_cast<bool>(Cache.store(2, Obj, Meta)));
  time_t Now = time(nullptr);
  for (JitDiskCache::Entry &E : Cache.list()) {
    // Make the corrupt key 1 the *hottest* entry.
    struct utimbuf Times;
    Times.actime = Times.modtime = Now - (E.Key == 1 ? 0 : 1000);
    ASSERT_EQ(utime(E.SoPath.c_str(), &Times), 0);
  }
  EXPECT_EQ(Cache.prune(150), 1u);
  std::vector<JitDiskCache::Entry> Left = Cache.list();
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left[0].Key, 2u);
  EXPECT_FALSE(Left[0].MetaCorrupt);
}

TEST(DiskCacheTest, PruneEvictsOldestFirst) {
  std::string Dir = makeTempDir();
  JitDiskCache Cache(Dir);
  ASSERT_TRUE(Cache.enabled());

  std::string Obj = Dir + "/fake.so";
  std::ofstream(Obj) << std::string(100, 'x');
  ArtifactMeta Meta;
  Meta.Symbol = "sym";
  for (uint64_t Key : {1u, 2u, 3u})
    ASSERT_TRUE(static_cast<bool>(Cache.store(Key, Obj, Meta)));

  // Backdate the artifacts so key 1 is the coldest, key 3 the hottest.
  time_t Now = time(nullptr);
  for (JitDiskCache::Entry &E : Cache.list()) {
    struct utimbuf Times;
    Times.actime = Times.modtime = Now - 1000 + static_cast<long>(E.Key) * 100;
    ASSERT_EQ(utime(E.SoPath.c_str(), &Times), 0);
  }

  // Room for one 100-byte artifact: the two oldest go.
  EXPECT_EQ(Cache.prune(150), 2u);
  std::vector<JitDiskCache::Entry> Left = Cache.list();
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left[0].Key, 3u);

  EXPECT_EQ(Cache.prune(0), 1u);
  EXPECT_TRUE(Cache.list().empty());
}

TEST(DiskCacheTest, JitPersistsAcrossMemoryCacheClear) {
  if (!jitAvailable())
    GTEST_SKIP();
  JitDiskCache::setGlobalRoot(makeTempDir());
  jitClearMemoryCache();
  jitResetStats();

  const char *Src = "int exo_dc_persist(void) { return 31; }\n";
  auto K1 = jitCompile(Src, "exo_dc_persist", "");
  ASSERT_TRUE(static_cast<bool>(K1)) << K1.message();
  EXPECT_EQ(jitStats().Compiles, 1u);
  EXPECT_EQ(jitStats().DiskHits, 0u);
  EXPECT_GT(jitStats().CompileMs, 0.0);

  // With the in-process map dropped, the second compile must be served by
  // the disk artifact — no compiler invocation.
  jitClearMemoryCache();
  auto K2 = jitCompile(Src, "exo_dc_persist", "");
  ASSERT_TRUE(static_cast<bool>(K2)) << K2.message();
  EXPECT_EQ(jitStats().Compiles, 1u);
  EXPECT_EQ(jitStats().DiskHits, 1u);
  EXPECT_EQ((K2)->get()->as<int (*)(void)>()(), 31);
}

TEST(DiskCacheTest, CorruptedArtifactRecompiles) {
  if (!jitAvailable())
    GTEST_SKIP();
  JitDiskCache::setGlobalRoot(makeTempDir());
  jitClearMemoryCache();
  jitResetStats();

  const char *Src = "int exo_dc_corrupt(void) { return 9; }\n";
  ASSERT_TRUE(static_cast<bool>(jitCompile(Src, "exo_dc_corrupt", "")));
  std::vector<JitDiskCache::Entry> Entries = JitDiskCache::global().list();
  ASSERT_EQ(Entries.size(), 1u);
  corruptFile(Entries[0].SoPath);

  // The corrupt artifact must not crash the loader: the entry is evicted
  // and the kernel recompiled (then re-published intact).
  jitClearMemoryCache();
  auto K = jitCompile(Src, "exo_dc_corrupt", "");
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->get()->as<int (*)(void)>()(), 9);
  EXPECT_EQ(jitStats().Compiles, 2u);
  Entries = JitDiskCache::global().list();
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_GT(Entries[0].Bytes, 0u);
}

TEST(DiskCacheTest, KillSwitchBypassesDisk) {
  if (!jitAvailable())
    GTEST_SKIP();
  JitDiskCache::setGlobalRoot(makeTempDir());
  jitClearMemoryCache();

  setenv("EXO_JIT_CACHE", "0", 1);
  EXPECT_FALSE(JitDiskCache::global().enabled());
  auto K = jitCompile("int exo_dc_killed(void) { return 3; }\n",
                      "exo_dc_killed", "");
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->get()->as<int (*)(void)>()(), 3);
  unsetenv("EXO_JIT_CACHE");

  // Nothing may have been published while the switch was set.
  EXPECT_TRUE(JitDiskCache::global().enabled());
  EXPECT_TRUE(JitDiskCache::global().list().empty());
}
