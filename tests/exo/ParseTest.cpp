//===- ParseTest.cpp - Surface-syntax parser and round-trips --------------===//

#include "exo/front/Parse.h"

#include "exo/interp/Interp.h"
#include "exo/ir/Printer.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(ParseTest, MinimalProc) {
  auto P = parseProc("def p(N: size, x: f32[N] @ DRAM):\n"
                     "    for i in seq(0, N):\n"
                     "        x[i] = 0\n");
  ASSERT_TRUE(static_cast<bool>(P)) << P.message();
  EXPECT_EQ(P->name(), "p");
  ASSERT_EQ(P->params().size(), 2u);
  EXPECT_EQ(P->params()[0].PKind, Param::Kind::Size);
  EXPECT_EQ(P->params()[1].PKind, Param::Kind::Tensor);
  ASSERT_EQ(P->body().size(), 1u);
  EXPECT_TRUE(isaS<ForStmt>(P->body()[0]));
}

TEST(ParseTest, ExpressionsAndPrecedence) {
  auto E = parseIndexExpr("4 * jt + jtt");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(printExpr(*E), "4 * jt + jtt");

  auto E2 = parseIndexExpr("(a + b) * 2 - c % 3");
  ASSERT_TRUE(static_cast<bool>(E2));
  EXPECT_EQ(printExpr(*E2), "(a + b) * 2 - c % 3");
}

TEST(ParseTest, AssertsAndAllocs) {
  auto P = parseProc("def p(N: size, y: f32[N] @ DRAM):\n"
                     "    assert N >= 4\n"
                     "    acc: f32 @ DRAM\n"
                     "    acc = 0\n"
                     "    for i in seq(0, N):\n"
                     "        acc += y[i]\n");
  ASSERT_TRUE(static_cast<bool>(P)) << P.message();
  ASSERT_EQ(P->preconds().size(), 1u);
  ASSERT_EQ(P->body().size(), 3u);
  EXPECT_TRUE(isaS<AllocStmt>(P->body()[0]));
  const auto *A = dyn_castS<AssignStmt>(P->body()[1]);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(A->indices().empty());
}

TEST(ParseTest, InstructionCalls) {
  auto P = parseProc(
      "def p(src: f32[4] @ DRAM, dst: f32[4] @ DRAM):\n"
      "    r: f32[4] @ Vec4F\n"
      "    vec_ld_4xf32(r[0:4], src[0:4])\n"
      "    vec_st_4xf32(dst[0:4], r[0:4])\n",
      isaInstrResolver());
  ASSERT_TRUE(static_cast<bool>(P)) << P.message();
  ASSERT_EQ(P->body().size(), 3u);
  const auto *C = dyn_castS<CallStmt>(P->body()[1]);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->callee()->name(), "vec_ld_4xf32");
  ASSERT_EQ(C->args().size(), 2u);
  EXPECT_TRUE(C->args()[0].isWindow());
  EXPECT_FALSE(C->args()[0].Dims[0].isPoint());
}

TEST(ParseTest, UnknownInstructionDiagnosed) {
  auto P = parseProc("def p(x: f32[4] @ DRAM):\n"
                     "    frob_4xf32(x[0:4])\n",
                     isaInstrResolver());
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.message().find("frob_4xf32"), std::string::npos);
}

TEST(ParseTest, SyntaxErrorsCarryLineNumbers) {
  auto P = parseProc("def p(N: size, x: f32[N] @ DRAM):\n"
                     "    for i in seq(0 N):\n"
                     "        x[i] = 0\n");
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.message().find("line 2"), std::string::npos) << P.message();
}

TEST(ParseTest, BadIndentationDiagnosed) {
  auto P = parseProc("def p(N: size, x: f32[N] @ DRAM):\n"
                     "    for i in seq(0, N):\n"
                     "            x[i] = 0\n");
  ASSERT_FALSE(static_cast<bool>(P));
}

TEST(ParseTest, RoundTripMicroGemm) {
  Proc Orig = exotest::makeMicroGemm();
  std::string Printed = printProc(Orig);
  auto Reparsed = parseProc(Printed);
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  // print(parse(print(p))) == print(p).
  EXPECT_EQ(printProc(*Reparsed), Printed);
}

TEST(ParseTest, RoundTripPreservesSemantics) {
  Proc Orig = exotest::makeMicroGemm();
  auto Reparsed = parseProc(printProc(Orig));
  ASSERT_TRUE(static_cast<bool>(Reparsed));

  // Run both on the same inputs (the reparsed proc lost the lead-stride
  // annotation, so use a dense C, i.e. ldc == MR).
  const int64_t MR = 3, NR = 2, KC = 4;
  std::vector<double> Ac(KC * MR), Bc(KC * NR), C1(NR * MR, 1.0), C2;
  for (size_t I = 0; I != Ac.size(); ++I)
    Ac[I] = static_cast<double>(I) - 3;
  for (size_t I = 0; I != Bc.size(); ++I)
    Bc[I] = static_cast<double>(I % 3);
  C2 = C1;
  std::map<std::string, int64_t> Scalars{
      {"MR", MR}, {"NR", NR}, {"KC", KC}, {"ldc", MR}};
  ASSERT_FALSE(interpret(Orig, Scalars,
                         {{"Ac", {Ac.data(), {KC, MR}}},
                          {"Bc", {Bc.data(), {KC, NR}}},
                          {"C", {C1.data(), {NR, MR}}}}));
  ASSERT_FALSE(interpret(*Reparsed, Scalars,
                         {{"Ac", {Ac.data(), {KC, MR}}},
                          {"Bc", {Bc.data(), {KC, NR}}},
                          {"C", {C2.data(), {NR, MR}}}}));
  EXPECT_EQ(C1, C2);
}

TEST(ParseTest, FloatLiteralAdoptsBufferType) {
  auto P = parseProc("def p(x: f64[2] @ DRAM):\n"
                     "    x[0] = 2.5\n");
  ASSERT_TRUE(static_cast<bool>(P)) << P.message();
  const auto *A = castS<AssignStmt>(P->body()[0]);
  EXPECT_EQ(A->rhs()->type(), ScalarKind::F64);
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(A->rhs())->floatValue(), 2.5);
}
