//===- PropertyTest.cpp - Randomized scheduling property tests ------------===//
//
// Property: any chain of scheduling primitives that the system *accepts*
// preserves semantics. Each test instance applies a pseudo-random sequence
// of rewrites to the micro-GEMM spec (failures are fine — inapplicable
// rewrites must simply be rejected, not crash) and then checks the result
// against the original with the interpreter-based equivalence oracle.
//
//===----------------------------------------------------------------------===//

#include "exo/ir/Printer.h"
#include "exo/ir/Rewrite.h"
#include "exo/pattern/Cursor.h"
#include "exo/sched/Schedule.h"
#include "exo/sched/Validate.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

#include <random>

using namespace exo;
using exotest::makeMicroGemm;

namespace {

class ScheduleChainTest : public testing::TestWithParam<unsigned> {};

/// Picks a random loop variable present in the proc.
std::string randomLoopVar(const Proc &P, std::mt19937 &Rng) {
  std::set<std::string> Vars;
  collectLoopVars(P.body(), Vars);
  if (Vars.empty())
    return std::string();
  std::vector<std::string> V(Vars.begin(), Vars.end());
  return V[Rng() % V.size()];
}

} // namespace

TEST_P(ScheduleChainTest, AcceptedRewritesPreserveSemantics) {
  std::mt19937 Rng(GetParam());
  Proc Base = partialEval(makeMicroGemm(), {{"MR", 8}, {"NR", 12}}).take();
  Proc Cur = Base;

  // Fast options: the final oracle below is the authoritative check.
  SchedOptions Fast;
  Fast.Validate = false;
  int Applied = 0;
  int Fresh = 0;

  for (int Step = 0; Step != 12; ++Step) {
    std::string V = randomLoopVar(Cur, Rng);
    if (V.empty())
      break;
    std::string Pat = "for " + V + " in _: _";
    Expected<Proc> Next = errorf("noop");
    switch (Rng() % 5) {
    case 0: {
      std::string O = "v" + std::to_string(Fresh++);
      std::string I = "v" + std::to_string(Fresh++);
      int64_t Factor = 1 + static_cast<int64_t>(Rng() % 4);
      Next = divideLoop(Cur, Pat, Factor, O, I, /*Perfect=*/Rng() % 2 == 0,
                        Fast);
      break;
    }
    case 1: {
      std::string V2 = randomLoopVar(Cur, Rng);
      if (V2.empty() || V2 == V)
        continue;
      Next = reorderLoops(Cur, V + " " + V2, Fast);
      break;
    }
    case 2:
      Next = unrollLoop(Cur, Pat, Fast);
      break;
    case 3:
      Next = cutLoop(Cur, Pat, static_cast<int64_t>(Rng() % 13), Fast);
      break;
    case 4:
      Next = fuseLoops(Cur, Pat, Fast);
      break;
    }
    if (Next) {
      Cur = Next.take();
      ++Applied;
    }
  }

  // The oracle: whatever was accepted, semantics are unchanged.
  Error Err = checkProcsEquivalent(Base, Cur, 3, GetParam() * 7 + 1);
  EXPECT_FALSE(Err) << "after " << Applied
                    << " accepted rewrites: " << Err.message() << "\n"
                    << printProc(Cur);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleChainTest,
                         testing::Range(0u, 24u));
