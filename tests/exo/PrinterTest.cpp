//===- PrinterTest.cpp - Exo-syntax pretty printing -----------------------===//

#include "exo/ir/Builder.h"
#include "exo/ir/Printer.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(PrinterTest, Expressions) {
  EXPECT_EQ(printExpr(var("i") * 4 + var("j")), "4 * i + j");
  EXPECT_EQ(printExpr(idx(0)), "0");
  EXPECT_EQ(printExpr(read("A", {var("k"), var("i")}, ScalarKind::F32)),
            "A[k, i]");
}

TEST(PrinterTest, NormalizesAffineForm) {
  // jtt + 4*jt prints in canonical variable order.
  EXPECT_EQ(printExpr(var("jtt") + idx(4) * var("jt")), "4 * jt + jtt");
  EXPECT_EQ(printExpr(var("jt") * 4 + var("jtt")), "4 * jt + jtt");
}

TEST(PrinterTest, ValueExpressionParens) {
  ExprPtr A = read("x", {}, ScalarKind::F32);
  ExprPtr B = read("y", {}, ScalarKind::F32);
  ExprPtr C = read("z", {}, ScalarKind::F32);
  EXPECT_EQ(printExpr(BinOpExpr::make(
                BinOpExpr::Op::Mul,
                BinOpExpr::make(BinOpExpr::Op::Add, A, B), C)),
            "(x + y) * z");
}

TEST(PrinterTest, ProcRendering) {
  ProcBuilder B("axpy");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), false);
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.reduce("y", {I}, B.readOf("x", {I}));
  B.endFor();
  Proc P = B.build();

  EXPECT_EQ(printProc(P),
            "def axpy(N: size, x: f32[N] @ DRAM, y: f32[N] @ DRAM):\n"
            "    for i in seq(0, N):\n"
            "        y[i] += x[i]\n");
}

TEST(PrinterTest, AllocAndScalarBuffer) {
  ProcBuilder B("p");
  B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {var("N")}, MemSpace::dram(), true);
  B.alloc("acc", ScalarKind::F32, {}, MemSpace::dram());
  B.assign("acc", {}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  Proc P = B.build();

  std::string S = printProc(P);
  EXPECT_NE(S.find("acc: f32 @ DRAM\n"), std::string::npos) << S;
  EXPECT_NE(S.find("acc = 0\n"), std::string::npos) << S;
}
