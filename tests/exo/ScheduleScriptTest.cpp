//===- ScheduleScriptTest.cpp - Textual schedule directives ---------------===//

#include "exo/front/ScheduleScript.h"

#include "exo/ir/Equal.h"
#include "exo/ir/Printer.h"
#include "ukr/UkrSchedule.h"
#include "ukr/UkrSpec.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;

namespace {

/// The paper's full §III user schedule (Figs. 6-11) as a script, for the
/// Neon 8x12 kernel.
const char *PaperSchedule = R"SCHED(
# v1: specialize the sizes (Fig. 6)
p = rename(p, "uk_8x12_f32_neon_lane")
p = partial_eval(p, MR=8, NR=12)
# v2: split to the vector length (Fig. 7)
p = divide_loop(p, "for i in _: _", 4, ["it", "itt"], perfect=True)
p = divide_loop(p, "for j in _: _", 4, ["jt", "jtt"], perfect=True)
# v3: C tile into registers (Fig. 8)
p = stage_mem(p, "C[_] += _", "C", "C_reg")
p = expand_dim(p, "C_reg", 4, "itt")
p = expand_dim(p, "C_reg", 2, "it")
p = expand_dim(p, "C_reg", 12, "4 * jt + jtt")
p = lift_alloc(p, "C_reg", n_lifts=5)
p = autofission(p, after("C_reg[_] = _"), n_lifts=5)
p = autofission(p, before("C[_] = _"), n_lifts=5)
p = replace(p, "for itt in _: _ #0", "neon_vld_4xf32")
p = replace(p, "for itt in _: _ #1", "neon_vst_4xf32")
p = set_memory(p, "C_reg", "Neon")
# v4: A and B operands (Fig. 9)
p = bind_expr(p, "Ac[_]", "A_reg")
p = expand_dim(p, "A_reg", 4, "itt")
p = expand_dim(p, "A_reg", 2, "it")
p = lift_alloc(p, "A_reg", n_lifts=5)
p = autofission(p, after("A_reg[_] = _"), n_lifts=4)
p = replace(p, "for itt in _: _ #0", "neon_vld_4xf32")
p = set_memory(p, "A_reg", "Neon")
p = bind_expr(p, "Bc[_]", "B_reg")
p = expand_dim(p, "B_reg", 4, "jtt")
p = expand_dim(p, "B_reg", 3, "jt")
p = lift_alloc(p, "B_reg", n_lifts=5)
p = autofission(p, after("B_reg[_] = _"), n_lifts=4)
p = replace(p, "for jtt in _: _ #1", "neon_vld_4xf32")
p = set_memory(p, "B_reg", "Neon")
# v5: reorder and the lane FMA (Fig. 10)
p = reorder_loops(p, "jtt it #1")
p = replace(p, "for itt in _: _ #0", "neon_vfmla_4xf32_4xf32")
# v6: unroll the register loads (Fig. 11)
p = unroll_loop(p, "for it in _: _ #1")
p = unroll_loop(p, "for jt in _: _ #1")
)SCHED";

} // namespace

TEST(ScheduleScriptTest, PaperScheduleReproducesTheGenerator) {
  auto Scripted = runScheduleScript(ukr::makeUkernelRef(), PaperSchedule);
  ASSERT_TRUE(static_cast<bool>(Scripted)) << Scripted.message();

  ukr::UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 12;
  Cfg.Isa = &neonIsa();
  Cfg.Style = ukr::FmaStyle::Lane;
  auto Generated = ukr::generateUkernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(Generated)) << Generated.message();

  // The textual schedule and the C++ generator produce identical kernels.
  EXPECT_EQ(printProc(Scripted->Final), printProc(Generated->Final));
  EXPECT_EQ(Scripted->Steps.size(), 32u); // 31 rewrites + the rename.
}

TEST(ScheduleScriptTest, CommentsAndBlanksIgnored) {
  auto R = runScheduleScript(exotest::makeMicroGemm(),
                             "\n# nothing\n\n  # indented comment\n");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_TRUE(R->Steps.empty());
  EXPECT_TRUE(bodyEqual(R->Final.body(), exotest::makeMicroGemm().body()));
}

TEST(ScheduleScriptTest, ErrorsCarryLineNumbers) {
  auto R = runScheduleScript(exotest::makeMicroGemm(),
                             "p = partial_eval(p, MR=8, NR=12)\n"
                             "p = divide_loop(p, \"for z in _: _\", 4, "
                             "[\"a\", \"b\"], perfect=True)\n");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("line 2"), std::string::npos) << R.message();
}

TEST(ScheduleScriptTest, MalformedDirectiveDiagnosed) {
  EXPECT_FALSE(static_cast<bool>(
      runScheduleScript(exotest::makeMicroGemm(), "q = rename(p, \"x\")\n")));
  EXPECT_FALSE(static_cast<bool>(
      runScheduleScript(exotest::makeMicroGemm(), "p = frobnicate(p)\n")));
  EXPECT_FALSE(static_cast<bool>(runScheduleScript(
      exotest::makeMicroGemm(), "p = rename(p, \"x\") trailing\n")));
}

TEST(ScheduleScriptTest, UnknownInstructionDiagnosed) {
  auto R = runScheduleScript(
      exotest::makeMicroGemm(),
      "p = partial_eval(p, MR=4, NR=4)\n"
      "p = replace(p, \"for i in _: _\", \"made_up_instr\")\n");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("made_up_instr"), std::string::npos);
}

TEST(ScheduleScriptTest, GapArgumentForms) {
  // before() on the first statement in the k loop: a no-op fission that
  // must still parse and apply.
  auto R = runScheduleScript(exotest::makeMicroGemm(),
                             "p = partial_eval(p, MR=4, NR=4)\n"
                             "p = autofission(p, before(\"C[_] += _\"), "
                             "n_lifts=1)\n");
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
}
