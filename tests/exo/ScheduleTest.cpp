//===- ScheduleTest.cpp - Scheduling primitives ---------------------------===//
//
// Every primitive runs with dynamic validation enabled (the default), so a
// passing rewrite here has also been executed against the interpreter on
// random inputs before and after.
//
//===----------------------------------------------------------------------===//

#include "exo/sched/Schedule.h"

#include "exo/ir/Printer.h"
#include "exo/pattern/Cursor.h"
#include "exo/sched/Validate.h"
#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;
using exotest::makeMicroGemm;

namespace {

/// Unwraps or fails the test with the diagnostic.
Proc expectOk(Expected<Proc> P, const char *What) {
  EXPECT_TRUE(static_cast<bool>(P)) << What << ": " << P.message();
  if (!P)
    return Proc();
  return P.take();
}

Proc evaled(int64_t MR = 8, int64_t NR = 12) {
  auto P = partialEval(makeMicroGemm(), {{"MR", MR}, {"NR", NR}});
  return expectOk(std::move(P), "partial_eval");
}

} // namespace

TEST(PartialEvalTest, SubstitutesAndDropsParams) {
  Proc P = evaled();
  EXPECT_EQ(P.params().size(), 5u); // KC, ldc, Ac, Bc, C
  EXPECT_EQ(P.findParam("MR"), nullptr);
  EXPECT_EQ(P.findParam("NR"), nullptr);
  std::string S = printProc(P);
  EXPECT_NE(S.find("for j in seq(0, 12)"), std::string::npos) << S;
  EXPECT_NE(S.find("for i in seq(0, 8)"), std::string::npos) << S;
  EXPECT_NE(S.find("Ac: f32[KC, 8]"), std::string::npos) << S;
}

TEST(PartialEvalTest, RejectsUnknownAndNonSize) {
  EXPECT_FALSE(static_cast<bool>(partialEval(makeMicroGemm(), {{"QQ", 3}})));
  EXPECT_FALSE(static_cast<bool>(partialEval(makeMicroGemm(), {{"Ac", 3}})));
  EXPECT_FALSE(static_cast<bool>(partialEval(makeMicroGemm(), {{"MR", 0}})));
}

TEST(DivideLoopTest, PerfectSplit) {
  Proc P =
      expectOk(divideLoop(evaled(), "for i in _: _", 4, "it", "itt", true),
               "divide i");
  std::string S = printProc(P);
  EXPECT_NE(S.find("for it in seq(0, 2)"), std::string::npos) << S;
  EXPECT_NE(S.find("for itt in seq(0, 4)"), std::string::npos) << S;
  EXPECT_NE(S.find("C[j, 4 * it + itt]"), std::string::npos) << S;
}

TEST(DivideLoopTest, PerfectRequiresDivisibility) {
  // NR = 10 is not divisible by 4.
  auto P = divideLoop(evaled(8, 10), "for j in _: _", 4, "jt", "jtt", true);
  EXPECT_FALSE(static_cast<bool>(P));
}

TEST(DivideLoopTest, TailLoopWhenImperfect) {
  Proc P = expectOk(
      divideLoop(evaled(8, 10), "for j in _: _", 4, "jt", "jtt", false),
      "divide j imperfect");
  std::string S = printProc(P);
  EXPECT_NE(S.find("for jt in seq(0, 2)"), std::string::npos) << S;
  // Tail covers the remaining 2 iterations at offset 8.
  EXPECT_NE(S.find("for jtt in seq(0, 2)"), std::string::npos) << S;
  EXPECT_NE(S.find("C[jtt + 8, i]"), std::string::npos) << S;
}

TEST(DivideLoopTest, SymbolicBoundRejected) {
  auto P = divideLoop(evaled(), "for k in _: _", 4, "ko", "ki", true);
  EXPECT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.message().find("constant"), std::string::npos);
}

TEST(DivideLoopTest, NameCollisionRejected) {
  auto P = divideLoop(evaled(), "for i in _: _", 4, "j", "itt", true);
  EXPECT_FALSE(static_cast<bool>(P));
}

TEST(ReorderLoopsTest, SwapsPerfectNest) {
  Proc P = expectOk(reorderLoops(evaled(), "j i"), "reorder");
  // Now i is outer: find i at depth 2 (under k), j under i.
  auto J = findStmt(P, "for j in _: _");
  ASSERT_TRUE(static_cast<bool>(J));
  EXPECT_EQ(J->Steps.size(), 3u);
  auto I = findStmt(P, "for i in _: _");
  ASSERT_TRUE(static_cast<bool>(I));
  EXPECT_EQ(I->Steps.size(), 2u);
}

TEST(ReorderLoopsTest, RequiresPerfectNesting) {
  // k's body is a single loop (j); j's body is a single loop (i); but
  // (i, k) are not adjacent.
  auto P = reorderLoops(evaled(), "i k");
  EXPECT_FALSE(static_cast<bool>(P));
}

TEST(UnrollLoopTest, UnrollsConstantLoop) {
  Proc P = expectOk(unrollLoop(evaled(4, 4), "for i in _: _"), "unroll i");
  std::string S = printProc(P);
  EXPECT_EQ(S.find("for i in"), std::string::npos) << S;
  EXPECT_NE(S.find("C[j, 3]"), std::string::npos) << S;
  EXPECT_NE(S.find("C[j, 0]"), std::string::npos) << S;
}

TEST(UnrollLoopTest, SymbolicRejected) {
  EXPECT_FALSE(static_cast<bool>(unrollLoop(evaled(), "for k in _: _")));
}

TEST(BindExprTest, IntroducesScalarStage) {
  Proc P = expectOk(bindExpr(evaled(), "Ac[_]", "A_tmp"), "bind Ac");
  std::string S = printProc(P);
  EXPECT_NE(S.find("A_tmp: f32 @ DRAM"), std::string::npos) << S;
  EXPECT_NE(S.find("A_tmp = Ac[k, i]"), std::string::npos) << S;
  EXPECT_NE(S.find("C[j, i] += A_tmp * Bc[k, j]"), std::string::npos) << S;
}

TEST(BindExprTest, NameCollisionRejected) {
  EXPECT_FALSE(static_cast<bool>(bindExpr(evaled(), "Ac[_]", "k")));
  EXPECT_FALSE(static_cast<bool>(bindExpr(evaled(), "Ac[_]", "Bc")));
}

TEST(StageMemTest, StagesLoadComputeStore) {
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  std::string S = printProc(P);
  EXPECT_NE(S.find("C_reg: f32 @ DRAM"), std::string::npos) << S;
  EXPECT_NE(S.find("C_reg = C[j, i]"), std::string::npos) << S;
  EXPECT_NE(S.find("C_reg += Ac[k, i] * Bc[k, j]"), std::string::npos) << S;
  EXPECT_NE(S.find("C[j, i] = C_reg"), std::string::npos) << S;
}

TEST(StageMemTest, UnknownBufferRejected) {
  EXPECT_FALSE(
      static_cast<bool>(stageMem(evaled(), "C[_] += _", "Q", "Q_reg")));
}

TEST(ExpandDimTest, GrowsAllocAndAccesses) {
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(expandDim(P, "C_reg", idx(8), var("i")), "expand i");
  P = expectOk(expandDim(P, "C_reg", idx(12), var("j")), "expand j");
  std::string S = printProc(P);
  EXPECT_NE(S.find("C_reg: f32[12, 8] @ DRAM"), std::string::npos) << S;
  EXPECT_NE(S.find("C_reg[j, i] += Ac[k, i] * Bc[k, j]"), std::string::npos)
      << S;
}

TEST(ExpandDimTest, OutOfRangeIndexRejected) {
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  // i ranges over [0, 8) but the new dimension has extent 4.
  auto Bad = expandDim(P, "C_reg", idx(4), var("i"));
  EXPECT_FALSE(static_cast<bool>(Bad));
}

TEST(ExpandDimTest, ParamRejected) {
  EXPECT_FALSE(
      static_cast<bool>(expandDim(evaled(), "C", idx(4), var("i"))));
}

TEST(LiftAllocTest, MovesAllocationUp) {
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(expandDim(P, "C_reg", idx(8), var("i")), "expand");
  P = expectOk(liftAlloc(P, "C_reg", 3), "lift");
  // The alloc is now the first statement of the proc body.
  ASSERT_FALSE(P.body().empty());
  EXPECT_TRUE(isaS<AllocStmt>(P.body()[0])) << printProc(P);
}

TEST(LiftAllocTest, StopsAtTop) {
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(expandDim(P, "C_reg", idx(8), var("i")), "expand");
  // More lifts than loops is fine; it stops at the proc body.
  P = expectOk(liftAlloc(P, "C_reg", 99), "lift");
  EXPECT_TRUE(isaS<AllocStmt>(P.body()[0]));
}

TEST(AutofissionTest, SplitsAndHoists) {
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(expandDim(P, "C_reg", idx(8), var("i")), "e1");
  P = expectOk(expandDim(P, "C_reg", idx(12), var("j")), "e2");
  P = expectOk(liftAlloc(P, "C_reg", 3), "lift");
  P = expectOk(autofission(P, "C_reg[_] = _", /*After=*/true, 3), "fission");
  P = expectOk(autofission(P, "C[_] = _", /*After=*/false, 3), "fission2");

  // The load nest no longer sits under k: body is
  // [alloc, load(j,i), for k: compute, store(j,i)].
  ASSERT_EQ(P.body().size(), 4u) << printProc(P);
  EXPECT_TRUE(isaS<AllocStmt>(P.body()[0]));
  const auto *Load = dyn_castS<ForStmt>(P.body()[1]);
  ASSERT_NE(Load, nullptr);
  EXPECT_EQ(Load->loopVar(), "j");
  const auto *KLoop = dyn_castS<ForStmt>(P.body()[2]);
  ASSERT_NE(KLoop, nullptr);
  EXPECT_EQ(KLoop->loopVar(), "k");
}

TEST(SetMemoryTest, RehomesAlloc) {
  const MemSpace *Reg = MemSpace::makeRegisterFile(
      "SchedTestReg", {{ScalarKind::F32, {"v8f_t", 8}}});
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(expandDim(P, "C_reg", idx(8), var("i")), "expand");
  P = expectOk(setMemory(P, "C_reg", Reg), "set_memory");
  auto B = P.findBuffer("C_reg");
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Mem, Reg);
}

TEST(SetMemoryTest, ParamAndUnknownRejected) {
  const MemSpace *Reg = MemSpace::makeRegisterFile(
      "SchedTestReg2", {{ScalarKind::F32, {"v8f_t", 8}}});
  EXPECT_FALSE(static_cast<bool>(setMemory(evaled(), "C", Reg)));
  EXPECT_FALSE(static_cast<bool>(setMemory(evaled(), "Q", Reg)));
}

TEST(SetPrecisionTest, RetypesBuffer) {
  Proc P = expectOk(stageMem(evaled(), "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(setPrecision(P, "C_reg", ScalarKind::F64), "set_precision");
  auto B = P.findBuffer("C_reg");
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Ty, ScalarKind::F64);
}

TEST(SetPrecisionTest, ParamRetyped) {
  // C is only written (the reduce rhs reads Ac/Bc, not C), so retyping it
  // succeeds: stores convert implicitly.
  Proc P = expectOk(setPrecision(evaled(), "C", ScalarKind::F16), "prec");
  EXPECT_EQ(P.findParam("C")->Ty, ScalarKind::F16);
}

TEST(SetPrecisionTest, MixedExpressionRejected) {
  // Retyping only Ac would make `Ac[k, i] * Bc[k, j]` mix f16 with f32;
  // the primitive must refuse rather than emit ill-typed code.
  auto P = setPrecision(evaled(), "Ac", ScalarKind::F16);
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.message().find("mixing"), std::string::npos) << P.message();
}

TEST(SimplifyTest, FoldsIndices) {
  Proc P = evaled();
  // divide + simplify leaves normalized indices.
  P = expectOk(divideLoop(P, "for i in _: _", 4, "it", "itt", true), "div");
  Proc S = simplifyProc(P);
  EXPECT_EQ(printProc(S), printProc(P))
      << "printer already normalizes; simplify must agree";
}

TEST(RenameTest, Renames) {
  Proc P = renameProc(makeMicroGemm(), "uk8x12");
  EXPECT_EQ(P.name(), "uk8x12");
}
