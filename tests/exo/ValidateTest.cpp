//===- ValidateTest.cpp - Dynamic equivalence validation ------------------===//

#include "exo/sched/Validate.h"

#include "exo/ir/Builder.h"
#include "exo/pattern/Cursor.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;
using exotest::makeMicroGemm;

TEST(ValidateTest, IdenticalProcsAgree) {
  Proc P = makeMicroGemm();
  Error Err = checkProcsEquivalent(P, P, 3, 42);
  EXPECT_FALSE(Err) << Err.message();
}

TEST(ValidateTest, DetectsSemanticChange) {
  Proc P = makeMicroGemm();
  // Corrupt the rewrite: swap the reduce into a plain assign.
  auto A = findStmt(P, "C[_] += _");
  ASSERT_TRUE(static_cast<bool>(A));
  const auto *S = castS<AssignStmt>(stmtAt(P, *A));
  Proc Bad = spliceAt(
      P, *A,
      {AssignStmt::make(S->buffer(), S->indices(), S->rhs(), false)});
  Error Err = checkProcsEquivalent(P, Bad, 3, 42);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("diverge"), std::string::npos)
      << Err.message();
}

TEST(ValidateTest, DetectsDroppedStatement) {
  Proc P = makeMicroGemm();
  auto A = findStmt(P, "C[_] += _");
  ASSERT_TRUE(static_cast<bool>(A));
  Proc Bad = spliceAt(P, *A, {});
  EXPECT_TRUE(checkProcsEquivalent(P, Bad, 3, 7));
}

TEST(ValidateTest, SignatureChangeDiagnosed) {
  Proc P = makeMicroGemm();
  Proc Q = P.withParams(std::vector<Param>(P.params().begin(),
                                           P.params().end() - 1));
  EXPECT_TRUE(checkProcsEquivalent(P, Q, 1, 1));
}

TEST(ValidateTest, ValidateRewriteRespectsOptOut) {
  Proc P = makeMicroGemm();
  auto A = findStmt(P, "C[_] += _");
  Proc Bad = spliceAt(P, *A, {});
  SchedOptions Opts;
  Opts.Validate = false;
  EXPECT_FALSE(validateRewrite(P, Bad, Opts, "test"));
  Opts.Validate = true;
  EXPECT_TRUE(validateRewrite(P, Bad, Opts, "test"));
}

TEST(ValidateTest, RespectsPreconditionsWhenSampling) {
  // A proc whose precondition constrains a size (KC % 4 == 0): sampling
  // must only use conforming sizes, so validation succeeds for a rewrite
  // that is only correct under the precondition.
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  B.precond(BinOpExpr::make(BinOpExpr::Op::Eq, N % 4, idx(0)));
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.reduce("y", {I}, ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();
  EXPECT_FALSE(checkProcsEquivalent(P, P, 2, 5));
}
