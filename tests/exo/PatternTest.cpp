//===- PatternTest.cpp - Schedule pattern language ------------------------===//

#include "exo/ir/Builder.h"
#include "exo/pattern/Cursor.h"

#include <gtest/gtest.h>

using namespace exo;

namespace {

/// for k: { for i: A[i] = x[i] }; for i: x[i] += A[i]
Proc sampleProc() {
  ProcBuilder B("sample");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr K = B.beginFor("k", idx(0), N);
  B.alloc("A", ScalarKind::F32, {N}, MemSpace::dram());
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("A", {I}, B.readOf("x", {I}));
  B.endFor();
  B.endFor();
  ExprPtr I2 = B.beginFor("i", idx(0), N);
  B.reduce("x", {I2}, B.readOf("A", {I2}));
  B.endFor();
  return B.build();
}

} // namespace

TEST(PatternParseTest, LoopPatterns) {
  auto P = parseStmtPattern("for itt in _: _");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->K, StmtPattern::Kind::For);
  EXPECT_EQ(P->LoopVar, "itt");
  EXPECT_EQ(P->Occurrence, 0);

  auto W = parseStmtPattern("for _ in _: _ #2");
  ASSERT_TRUE(static_cast<bool>(W));
  EXPECT_EQ(W->LoopVar, "");
  EXPECT_EQ(W->Occurrence, 2);

  EXPECT_FALSE(static_cast<bool>(parseStmtPattern("for in _: _")));
  EXPECT_FALSE(static_cast<bool>(parseStmtPattern("for i on _: _")));
}

TEST(PatternParseTest, OccurrenceOverflowIsAParseErrorNotAThrow) {
  // Pattern text is user input (schedule scripts, fuzz repro files): an
  // occurrence index past INT_MAX used to escape as std::out_of_range
  // from std::stoi and abort the parser. It must surface as an ordinary
  // parse error on both pattern grammars.
  auto S = parseStmtPattern("for i in _: _ #99999999999999999999");
  ASSERT_FALSE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("out of range"), std::string::npos)
      << S.message();
  EXPECT_FALSE(
      static_cast<bool>(parseStmtPattern("C[_] += _ #3000000000")));
  auto E = parseExprPattern("x[_] #18446744073709551616");
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("out of range"), std::string::npos)
      << E.message();

  // The boundary itself still parses.
  auto Max = parseStmtPattern("for i in _: _ #2147483647");
  ASSERT_TRUE(static_cast<bool>(Max));
  EXPECT_EQ(Max->Occurrence, 2147483647);
  EXPECT_FALSE(
      static_cast<bool>(parseStmtPattern("for i in _: _ #2147483648")));
}

TEST(PatternParseTest, AssignPatterns) {
  auto P = parseStmtPattern("C[_] += _");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->K, StmtPattern::Kind::Assign);
  EXPECT_EQ(P->Buf, "C");
  EXPECT_TRUE(P->IsReduce);

  auto Q = parseStmtPattern("C_reg[_] = _");
  ASSERT_TRUE(static_cast<bool>(Q));
  EXPECT_FALSE(Q->IsReduce);
  EXPECT_EQ(Q->Buf, "C_reg");

  auto Any = parseStmtPattern("_ = _");
  ASSERT_TRUE(static_cast<bool>(Any));
  EXPECT_EQ(Any->Buf, "");

  EXPECT_FALSE(static_cast<bool>(parseStmtPattern("C[_] = C[_]")));
}

TEST(PatternParseTest, AllocPattern) {
  auto P = parseStmtPattern("C_reg: _");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->K, StmtPattern::Kind::Alloc);
  EXPECT_EQ(P->AllocName, "C_reg");
}

TEST(PatternParseTest, ExprPattern) {
  auto P = parseExprPattern("Ac[_]");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Buf, "Ac");
  EXPECT_FALSE(static_cast<bool>(parseExprPattern("Ac")));
}

TEST(CursorTest, FindLoops) {
  Proc P = sampleProc();
  auto K = findStmt(P, "for k in _: _");
  ASSERT_TRUE(static_cast<bool>(K));
  EXPECT_TRUE(isaS<ForStmt>(stmtAt(P, *K)));

  // Two loops named i, in pre-order.
  auto I0 = findStmt(P, "for i in _: _ #0");
  auto I1 = findStmt(P, "for i in _: _ #1");
  ASSERT_TRUE(static_cast<bool>(I0));
  ASSERT_TRUE(static_cast<bool>(I1));
  EXPECT_NE(I0->Steps, I1->Steps);
  EXPECT_EQ(I0->Steps.size(), 2u) << "first i is nested under k";
  EXPECT_EQ(I1->Steps.size(), 1u);

  EXPECT_FALSE(static_cast<bool>(findStmt(P, "for i in _: _ #2")));
  EXPECT_FALSE(static_cast<bool>(findStmt(P, "for z in _: _")));
}

TEST(CursorTest, FindAssignsAndAllocs) {
  Proc P = sampleProc();
  auto A = findStmt(P, "A[_] = _");
  ASSERT_TRUE(static_cast<bool>(A));
  auto R = findStmt(P, "x[_] += _");
  ASSERT_TRUE(static_cast<bool>(R));
  auto Al = findStmt(P, "A: _");
  ASSERT_TRUE(static_cast<bool>(Al));
  EXPECT_TRUE(isaS<AllocStmt>(stmtAt(P, *Al)));
  // Reduce pattern does not match plain assign.
  EXPECT_FALSE(static_cast<bool>(findStmt(P, "A[_] += _")));
}

TEST(CursorTest, FindExprOccurrences) {
  Proc P = sampleProc();
  // x is *read* only in the first nest (`A[i] = x[i]`); the reduction's
  // left-hand side is a write, not a read expression.
  auto X0 = findExpr(P, "x[_]");
  ASSERT_TRUE(static_cast<bool>(X0));
  EXPECT_TRUE(isa<ReadExpr>(X0->E));
  EXPECT_EQ(X0->Path.Steps.size(), 3u) << "read is inside for k / for i";
  EXPECT_FALSE(static_cast<bool>(findExpr(P, "x[_] #1")));
  // A is read on the rhs of the second nest only.
  auto A0 = findExpr(P, "A[_]");
  ASSERT_TRUE(static_cast<bool>(A0));
  EXPECT_EQ(A0->Path.Steps.size(), 2u);
  EXPECT_FALSE(static_cast<bool>(findExpr(P, "A[_] #1")));
}

TEST(CursorTest, SpliceReplacesAndRemoves) {
  Proc P = sampleProc();
  auto A = findStmt(P, "A[_] = _");
  ASSERT_TRUE(static_cast<bool>(A));
  // Deleting the statement shrinks the inner loop body to zero.
  Proc Del = spliceAt(P, *A, {});
  auto I0 = findStmt(Del, "for i in _: _ #0");
  ASSERT_TRUE(static_cast<bool>(I0));
  EXPECT_TRUE(castS<ForStmt>(stmtAt(Del, *I0))->body().empty());
}

TEST(CursorTest, InsertBeforeAndAfter) {
  Proc P = sampleProc();
  auto A = findStmt(P, "A[_] = _");
  ASSERT_TRUE(static_cast<bool>(A));
  StmtPtr New = AllocStmt::make("tmp", ScalarKind::F32, {}, MemSpace::dram());
  Proc Ins = insertAt(P, *A, {New}, /*Before=*/true);
  auto Tmp = findStmt(Ins, "tmp: _");
  ASSERT_TRUE(static_cast<bool>(Tmp));
  EXPECT_EQ(Tmp->Steps, A->Steps) << "inserted before takes the old index";
}

TEST(CursorTest, EnclosingLoops) {
  Proc P = sampleProc();
  auto A = findStmt(P, "A[_] = _");
  ASSERT_TRUE(static_cast<bool>(A));
  auto Loops = enclosingLoops(P, *A);
  ASSERT_EQ(Loops.size(), 2u);
  EXPECT_EQ(Loops[0]->loopVar(), "k");
  EXPECT_EQ(Loops[1]->loopVar(), "i");
}
