//===- InterpTest.cpp - Reference interpreter -----------------------------===//

#include "exo/interp/Interp.h"

#include "exo/ir/Builder.h"
#include "exo/isa/IsaLib.h"

#include <gtest/gtest.h>

using namespace exo;

namespace {

/// y[i] += x[i] over N.
Proc axpyProc() {
  ProcBuilder B("axpy");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), false);
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.reduce("y", {I}, B.readOf("x", {I}));
  B.endFor();
  return B.build();
}

} // namespace

TEST(InterpTest, SimpleLoop) {
  Proc P = axpyProc();
  std::vector<double> X{1, 2, 3, 4}, Y{10, 20, 30, 40};
  Error Err = interpret(P, {{"N", 4}},
                        {{"x", {X.data(), {4}}}, {"y", {Y.data(), {4}}}});
  ASSERT_FALSE(Err) << Err.message();
  EXPECT_EQ(Y, (std::vector<double>{11, 22, 33, 44}));
}

TEST(InterpTest, MissingArgumentsAreDiagnosed) {
  Proc P = axpyProc();
  std::vector<double> X{1};
  EXPECT_TRUE(interpret(P, {{"N", 1}}, {{"x", {X.data(), {1}}}}));
  EXPECT_TRUE(interpret(P, {}, {}));
}

TEST(InterpTest, ShapeMismatch) {
  Proc P = axpyProc();
  std::vector<double> X{1, 2}, Y{1, 2};
  Error Err = interpret(P, {{"N", 4}},
                        {{"x", {X.data(), {2}}}, {"y", {Y.data(), {2}}}});
  EXPECT_TRUE(Err);
}

TEST(InterpTest, NonPositiveSizeRejected) {
  Proc P = axpyProc();
  std::vector<double> X{1}, Y{1};
  Error Err = interpret(P, {{"N", 0}},
                        {{"x", {X.data(), {0}}}, {"y", {Y.data(), {0}}}});
  EXPECT_TRUE(Err);
}

TEST(InterpTest, OutOfBoundsAccessCaught) {
  // y[i+1] over i in [0, N) walks off the end.
  ProcBuilder B("oob");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("y", {I + 1}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();
  std::vector<double> Y(3);
  Error Err = interpret(P, {{"N", 3}}, {{"y", {Y.data(), {3}}}});
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("out-of-bounds"), std::string::npos);
}

TEST(InterpTest, PreconditionChecked) {
  ProcBuilder B("pre");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  B.precond(BinOpExpr::make(BinOpExpr::Op::Ge, N, idx(4)));
  Proc P = B.build();
  std::vector<double> Y(8);
  EXPECT_FALSE(interpret(P, {{"N", 8}}, {{"y", {Y.data(), {8}}}}));
  std::vector<double> Y2(2);
  EXPECT_TRUE(interpret(P, {{"N", 2}}, {{"y", {Y2.data(), {2}}}}));
}

TEST(InterpTest, F32RoundingOnStore) {
  // Storing a value not representable in f32 rounds it.
  ProcBuilder B("round");
  B.tensorParam("y", ScalarKind::F32, {idx(1)}, MemSpace::dram(), true);
  B.assign("y", {idx(0)},
           ConstExpr::makeFloat(1.0 + 1e-12, ScalarKind::F64));
  Proc P = B.build();
  std::vector<double> Y{0};
  // The rhs mixes f64 const into an f32 store; interp rounds on store.
  ASSERT_FALSE(interpret(P, {}, {{"y", {Y.data(), {1}}}}));
  EXPECT_EQ(Y[0], 1.0);
}

TEST(InterpTest, LeadStrideTensor) {
  // C: f32[2, 3] with row stride 5.
  ProcBuilder B("strided");
  ExprPtr Ldc = B.sizeParam("ldc");
  B.tensorParam("C", ScalarKind::F32, {idx(2), idx(3)}, MemSpace::dram(),
                true, "ldc");
  ExprPtr J = B.beginFor("j", idx(0), idx(2));
  ExprPtr I = B.beginFor("i", idx(0), idx(3));
  B.assign("C", {J, I}, ConstExpr::makeFloat(7.0, ScalarKind::F32));
  B.endFor();
  B.endFor();
  Proc P = B.build();

  std::vector<double> C(10, -1.0);
  ASSERT_FALSE(interpret(P, {{"ldc", 5}}, {{"C", {C.data(), {2, 3}}}}));
  for (int J2 = 0; J2 < 2; ++J2)
    for (int I2 = 0; I2 < 5; ++I2)
      EXPECT_EQ(C[J2 * 5 + I2], I2 < 3 ? 7.0 : -1.0)
          << "row " << J2 << " col " << I2;
}

TEST(InterpTest, InstrCallRunsSemantics) {
  // Call the portable vector load/store pair to copy 4 elements.
  const IsaLib &Isa = portableIsa();
  InstrPtr Vld = Isa.load(ScalarKind::F32);
  InstrPtr Vst = Isa.store(ScalarKind::F32);
  const MemSpace *Reg = Isa.space(ScalarKind::F32);

  ProcBuilder B("copy4");
  B.tensorParam("src", ScalarKind::F32, {idx(4)}, MemSpace::dram(), false);
  B.tensorParam("dst", ScalarKind::F32, {idx(4)}, MemSpace::dram(), true);
  B.alloc("r", ScalarKind::F32, {idx(4)}, Reg);
  B.call(Vld, {CallArg::window("r", {WindowDim::interval(idx(0), idx(4))}),
               CallArg::window("src", {WindowDim::interval(idx(0), idx(4))})});
  B.call(Vst, {CallArg::window("dst", {WindowDim::interval(idx(0), idx(4))}),
               CallArg::window("r", {WindowDim::interval(idx(0), idx(4))})});
  Proc P = B.build();

  std::vector<double> Src{1, 2, 3, 4}, Dst(4, 0);
  ASSERT_FALSE(interpret(
      P, {}, {{"src", {Src.data(), {4}}}, {"dst", {Dst.data(), {4}}}}));
  EXPECT_EQ(Dst, Src);
}

TEST(InterpTest, WindowOutOfBoundsCaught) {
  const IsaLib &Isa = portableIsa();
  InstrPtr Vld = Isa.load(ScalarKind::F32);
  const MemSpace *Reg = Isa.space(ScalarKind::F32);

  ProcBuilder B("badwin");
  B.tensorParam("src", ScalarKind::F32, {idx(4)}, MemSpace::dram(), false);
  B.alloc("r", ScalarKind::F32, {idx(4)}, Reg);
  B.call(Vld, {CallArg::window("r", {WindowDim::interval(idx(0), idx(4))}),
               CallArg::window("src", {WindowDim::interval(idx(2), idx(4))})});
  Proc P = B.build();
  std::vector<double> Src{1, 2, 3, 4};
  Error Err = interpret(P, {}, {{"src", {Src.data(), {4}}}});
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("out of bounds"), std::string::npos);
}

TEST(InterpTest, LaneFmaSemantics) {
  const IsaLib &Isa = portableIsa();
  InstrPtr Fma = Isa.fmaLane(ScalarKind::F32);
  const MemSpace *Reg = Isa.space(ScalarKind::F32);

  // dst (DRAM-backed via load/store not needed: operate on register allocs
  // seeded by scalar assignments).
  ProcBuilder B("fma");
  B.tensorParam("out", ScalarKind::F32, {idx(4)}, MemSpace::dram(), true);
  B.alloc("d", ScalarKind::F32, {idx(4)}, Reg);
  B.alloc("a", ScalarKind::F32, {idx(4)}, Reg);
  B.alloc("b", ScalarKind::F32, {idx(4)}, Reg);
  ExprPtr I = B.beginFor("i", idx(0), idx(4));
  B.assign("d", {I}, ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.assign("a", {I}, ConstExpr::makeFloat(2.0, ScalarKind::F32));
  B.assign("b", {I}, ConstExpr::makeFloat(3.0, ScalarKind::F32));
  B.endFor();
  B.call(Fma, {CallArg::window("d", {WindowDim::interval(idx(0), idx(4))}),
               CallArg::window("a", {WindowDim::interval(idx(0), idx(4))}),
               CallArg::window("b", {WindowDim::interval(idx(0), idx(4))}),
               CallArg::scalar(idx(2))});
  ExprPtr I2 = B.beginFor("i", idx(0), idx(4));
  B.assign("out", {I2}, B.readOf("d", {I2}));
  B.endFor();
  Proc P = B.build();

  std::vector<double> Out(4, 0);
  ASSERT_FALSE(interpret(P, {}, {{"out", {Out.data(), {4}}}}));
  // d[i] = 1 + 2 * b[2] = 1 + 2*3 = 7.
  EXPECT_EQ(Out, (std::vector<double>{7, 7, 7, 7}));
}

TEST(InterpTest, CallArityMismatchDiagnosed) {
  const IsaLib &Isa = portableIsa();
  ProcBuilder B("badcall");
  B.tensorParam("src", ScalarKind::F32, {idx(4)}, MemSpace::dram(), false);
  B.alloc("r", ScalarKind::F32, {idx(4)}, Isa.space(ScalarKind::F32));
  // Only one argument for a two-parameter instruction.
  B.call(Isa.load(ScalarKind::F32),
         {CallArg::window("r", {WindowDim::interval(idx(0), idx(4))})});
  Proc P = B.build();
  std::vector<double> Src{1, 2, 3, 4};
  Error Err = interpret(P, {}, {{"src", {Src.data(), {4}}}});
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("args"), std::string::npos) << Err.message();
}

TEST(InterpTest, ScalarForWindowParamDiagnosed) {
  const IsaLib &Isa = portableIsa();
  ProcBuilder B("badarg");
  B.tensorParam("src", ScalarKind::F32, {idx(4)}, MemSpace::dram(), false);
  B.alloc("r", ScalarKind::F32, {idx(4)}, Isa.space(ScalarKind::F32));
  B.call(Isa.load(ScalarKind::F32),
         {CallArg::scalar(idx(0)),
          CallArg::window("src", {WindowDim::interval(idx(0), idx(4))})});
  Proc P = B.build();
  std::vector<double> Src{1, 2, 3, 4};
  Error Err = interpret(P, {}, {{"src", {Src.data(), {4}}}});
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("scalar"), std::string::npos);
}

TEST(InterpTest, ZeroTripLoopsExecuteNothing) {
  ProcBuilder B("zero");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), idx(0));
  B.assign("y", {I}, ConstExpr::makeFloat(9.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();
  std::vector<double> Y{1, 2};
  ASSERT_FALSE(interpret(P, {{"N", 2}}, {{"y", {Y.data(), {2}}}}));
  EXPECT_EQ(Y, (std::vector<double>{1, 2}));
}

TEST(InterpTest, NestedLoopShadowingRestoresOuterValue) {
  // for i in (0,2): { y[i] = 0; for i in (0,1): y[i] += 1; y[i] += 2 }
  // The outer i must be restored after the inner loop.
  ProcBuilder B("shadow");
  B.tensorParam("y", ScalarKind::F32, {idx(2)}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), idx(2));
  B.assign("y", {I}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  ExprPtr I2 = B.beginFor("i", idx(0), idx(1));
  B.reduce("y", {I2}, ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  B.reduce("y", {I}, ConstExpr::makeFloat(2.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();
  std::vector<double> Y{-1, -1};
  ASSERT_FALSE(interpret(P, {}, {{"y", {Y.data(), {2}}}}));
  // i=0: y0=0, inner y0+=1, outer y0+=2 -> 3. i=1: y1=0, inner y0+=1 (=4),
  // y1+=2 -> 2.
  EXPECT_EQ(Y, (std::vector<double>{4, 2}));
}
