//===- BoundsTest.cpp - Static bounds checking ----------------------------===//

#include "exo/check/Bounds.h"

#include "exo/ir/Builder.h"
#include "exo/isa/IsaLib.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(BoundsTest, MicroGemmSpecIsInBounds) {
  Error Err = checkBounds(exotest::makeMicroGemm());
  EXPECT_FALSE(Err) << Err.message();
}

TEST(BoundsTest, OffByOneWriteCaught) {
  // y[i + 1] over i in [0, N).
  ProcBuilder B("oob");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("y", {I + 1}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  B.endFor();
  Error Err = checkBounds(B.build());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("exceed"), std::string::npos)
      << Err.message();
}

TEST(BoundsTest, NegativeIndexCaught) {
  ProcBuilder B("neg");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("y", {I - 1}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  B.endFor();
  Error Err = checkBounds(B.build());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("negative"), std::string::npos);
}

TEST(BoundsTest, TiledAccessesProveInBounds) {
  // y[4*it + itt] with it in [0, N) and itt in [0, 4) against extent 4*N.
  ProcBuilder B("tiled");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {idx(4) * N}, MemSpace::dram(), true);
  ExprPtr It = B.beginFor("it", idx(0), N);
  ExprPtr Itt = B.beginFor("itt", idx(0), idx(4));
  B.assign("y", {idx(4) * It + Itt},
           ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  B.endFor();
  Error Err = checkBounds(B.build());
  EXPECT_FALSE(Err) << Err.message();
}

TEST(BoundsTest, TiledOverrunCaught) {
  // Same but the buffer is one element short: extent 4*N - 1.
  ProcBuilder B("tiled_bad");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {idx(4) * N - 1}, MemSpace::dram(),
                true);
  ExprPtr It = B.beginFor("it", idx(0), N);
  ExprPtr Itt = B.beginFor("itt", idx(0), idx(4));
  B.assign("y", {idx(4) * It + Itt},
           ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  B.endFor();
  EXPECT_TRUE(checkBounds(B.build()));
}

TEST(BoundsTest, InstructionSemanticsAreInBounds) {
  // Every built-in instruction's semantic proc passes the checker,
  // including the lane FMA whose `l` is bounded by its preconditions.
  for (const IsaLib *Isa : allIsas()) {
    for (ScalarKind Ty :
         {ScalarKind::F16, ScalarKind::F32, ScalarKind::F64}) {
      if (!Isa->supports(Ty))
        continue;
      for (InstrPtr I : {Isa->load(Ty), Isa->store(Ty), Isa->fmaLane(Ty),
                         Isa->fmaBroadcast(Ty), Isa->broadcast(Ty)}) {
        if (!I)
          continue;
        Error Err = checkBounds(I->semantics());
        EXPECT_FALSE(Err) << I->name() << ": " << Err.message();
      }
    }
  }
}

TEST(BoundsTest, UnboundedIndexParamCaught) {
  // An instruction-like proc whose index param has no precondition bounds:
  // rhs[l] cannot be proven in range.
  ProcBuilder B("unbounded");
  B.tensorParam("rhs", ScalarKind::F32, {idx(4)}, MemSpace::dram(), false);
  B.tensorParam("out", ScalarKind::F32, {idx(1)}, MemSpace::dram(), true);
  ExprPtr L = B.indexParam("l");
  B.assign("out", {idx(0)}, B.readOf("rhs", {L}));
  EXPECT_TRUE(checkBounds(B.build()));
}

TEST(BoundsTest, WindowRangesChecked) {
  const IsaLib &Isa = portableIsa();
  const MemSpace *Reg = Isa.space(ScalarKind::F32);
  // Window [2, 6) into a 4-element buffer.
  ProcBuilder B("badwin");
  B.tensorParam("src", ScalarKind::F32, {idx(4)}, MemSpace::dram(), false);
  B.alloc("r", ScalarKind::F32, {idx(4)}, Reg);
  B.call(Isa.load(ScalarKind::F32),
         {CallArg::window("r", {WindowDim::interval(idx(0), idx(4))}),
          CallArg::window("src", {WindowDim::interval(idx(2), idx(4))})});
  Error Err = checkBounds(B.build());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("exceed"), std::string::npos);
}

TEST(BoundsTest, LanePreconditionViolationCaught) {
  const IsaLib &Isa = portableIsa();
  const MemSpace *Reg = Isa.space(ScalarKind::F32);
  ProcBuilder B("badlane");
  B.alloc("d", ScalarKind::F32, {idx(4)}, Reg);
  B.alloc("a", ScalarKind::F32, {idx(4)}, Reg);
  B.alloc("b", ScalarKind::F32, {idx(4)}, Reg);
  // Lane 5 on a 4-lane FMA.
  B.call(Isa.fmaLane(ScalarKind::F32),
         {CallArg::window("d", {WindowDim::interval(idx(0), idx(4))}),
          CallArg::window("a", {WindowDim::interval(idx(0), idx(4))}),
          CallArg::window("b", {WindowDim::interval(idx(0), idx(4))}),
          CallArg::scalar(idx(5))});
  Error Err = checkBounds(B.build());
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("lane"), std::string::npos) << Err.message();
}
