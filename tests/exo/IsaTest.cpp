//===- IsaTest.cpp - Instruction libraries --------------------------------===//

#include "exo/isa/IsaLib.h"

#include "exo/ir/Printer.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(IsaTest, RegistryContainsAll) {
  auto All = allIsas();
  ASSERT_EQ(All.size(), 4u);
  EXPECT_NE(findIsa("neon"), nullptr);
  EXPECT_NE(findIsa("avx2"), nullptr);
  EXPECT_NE(findIsa("avx512"), nullptr);
  EXPECT_NE(findIsa("portable"), nullptr);
  EXPECT_EQ(findIsa("riscv"), nullptr);
}

TEST(IsaTest, PortableAlwaysExecutable) {
  EXPECT_TRUE(portableIsa().hostExecutable());
}

TEST(IsaTest, LaneCounts) {
  EXPECT_EQ(neonIsa().lanes(ScalarKind::F32), 4u);
  EXPECT_EQ(neonIsa().lanes(ScalarKind::F16), 8u);
  EXPECT_EQ(avx2Isa().lanes(ScalarKind::F32), 8u);
  EXPECT_EQ(avx512Isa().lanes(ScalarKind::F32), 16u);
  EXPECT_EQ(portableIsa().lanes(ScalarKind::F32), 4u);
  EXPECT_EQ(portableIsa().lanes(ScalarKind::F64), 2u);
}

TEST(IsaTest, NeonMatchesPaperFig3) {
  // The store and lane-FMA definitions must carry the paper's exact C
  // lowerings (Fig. 3) and the loop semantics shown there.
  const IsaLib &Neon = neonIsa();
  InstrPtr Vst = Neon.store(ScalarKind::F32);
  ASSERT_NE(Vst, nullptr);
  EXPECT_EQ(Vst->name(), "neon_vst_4xf32");
  EXPECT_EQ(Vst->cFormat(), "vst1q_f32(&{dst_data}, {src_data});");
  EXPECT_EQ(printProc(Vst->semantics()),
            "def neon_vst_4xf32(dst: f32[4] @ DRAM, src: f32[4] @ Neon):\n"
            "    for i in seq(0, 4):\n"
            "        dst[i] = src[i]\n");

  InstrPtr Fmla = Neon.fmaLane(ScalarKind::F32);
  ASSERT_NE(Fmla, nullptr);
  // Including the paper's lane-range asserts (Fig. 3 lines 19-20).
  EXPECT_EQ(printProc(Fmla->semantics()),
            "def neon_vfmla_4xf32_4xf32(dst: f32[4] @ Neon, "
            "lhs: f32[4] @ Neon, rhs: f32[4] @ Neon, l: index):\n"
            "    assert l >= 0\n"
            "    assert l < 4\n"
            "    for i in seq(0, 4):\n"
            "        dst[i] += lhs[i] * rhs[l]\n");
}

TEST(IsaTest, NeonF16UsesNeon8f) {
  const IsaLib &Neon = neonIsa();
  EXPECT_EQ(Neon.space(ScalarKind::F16)->name(), "Neon8f");
  EXPECT_EQ(Neon.space(ScalarKind::F16)->vecType(ScalarKind::F16).CType,
            "float16x8_t");
  ASSERT_NE(Neon.fmaLane(ScalarKind::F16), nullptr);
  EXPECT_EQ(Neon.fmaLane(ScalarKind::F16)->name(), "neon_vfmla_8xf16_8xf16");
}

TEST(IsaTest, AvxHasBroadcastNotLane) {
  EXPECT_EQ(avx2Isa().fmaLane(ScalarKind::F32), nullptr);
  ASSERT_NE(avx2Isa().fmaBroadcast(ScalarKind::F32), nullptr);
  EXPECT_EQ(avx512Isa().fmaLane(ScalarKind::F32), nullptr);
  ASSERT_NE(avx512Isa().fmaBroadcast(ScalarKind::F32), nullptr);
}

TEST(IsaTest, InstrSemanticsShapesAreConsistent) {
  // Every instruction's semantic proc must have matching window ranks and
  // constant extents equal to the lane count.
  for (const IsaLib *Isa : allIsas()) {
    for (ScalarKind Ty : {ScalarKind::F16, ScalarKind::F32, ScalarKind::F64}) {
      if (!Isa->supports(Ty))
        continue;
      for (InstrPtr I : {Isa->load(Ty), Isa->store(Ty), Isa->fmaLane(Ty),
                         Isa->fmaBroadcast(Ty), Isa->broadcast(Ty)}) {
        if (!I)
          continue;
        const Proc &Sem = I->semantics();
        ASSERT_EQ(Sem.body().size(), 1u) << I->name();
        EXPECT_TRUE(isaS<ForStmt>(Sem.body()[0])) << I->name();
        for (const Param &P : Sem.params()) {
          if (P.PKind != Param::Kind::Tensor)
            continue;
          EXPECT_EQ(P.Shape.size(), 1u) << I->name();
        }
      }
    }
  }
}
