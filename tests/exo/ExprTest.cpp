//===- ExprTest.cpp - Expression and statement IR -------------------------===//

#include "exo/ir/Builder.h"
#include "exo/ir/Equal.h"
#include "exo/ir/Rewrite.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(ExprTest, ConstVarRead) {
  ExprPtr C = idx(42);
  EXPECT_EQ(cast<ConstExpr>(C)->intValue(), 42);
  EXPECT_EQ(C->type(), ScalarKind::Index);

  ExprPtr V = var("i");
  EXPECT_EQ(cast<VarExpr>(V)->name(), "i");

  ExprPtr R = read("A", {V, C}, ScalarKind::F32);
  EXPECT_EQ(cast<ReadExpr>(R)->buffer(), "A");
  EXPECT_EQ(cast<ReadExpr>(R)->indices().size(), 2u);
  EXPECT_EQ(R->type(), ScalarKind::F32);
}

TEST(ExprTest, OperatorsBuildBinOps) {
  ExprPtr E = var("i") * 4 + var("j");
  const auto *Add = dyn_cast<BinOpExpr>(E);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinOpExpr::Op::Add);
  const auto *Mul = dyn_cast<BinOpExpr>(Add->lhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinOpExpr::Op::Mul);
}

TEST(ExprTest, CastHelpers) {
  ExprPtr V = var("x");
  EXPECT_TRUE(isa<VarExpr>(V));
  EXPECT_FALSE(isa<ConstExpr>(V));
  EXPECT_EQ(dyn_cast<ConstExpr>(V), nullptr);
  EXPECT_NE(dyn_cast<VarExpr>(V), nullptr);
}

TEST(EqualTest, StructuralEquality) {
  ExprPtr A = var("i") * 4 + idx(3);
  ExprPtr B = var("i") * 4 + idx(3);
  ExprPtr C = var("i") * 4 + idx(2);
  EXPECT_TRUE(exprEqual(A, B));
  EXPECT_FALSE(exprEqual(A, C));
  EXPECT_FALSE(exprEqual(A, var("i")));
}

TEST(EqualTest, EquivalenceModuloAffineForm) {
  ExprPtr A = var("jtt") + idx(4) * var("jt");
  ExprPtr B = var("jt") * 4 + var("jtt");
  EXPECT_FALSE(exprEqual(A, B));
  EXPECT_TRUE(exprEquiv(A, B));
  EXPECT_FALSE(exprEquiv(A, var("jt") * 4));
}

TEST(BuilderTest, BuildsLoopNest) {
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("x", {I}, ConstExpr::makeFloat(1.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();

  ASSERT_EQ(P.body().size(), 1u);
  const auto *F = dyn_castS<ForStmt>(P.body()[0]);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->loopVar(), "i");
  ASSERT_EQ(F->body().size(), 1u);
  EXPECT_TRUE(isaS<AssignStmt>(F->body()[0]));
}

TEST(BuilderTest, FindBuffer) {
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.alloc("t", ScalarKind::F64, {idx(4)}, MemSpace::dram());
  B.assign("t", {idx(0)}, ConstExpr::makeFloat(0.0, ScalarKind::F64));
  B.endFor();
  Proc P = B.build();

  auto X = P.findBuffer("x");
  ASSERT_TRUE(X.has_value());
  EXPECT_TRUE(X->IsParam);
  EXPECT_TRUE(X->Mutable);

  auto T = P.findBuffer("t");
  ASSERT_TRUE(T.has_value());
  EXPECT_FALSE(T->IsParam);
  EXPECT_EQ(T->Ty, ScalarKind::F64);

  EXPECT_FALSE(P.findBuffer("nope").has_value());
  EXPECT_FALSE(P.findBuffer("N").has_value()) << "sizes are not buffers";
}

TEST(RewriteTest, SubstVarsRespectsShadowing) {
  // for i in (0, N): x[i] = 0  — substituting i must not touch the bound i.
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("x", {I}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();

  auto Out = substVarsBody(P.body(), {{"i", idx(7)}});
  const auto *F = castS<ForStmt>(Out[0]);
  const auto *A = castS<AssignStmt>(F->body()[0]);
  // The inner use of i is bound by the loop, not substituted.
  EXPECT_TRUE(exprEqual(A->indices()[0], var("i")));
}

TEST(RewriteTest, RenameBuffer) {
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), false);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("x", {I}, B.readOf("y", {I}));
  B.endFor();
  Proc P = B.build();

  auto Out = renameBuffer(P.body(), "y", "z");
  const auto *F = castS<ForStmt>(Out[0]);
  const auto *A = castS<AssignStmt>(F->body()[0]);
  EXPECT_EQ(cast<ReadExpr>(A->rhs())->buffer(), "z");
  EXPECT_EQ(A->buffer(), "x");
}

TEST(RewriteTest, CollectBufferUses) {
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), false);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.reduce("x", {I}, B.readOf("y", {I}));
  B.endFor();
  Proc P = B.build();

  auto Uses = collectBufferUses(P.body());
  EXPECT_TRUE(Uses.at("x").Written);
  EXPECT_TRUE(Uses.at("x").Read) << "a reduction reads its destination";
  EXPECT_TRUE(Uses.at("y").Read);
  EXPECT_FALSE(Uses.at("y").Written);
}

TEST(RewriteTest, BodyMentionsVar) {
  ProcBuilder B("p");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("x", ScalarKind::F32, {N}, MemSpace::dram(), true);
  ExprPtr I = B.beginFor("i", idx(0), N);
  B.assign("x", {I}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  B.endFor();
  Proc P = B.build();
  EXPECT_TRUE(bodyMentionsVar(P.body(), "i"));
  EXPECT_TRUE(bodyMentionsVar(P.body(), "N"));
  EXPECT_FALSE(bodyMentionsVar(P.body(), "q"));
}
