//===- CodegenTest.cpp - C emission ---------------------------------------===//

#include "exo/codegen/CEmit.h"

#include "exo/ir/Builder.h"
#include "exo/sched/Schedule.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;
using exotest::makeMicroGemm;

TEST(CodegenTest, ScalarLoopNest) {
  Proc P = partialEval(makeMicroGemm(), {{"MR", 2}, {"NR", 3}}).take();
  CodegenOptions Opts;
  auto Src = emitCFunction(P, Opts);
  ASSERT_TRUE(static_cast<bool>(Src)) << Src.message();
  EXPECT_NE(Src->find("void ukernel_ref(int64_t KC, int64_t ldc, "
                      "const float *restrict Ac, const float *restrict Bc, "
                      "float *restrict C)"),
            std::string::npos)
      << *Src;
  // C is strided by ldc on dim 0, Ac densely by 2.
  EXPECT_NE(Src->find("C[(j) * ldc + i] += Ac[(k) * 2 + i] * "
                      "Bc[(k) * 3 + j];"),
            std::string::npos)
      << *Src;
}

TEST(CodegenTest, SignatureHelperAgrees) {
  Proc P = partialEval(makeMicroGemm(), {{"MR", 2}, {"NR", 3}}).take();
  auto Src = emitCFunction(P, CodegenOptions());
  ASSERT_TRUE(static_cast<bool>(Src));
  EXPECT_NE(Src->find(cSignature(P)), std::string::npos);
}

TEST(CodegenTest, ModuleHasPrologue) {
  Proc P = partialEval(makeMicroGemm(), {{"MR", 2}, {"NR", 3}}).take();
  CodegenOptions Opts;
  Opts.Isa = &portableIsa();
  auto Src = emitCModule(P, Opts);
  ASSERT_TRUE(static_cast<bool>(Src));
  EXPECT_NE(Src->find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(Src->find("typedef float exo_v4f"), std::string::npos);
}

TEST(CodegenTest, RegisterAllocLowering) {
  // A register alloc of shape [3, 4] in a 4-lane space lowers to a 1-D
  // array of vector registers.
  ProcBuilder B("regs");
  const MemSpace *Reg = portableIsa().space(ScalarKind::F32);
  B.tensorParam("x", ScalarKind::F32, {idx(4)}, MemSpace::dram(), true);
  B.alloc("r", ScalarKind::F32, {idx(3), idx(4)}, Reg);
  ExprPtr J = B.beginFor("j", idx(0), idx(3));
  ExprPtr I = B.beginFor("i", idx(0), idx(4));
  B.assign("r", {J, I}, B.readOf("x", {I}));
  B.endFor();
  B.endFor();
  Proc P = B.build();
  auto Src = emitCFunction(P, CodegenOptions());
  ASSERT_TRUE(static_cast<bool>(Src)) << Src.message();
  EXPECT_NE(Src->find("exo_v4f r[3];"), std::string::npos) << *Src;
  EXPECT_NE(Src->find("r[j][i] = x[i];"), std::string::npos) << *Src;
}

TEST(CodegenTest, RegisterLaneWidthMismatchRejected) {
  ProcBuilder B("bad");
  const MemSpace *Reg = portableIsa().space(ScalarKind::F32);
  B.alloc("r", ScalarKind::F32, {idx(3), idx(8)}, Reg);
  Proc P = B.build();
  auto Src = emitCFunction(P, CodegenOptions());
  ASSERT_FALSE(static_cast<bool>(Src));
  EXPECT_NE(Src.message().find("vector width"), std::string::npos);
}

TEST(CodegenTest, ScalarAllocAndVla) {
  ProcBuilder B("allocs");
  ExprPtr N = B.sizeParam("N");
  B.tensorParam("y", ScalarKind::F32, {N}, MemSpace::dram(), true);
  B.alloc("acc", ScalarKind::F32, {}, MemSpace::dram());
  B.alloc("tmp", ScalarKind::F32, {N, idx(2)}, MemSpace::dram());
  B.assign("acc", {}, ConstExpr::makeFloat(0.0, ScalarKind::F32));
  B.assign("tmp", {idx(0), idx(0)}, B.readOf("acc", {}));
  Proc P = B.build();
  auto Src = emitCFunction(P, CodegenOptions());
  ASSERT_TRUE(static_cast<bool>(Src)) << Src.message();
  EXPECT_NE(Src->find("float acc;"), std::string::npos) << *Src;
  EXPECT_NE(Src->find("float tmp[2 * N];"), std::string::npos) << *Src;
  EXPECT_NE(Src->find("acc = 0;"), std::string::npos) << *Src;
}

TEST(CodegenTest, PreconditionsEmittedAsComments) {
  Proc P = makeMicroGemm();
  auto Src = emitCFunction(P, CodegenOptions());
  ASSERT_TRUE(static_cast<bool>(Src));
  EXPECT_NE(Src->find("// requires: ldc >= MR"), std::string::npos) << *Src;
}

TEST(CodegenTest, StaticFunctionOption) {
  Proc P = partialEval(makeMicroGemm(), {{"MR", 2}, {"NR", 3}}).take();
  CodegenOptions Opts;
  Opts.StaticFn = true;
  auto Src = emitCFunction(P, Opts);
  ASSERT_TRUE(static_cast<bool>(Src));
  EXPECT_EQ(Src->rfind("static ", 0), 0u);
}
