//===- AffineTest.cpp - Linearization and folding -------------------------===//

#include "exo/ir/Affine.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(AffineTest, LinearizeBasics) {
  auto L = linearize(var("i") * 4 + var("j") + idx(3));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coeff("i"), 4);
  EXPECT_EQ(L->coeff("j"), 1);
  EXPECT_EQ(L->coeff("k"), 0);
  EXPECT_EQ(L->Const, 3);
}

TEST(AffineTest, LinearizeCancellation) {
  auto L = linearize(var("i") * 4 - var("i") * 4 + idx(1));
  ASSERT_TRUE(L.has_value());
  EXPECT_TRUE(L->isConstant());
  EXPECT_EQ(L->Const, 1);
}

TEST(AffineTest, LinearizeScaledSum) {
  // 3 * (i + 2*j) - j == 3i + 5j.
  auto L = linearize(idx(3) * (var("i") + idx(2) * var("j")) - var("j"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coeff("i"), 3);
  EXPECT_EQ(L->coeff("j"), 5);
}

TEST(AffineTest, NonLinearFails) {
  EXPECT_FALSE(linearize(var("i") * var("j")).has_value());
  EXPECT_FALSE(linearize(var("i") % var("j")).has_value());
  EXPECT_FALSE(
      linearize(read("A", {var("i")}, ScalarKind::F32)).has_value());
}

TEST(AffineTest, ExactDivision) {
  auto L = linearize((var("i") * 8 + idx(4)) / 4);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coeff("i"), 2);
  EXPECT_EQ(L->Const, 1);
  // Inexact division is rejected.
  EXPECT_FALSE(linearize((var("i") * 3) / 2).has_value());
}

TEST(AffineTest, NegationAndUSub) {
  auto L = linearize(USubExpr::make(var("i") + idx(2)));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coeff("i"), -1);
  EXPECT_EQ(L->Const, -2);
}

TEST(AffineTest, TryConstFold) {
  EXPECT_EQ(tryConstFold(idx(6) * 7 + 1).value(), 43);
  EXPECT_EQ(tryConstFold(idx(10) % 3).value(), 1);
  EXPECT_FALSE(tryConstFold(var("n") + 1).has_value());
}

TEST(AffineTest, RoundTripNormalization) {
  ExprPtr E = var("jtt") + idx(4) * var("jt");
  ExprPtr N = normalizeIndexExpr(E);
  auto L1 = linearize(E);
  auto L2 = linearize(N);
  ASSERT_TRUE(L1 && L2);
  EXPECT_TRUE(*L1 == *L2);
}

TEST(AffineTest, FromLinearConstOnly) {
  LinExpr L;
  L.Const = -5;
  auto C = tryConstFold(fromLinear(L));
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(*C, -5);
}

TEST(AffineTest, FoldInsideValueExpr) {
  // Ac[k, 4*it + itt] with constant it/itt folds the index.
  ExprPtr E = read("Ac", {var("k"), idx(4) * idx(1) + idx(2)},
                   ScalarKind::F32) *
              read("B", {idx(0)}, ScalarKind::F32);
  ExprPtr F = foldExpr(E);
  const auto *Mul = cast<BinOpExpr>(F);
  const auto *R = cast<ReadExpr>(Mul->lhs());
  auto C = tryConstFold(R->indices()[1]);
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(*C, 6);
}
