//===- ReplaceTest.cpp - Verified instruction substitution ----------------===//
//
// Exercises the unification in sched/Replace.cpp: windows and lane indices
// must be inferred exactly as in the paper's Figs. 8-10, and instructions
// that do not implement the replaced loop must be rejected (the §II-B
// "security definition").
//
//===----------------------------------------------------------------------===//

#include "exo/ir/Printer.h"
#include "exo/isa/IsaLib.h"
#include "exo/sched/Schedule.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

using namespace exo;
using exotest::makeMicroGemm;

namespace {

Proc expectOk(Expected<Proc> P, const char *What) {
  EXPECT_TRUE(static_cast<bool>(P)) << What << ": " << P.message();
  return P ? P.take() : Proc();
}

/// Stages C into a register-ready layout: after this the proc has a load
/// nest, compute nest and store nest over C_reg[12, 2, 4].
Proc stagedProc() {
  Proc P = expectOk(partialEval(makeMicroGemm(), {{"MR", 8}, {"NR", 12}}),
                    "eval");
  P = expectOk(divideLoop(P, "for i in _: _", 4, "it", "itt", true), "di");
  P = expectOk(divideLoop(P, "for j in _: _", 4, "jt", "jtt", true), "dj");
  P = expectOk(stageMem(P, "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(expandDim(P, "C_reg", idx(4), var("itt")), "e1");
  P = expectOk(expandDim(P, "C_reg", idx(2), var("it")), "e2");
  P = expectOk(expandDim(P, "C_reg", idx(12), var("jt") * 4 + var("jtt")),
               "e3");
  P = expectOk(liftAlloc(P, "C_reg", 5), "lift");
  P = expectOk(autofission(P, "C_reg[_] = _", true, 5), "f1");
  P = expectOk(autofission(P, "C[_] = _", false, 5), "f2");
  return P;
}

} // namespace

TEST(ReplaceTest, VectorLoadWindowInference) {
  const IsaLib &Isa = portableIsa();
  Proc P = stagedProc();
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #0", Isa.load(ScalarKind::F32)),
      "replace load");
  std::string S = printProc(P);
  EXPECT_NE(S.find("vec_ld_4xf32(C_reg[4 * jt + jtt, it, 0:4], "
                   "C[4 * jt + jtt, 4 * it:4 * it + 4])"),
            std::string::npos)
      << S;
}

TEST(ReplaceTest, VectorStoreWindowInference) {
  const IsaLib &Isa = portableIsa();
  Proc P = stagedProc();
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #0", Isa.load(ScalarKind::F32)),
      "load");
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #1", Isa.store(ScalarKind::F32)),
      "store");
  std::string S = printProc(P);
  EXPECT_NE(S.find("vec_st_4xf32(C[4 * jt + jtt, 4 * it:4 * it + 4], "
                   "C_reg[4 * jt + jtt, it, 0:4])"),
            std::string::npos)
      << S;
}

TEST(ReplaceTest, StoreInstrRejectedForLoadLoop) {
  // The C-load loop assigns into C_reg (a mutable alloc) from C; the store
  // instruction's semantics write the DRAM side instead. Unification must
  // reject it: the dst window of vec_st would have to be C_reg (written),
  // but the loop writes C_reg from C while vst writes dst from src — the
  // shapes coincide, so what distinguishes them is which operand is the
  // register file. The C operand is a parameter, and vst's src must live in
  // a register file; C_reg is DRAM at this point, so acceptance is only
  // possible after set_memory. Either way the call must not change
  // semantics; with validation enabled an incorrect match dies here.
  const IsaLib &Isa = portableIsa();
  Proc P = stagedProc();
  auto R = replaceWithInstr(P, "for itt in _: _ #0",
                            Isa.store(ScalarKind::F32));
  // vst(dst=C_reg? ...) — dst is DRAM-side in vst semantics; the unifier
  // binds dst:=C_reg, src:=C, but src must then be readable and dst
  // written; semantics match structurally (dst[i]=src[i]), so this is
  // accepted as a *store of C into C_reg*, which is semantically identical
  // code. It must therefore pass validation too.
  EXPECT_TRUE(static_cast<bool>(R)) << R.message();
}

TEST(ReplaceTest, FmaRejectedForCopyLoop) {
  // A lane-FMA does not implement a copy loop.
  const IsaLib &Isa = portableIsa();
  Proc P = stagedProc();
  auto R = replaceWithInstr(P, "for itt in _: _ #0",
                            Isa.fmaLane(ScalarKind::F32));
  ASSERT_FALSE(static_cast<bool>(R));
}

TEST(ReplaceTest, LoadRejectedForComputeLoop) {
  // Occurrence #1 of the itt loops is the compute reduction; a load (plain
  // assign) must not match it.
  const IsaLib &Isa = portableIsa();
  Proc P = stagedProc();
  auto R = replaceWithInstr(P, "for itt in _: _ #1",
                            Isa.load(ScalarKind::F32));
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("mismatch"), std::string::npos) << R.message();
}

TEST(ReplaceTest, LaneFmaInfersLaneIndex) {
  const IsaLib &Isa = portableIsa();
  Proc P = stagedProc();
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #0", Isa.load(ScalarKind::F32)),
      "cload");
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #1", Isa.store(ScalarKind::F32)),
      "cstore");
  // Stage A and B as registers.
  P = expectOk(bindExpr(P, "Ac[_]", "A_reg"), "bindA");
  P = expectOk(expandDim(P, "A_reg", idx(4), var("itt")), "ea1");
  P = expectOk(expandDim(P, "A_reg", idx(2), var("it")), "ea2");
  P = expectOk(liftAlloc(P, "A_reg", 5), "la");
  P = expectOk(autofission(P, "A_reg[_] = _", true, 4), "fa");
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #0", Isa.load(ScalarKind::F32)),
      "aload");
  P = expectOk(bindExpr(P, "Bc[_]", "B_reg"), "bindB");
  P = expectOk(expandDim(P, "B_reg", idx(4), var("jtt")), "eb1");
  P = expectOk(expandDim(P, "B_reg", idx(3), var("jt")), "eb2");
  P = expectOk(liftAlloc(P, "B_reg", 5), "lb");
  P = expectOk(autofission(P, "B_reg[_] = _", true, 4), "fb");
  P = expectOk(
      replaceWithInstr(P, "for jtt in _: _ #1", Isa.load(ScalarKind::F32)),
      "bload");
  P = expectOk(reorderLoops(P, "jtt it #1"), "reorder");
  P = expectOk(replaceWithInstr(P, "for itt in _: _ #0",
                                Isa.fmaLane(ScalarKind::F32)),
               "fmla");
  std::string S = printProc(P);
  EXPECT_NE(
      S.find("vec_fmla_4xf32_4xf32(C_reg[4 * jt + jtt, it, 0:4], "
             "A_reg[it, 0:4], B_reg[jt, 0:4], jtt)"),
      std::string::npos)
      << S;
}

TEST(ReplaceTest, BroadcastFmaBindsMemoryOperand) {
  // Broadcast-style: divide i only, stage C and A, then replace the compute
  // itt loop with dst += lhs * s[0] where s windows Bc in DRAM.
  const IsaLib &Isa = avx2Isa();
  Proc P = expectOk(partialEval(makeMicroGemm(), {{"MR", 8}, {"NR", 12}}),
                    "eval");
  P = expectOk(divideLoop(P, "for i in _: _", 8, "it", "itt", true), "di");
  P = expectOk(stageMem(P, "C[_] += _", "C", "C_reg"), "stage");
  P = expectOk(expandDim(P, "C_reg", idx(8), var("itt")), "e1");
  P = expectOk(expandDim(P, "C_reg", idx(1), var("it")), "e2");
  P = expectOk(expandDim(P, "C_reg", idx(12), var("j")), "e3");
  P = expectOk(liftAlloc(P, "C_reg", 4), "lift");
  P = expectOk(autofission(P, "C_reg[_] = _", true, 4), "f1");
  P = expectOk(autofission(P, "C[_] = _", false, 4), "f2");
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #0", Isa.load(ScalarKind::F32)),
      "cload");
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #1", Isa.store(ScalarKind::F32)),
      "cstore");
  P = expectOk(bindExpr(P, "Ac[_]", "A_reg"), "bindA");
  P = expectOk(expandDim(P, "A_reg", idx(8), var("itt")), "ea1");
  P = expectOk(expandDim(P, "A_reg", idx(1), var("it")), "ea2");
  P = expectOk(liftAlloc(P, "A_reg", 4), "la");
  P = expectOk(autofission(P, "A_reg[_] = _", true, 3), "fa");
  P = expectOk(
      replaceWithInstr(P, "for itt in _: _ #0", Isa.load(ScalarKind::F32)),
      "aload");
  P = expectOk(replaceWithInstr(P, "for itt in _: _ #0",
                                Isa.fmaBroadcast(ScalarKind::F32)),
               "fma");
  std::string S = printProc(P);
  EXPECT_NE(S.find("avx2_fmadd_bcst_8xf32(C_reg[j, it, 0:8], "
                   "A_reg[it, 0:8], Bc[k, j:j + 1])"),
            std::string::npos)
      << S;
}

TEST(ReplaceTest, WrongWidthRejected) {
  // An 8-lane load cannot replace a 4-iteration loop.
  const IsaLib &Isa = avx2Isa();
  Proc P = stagedProc();
  auto R = replaceWithInstr(P, "for itt in _: _ #0",
                            Isa.load(ScalarKind::F32));
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("bounds"), std::string::npos) << R.message();
}

TEST(ReplaceTest, NonLoopPatternRejected) {
  const IsaLib &Isa = portableIsa();
  Proc P = stagedProc();
  auto R = replaceWithInstr(P, "C_reg[_] = _", Isa.load(ScalarKind::F32));
  ASSERT_FALSE(static_cast<bool>(R));
}
