//===- FuzzInputsTest.cpp - Hostile-input robustness ----------------------===//
//
// The front ends (pattern parser, proc parser, schedule-script parser) take
// arbitrary user text; none of it may crash or corrupt state — every bad
// input must come back as a diagnostic. These tests drive them with
// mutated and random inputs.
//
//===----------------------------------------------------------------------===//

#include "exo/front/Parse.h"
#include "exo/front/ScheduleScript.h"
#include "exo/pattern/Pattern.h"

#include "TestProcs.h"

#include <gtest/gtest.h>

#include <random>

using namespace exo;

namespace {

/// Random printable strings seeded deterministically.
std::string randomText(std::mt19937 &Rng, size_t MaxLen) {
  static const char Alphabet[] =
      "abcxyz_0149 []()#:=+-*/%<>\"',.\t";
  std::uniform_int_distribution<size_t> Len(0, MaxLen);
  std::uniform_int_distribution<size_t> Pick(0, sizeof(Alphabet) - 2);
  std::string S;
  size_t N = Len(Rng);
  for (size_t I = 0; I != N; ++I)
    S += Alphabet[Pick(Rng)];
  return S;
}

} // namespace

TEST(FuzzInputsTest, PatternParserNeverCrashes) {
  std::mt19937 Rng(1234);
  for (int I = 0; I != 2000; ++I) {
    std::string S = randomText(Rng, 40);
    (void)parseStmtPattern(S); // Must return, success or diagnostic.
    (void)parseExprPattern(S);
  }
}

TEST(FuzzInputsTest, PatternParserMutations) {
  // Mutations of valid patterns: every single-character deletion and
  // substitution must be handled gracefully.
  const std::string Valid[] = {"for itt in _: _", "C[_] += _", "Ac: _",
                               "x[_] = _ #3"};
  for (const std::string &V : Valid) {
    for (size_t I = 0; I != V.size(); ++I) {
      std::string Del = V.substr(0, I) + V.substr(I + 1);
      (void)parseStmtPattern(Del);
      std::string Sub = V;
      Sub[I] = '?';
      (void)parseStmtPattern(Sub);
    }
  }
}

TEST(FuzzInputsTest, ProcParserNeverCrashes) {
  std::mt19937 Rng(99);
  for (int I = 0; I != 500; ++I) {
    std::string S = "def p(N: size, x: f32[N] @ DRAM):\n    " +
                    randomText(Rng, 60) + "\n";
    (void)parseProc(S, isaInstrResolver());
  }
  // Random full bodies too.
  for (int I = 0; I != 500; ++I)
    (void)parseProc(randomText(Rng, 120), isaInstrResolver());
}

TEST(FuzzInputsTest, ProcParserLineMutations) {
  const std::string Valid = "def p(N: size, x: f32[N] @ DRAM):\n"
                            "    for i in seq(0, N):\n"
                            "        x[i] += 1\n";
  for (size_t I = 0; I != Valid.size(); ++I) {
    std::string Del = Valid.substr(0, I) + Valid.substr(I + 1);
    (void)parseProc(Del);
  }
}

TEST(FuzzInputsTest, ScheduleScriptNeverCrashes) {
  std::mt19937 Rng(7);
  Proc Base = exotest::makeMicroGemm();
  for (int I = 0; I != 500; ++I) {
    std::string S = "p = " + randomText(Rng, 50) + "\n";
    (void)runScheduleScript(Base, S);
  }
  // Mutations of a valid directive.
  const std::string Valid =
      "p = divide_loop(p, \"for i in _: _\", 4, [\"a\", \"b\"], "
      "perfect=True)";
  for (size_t I = 0; I != Valid.size(); ++I) {
    std::string Del = Valid.substr(0, I) + Valid.substr(I + 1) + "\n";
    (void)runScheduleScript(Base, Del);
  }
}

TEST(FuzzInputsTest, ValidDirectivesAfterGarbageStillWork) {
  // A failed script leaves no residue: a fresh run on the same proc
  // succeeds.
  Proc Base = exotest::makeMicroGemm();
  (void)runScheduleScript(Base, "p = divide_loop(p, oops\n");
  auto Ok = runScheduleScript(Base, "p = partial_eval(p, MR=4, NR=4)\n");
  ASSERT_TRUE(static_cast<bool>(Ok)) << Ok.message();
  EXPECT_EQ(Ok->Final.params().size(), 5u);
}
