# Invoked by the asan_gate ctest (see tests/CMakeLists.txt): configures and
# builds a nested ASan+UBSan-instrumented tree (-DEXO_UKR_SANITIZE=address),
# then runs the memory-sensitive tests — the macro-kernel/pack paths
# (gemm_test), the generated-kernel numerics (ukr_test) and the fuzz smoke
# sweep, whose random ldc slack and edge shapes are exactly where an
# out-of-bounds store would land — failing on any ASan/UBSan report.
#
# Variables: SRC (source root), BIN (nested binary dir).

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SRC} -B ${BIN} -DEXO_UKR_SANITIZE=address
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "asan_gate: configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BIN} --target gemm_test ukr_test
          fuzz_test
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "asan_gate: build failed")
endif()

execute_process(COMMAND ${BIN}/tests/gemm_test RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "asan_gate: gemm_test failed under ASan/UBSan")
endif()

execute_process(COMMAND ${BIN}/tests/ukr_test RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "asan_gate: ukr_test failed under ASan/UBSan")
endif()

# A reduced sweep: the host process is instrumented (interpreter, rewrite
# engine, oracle harness); JIT-compiled kernels are built by the external
# compiler without ASan and run in-process, which ASan tolerates.
set(ENV{EXO_FUZZ_ITERS} 24)
execute_process(
  COMMAND ${BIN}/tests/fuzz_test --gtest_filter=FuzzSmokeTest.*
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "asan_gate: fuzz_test failed under ASan/UBSan")
endif()
