//===- AxpbyTest.cpp - General alpha/beta kernel (paper Fig. 4) -----------===//

#include "ukr/KernelRegistry.h"

#include "benchutil/Bench.h"
#include "exo/ir/Printer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace exo;
using namespace ukr;

namespace {

UkrConfig axpbyConfig(int64_t MR, int64_t NR, const IsaLib *Isa,
                      FmaStyle Style = FmaStyle::Auto) {
  UkrConfig Cfg;
  Cfg.MR = MR;
  Cfg.NR = NR;
  Cfg.Isa = Isa;
  Cfg.Style = Style;
  Cfg.GeneralAlphaBeta = true;
  return Cfg;
}

} // namespace

TEST(AxpbyTest, ScheduleVectorizesTheComputeCore) {
  auto R = generateUkernel(axpbyConfig(8, 12, &neonIsa(), FmaStyle::Lane));
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  std::string S = printProc(R->Final);
  // The scaling nests stay scalar...
  EXPECT_NE(S.find("Cb[cj, ci] = C[cj, ci] * beta[0]"), std::string::npos)
      << S;
  EXPECT_NE(S.find("Ba[bk, bj] = Bc[bk, bj] * alpha[0]"), std::string::npos);
  // ...while the compute core carries the full register pipeline, staged
  // against Cb and Ba.
  EXPECT_NE(S.find("C_reg: f32[12, 2, 4] @ Neon"), std::string::npos) << S;
  EXPECT_NE(S.find("neon_vfmla_4xf32_4xf32"), std::string::npos) << S;
  EXPECT_NE(S.find("neon_vld_4xf32(B_reg[0, 0:4], Ba[k, 0:4])"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("neon_vld_4xf32(C_reg[4 * jt + jtt, it, 0:4], "
                   "Cb[4 * jt + jtt, 4 * it:4 * it + 4])"),
            std::string::npos)
      << S;
}

TEST(AxpbyTest, KernelNameDistinguishesVariant) {
  UkrConfig Cfg = axpbyConfig(8, 12, &avx2Isa());
  EXPECT_EQ(Cfg.kernelName(), "uk_8x12_f32_avx2_bcst_axpby");
}

TEST(AxpbyTest, JitKernelComputesAxpby) {
  auto K = buildKernel(axpbyConfig(8, 12, &avx2Isa()));
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  ASSERT_NE(K->FnAxpby, nullptr);
  EXPECT_EQ(K->Fn, nullptr);

  const int64_t MR = 8, NR = 12, KC = 21, Ldc = 10;
  float Alpha = 0.5f, Beta = -2.0f;
  std::vector<float> Ac(KC * MR), Bc(KC * NR);
  std::vector<float> C((NR - 1) * Ldc + MR, 1.5f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 1);
  benchutil::fillRandom(Bc.data(), Bc.size(), 2);
  std::vector<float> Want = C;
  for (int64_t J = 0; J < NR; ++J)
    for (int64_t I = 0; I < MR; ++I) {
      float Acc = Beta * Want[J * Ldc + I];
      for (int64_t P = 0; P < KC; ++P)
        Acc += Ac[P * MR + I] * (Alpha * Bc[P * NR + J]);
      Want[J * Ldc + I] = Acc;
    }

  K->FnAxpby(KC, Ldc, &Alpha, Ac.data(), Bc.data(), &Beta, C.data());
  for (size_t I = 0; I != C.size(); ++I)
    EXPECT_NEAR(C[I], Want[I], 1e-3f) << I;
}

TEST(AxpbyTest, LaneStyleAlsoWorks) {
  auto K = buildKernel(axpbyConfig(8, 12, &portableIsa(), FmaStyle::Lane));
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  ASSERT_NE(K->FnAxpby, nullptr);

  const int64_t MR = 8, NR = 12, KC = 7, Ldc = 8;
  float Alpha = 1.0f, Beta = 0.0f;
  std::vector<float> Ac(KC * MR, 1.0f), Bc(KC * NR, 2.0f);
  std::vector<float> C(NR * MR, 99.0f);
  K->FnAxpby(KC, Ldc, &Alpha, Ac.data(), Bc.data(), &Beta, C.data());
  // beta = 0 wipes the old C; each element is sum_k 1*2 = 2*KC.
  for (float V : C)
    EXPECT_EQ(V, 2.0f * KC);
}

TEST(AxpbyTest, ScalarFallback) {
  UkrConfig Cfg = axpbyConfig(3, 5, nullptr, FmaStyle::Scalar);
  auto K = buildKernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  ASSERT_NE(K->FnAxpby, nullptr);
  const int64_t MR = 3, NR = 5, KC = 4, Ldc = 3;
  float Alpha = 2.0f, Beta = 1.0f;
  std::vector<float> Ac(KC * MR, 1.0f), Bc(KC * NR, 1.0f), C(NR * MR, 1.0f);
  K->FnAxpby(KC, Ldc, &Alpha, Ac.data(), Bc.data(), &Beta, C.data());
  for (float V : C)
    EXPECT_EQ(V, 1.0f + 2.0f * KC);
}
