//===- StepByStepTest.cpp - The paper's Figs. 6-11 progression ------------===//
//
// Golden tests over the schedule pipeline: each intermediate version of the
// 8x12 kernel must have the structure shown in the corresponding figure of
// the paper (with the Neon instruction library, the generated C carries the
// exact intrinsics of Fig. 3).
//
//===----------------------------------------------------------------------===//

#include "ukr/UkrSchedule.h"

#include "exo/ir/Printer.h"
#include "exo/support/Str.h"

#include <gtest/gtest.h>

using namespace exo;
using namespace ukr;

namespace {

const UkrResult &neon8x12() {
  static UkrResult R = [] {
    UkrConfig Cfg;
    Cfg.MR = 8;
    Cfg.NR = 12;
    Cfg.Isa = &neonIsa();
    Cfg.Style = FmaStyle::Lane;
    auto Res = generateUkernel(Cfg);
    if (!Res)
      fatal(Res.message());
    return Res.take();
  }();
  return R;
}

/// Finds a pipeline step's proc by its label.
const Proc &step(const UkrResult &R, const std::string &Label) {
  for (const UkrStep &S : R.Steps)
    if (S.Label == Label)
      return S.P;
  fatal("no step labeled " + Label);
}

} // namespace

TEST(StepByStepTest, V1PartialEvalMatchesFig6) {
  const Proc &P = step(neon8x12(), "partial_eval");
  EXPECT_EQ(printProc(P),
            "def uk_8x12_f32_neon_lane(KC: size, ldc: size, "
            "Ac: f32[KC, 8] @ DRAM, Bc: f32[KC, 12] @ DRAM, "
            "C: f32[12, 8] @ DRAM):\n"
            "    assert ldc >= 8\n"
            "    for k in seq(0, KC):\n"
            "        for j in seq(0, 12):\n"
            "            for i in seq(0, 8):\n"
            "                C[j, i] += Ac[k, i] * Bc[k, j]\n");
}

TEST(StepByStepTest, V2LoopSplitMatchesFig7) {
  const Proc &P = step(neon8x12(), "divide_loop j");
  std::string S = printProc(P);
  EXPECT_NE(S.find("for jt in seq(0, 3):"), std::string::npos) << S;
  EXPECT_NE(S.find("for jtt in seq(0, 4):"), std::string::npos) << S;
  EXPECT_NE(S.find("for it in seq(0, 2):"), std::string::npos) << S;
  EXPECT_NE(S.find("for itt in seq(0, 4):"), std::string::npos) << S;
  EXPECT_NE(S.find("C[4 * jt + jtt, 4 * it + itt] += "
                   "Ac[k, 4 * it + itt] * Bc[k, 4 * jt + jtt]"),
            std::string::npos)
      << S;
}

TEST(StepByStepTest, V3CRegisterShapeMatchesFig8) {
  const Proc &P = step(neon8x12(), "set_memory C_reg");
  std::string S = printProc(P);
  EXPECT_NE(S.find("C_reg: f32[12, 2, 4] @ Neon"), std::string::npos) << S;
  EXPECT_NE(S.find("neon_vld_4xf32(C_reg[4 * jt + jtt, it, 0:4], "
                   "C[4 * jt + jtt, 4 * it:4 * it + 4])"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("neon_vst_4xf32(C[4 * jt + jtt, 4 * it:4 * it + 4], "
                   "C_reg[4 * jt + jtt, it, 0:4])"),
            std::string::npos)
      << S;
}

TEST(StepByStepTest, V4OperandRegistersMatchFig9) {
  const Proc &P = step(neon8x12(), "set_memory B_reg");
  std::string S = printProc(P);
  EXPECT_NE(S.find("A_reg: f32[2, 4] @ Neon"), std::string::npos) << S;
  EXPECT_NE(S.find("B_reg: f32[3, 4] @ Neon"), std::string::npos) << S;
  EXPECT_NE(S.find("neon_vld_4xf32(A_reg[it, 0:4], "
                   "Ac[k, 4 * it:4 * it + 4])"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("neon_vld_4xf32(B_reg[jt, 0:4], "
                   "Bc[k, 4 * jt:4 * jt + 4])"),
            std::string::npos)
      << S;
}

TEST(StepByStepTest, V5FmlaMatchesFig10) {
  const Proc &P = step(neon8x12(), "replace fmla");
  std::string S = printProc(P);
  // After the jtt/it reorder, the computation is jt, it, jtt around the
  // lane FMA.
  EXPECT_NE(S.find("neon_vfmla_4xf32_4xf32(C_reg[4 * jt + jtt, it, 0:4], "
                   "A_reg[it, 0:4], B_reg[jt, 0:4], jtt)"),
            std::string::npos)
      << S;
}

TEST(StepByStepTest, V6UnrolledLoadsMatchFig11) {
  const Proc &P = neon8x12().Final;
  std::string S = printProc(P);
  EXPECT_NE(S.find("neon_vld_4xf32(A_reg[0, 0:4], Ac[k, 0:4])"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("neon_vld_4xf32(A_reg[1, 0:4], Ac[k, 4:8])"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("neon_vld_4xf32(B_reg[2, 0:4], Bc[k, 8:12])"),
            std::string::npos)
      << S;
}

TEST(StepByStepTest, GeneratedNeonCHasPaperIntrinsics) {
  const std::string &C = neon8x12().CSource;
  EXPECT_NE(C.find("#include <arm_neon.h>"), std::string::npos) << C;
  EXPECT_NE(C.find("float32x4_t C_reg[12][2];"), std::string::npos) << C;
  EXPECT_NE(C.find("A_reg[0] = vld1q_f32(&Ac[(k) * 8 + 0]);"),
            std::string::npos)
      << C;
  EXPECT_NE(
      C.find("C_reg[4 * jt + jtt][it] = vfmaq_laneq_f32(C_reg[4 * jt + "
             "jtt][it], A_reg[it], B_reg[jt], jtt);"),
      std::string::npos)
      << C;
  EXPECT_NE(C.find("vst1q_f32(&C[(4 * jt + jtt) * ldc + 4 * it], "
                   "C_reg[4 * jt + jtt][it]);"),
            std::string::npos)
      << C;
}

TEST(StepByStepTest, PipelineRecordsEveryStep) {
  const UkrResult &R = neon8x12();
  // partial_eval + 2 divides + 10 C steps + 7 A steps + 7 B steps +
  // reorder + fmla + 2 unrolls.
  EXPECT_EQ(R.Steps.size(), 31u);
  EXPECT_EQ(R.Steps.front().Label, "partial_eval");
  EXPECT_EQ(R.Steps.back().Label, "unroll B load");
  EXPECT_EQ(R.Style, FmaStyle::Lane);
}

TEST(StepByStepTest, KernelNamesAreStable) {
  UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 12;
  Cfg.Isa = &neonIsa();
  Cfg.Style = FmaStyle::Lane;
  EXPECT_EQ(Cfg.kernelName(), "uk_8x12_f32_neon_lane");
  Cfg.Isa = &avx2Isa();
  Cfg.Style = FmaStyle::Auto;
  EXPECT_EQ(Cfg.kernelName(), "uk_8x12_f32_avx2_bcst");
  Cfg.MR = 1;
  EXPECT_EQ(Cfg.kernelName(), "uk_1x12_f32_c_scalar");
}

TEST(StepByStepTest, LaneStyleRequiresDivisibleNR) {
  UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 10; // Not a multiple of 4.
  Cfg.Isa = &neonIsa();
  Cfg.Style = FmaStyle::Lane;
  auto R = generateUkernel(Cfg);
  EXPECT_FALSE(static_cast<bool>(R));
}

TEST(StepByStepTest, AutoFallsBackToScalarForTinyMR) {
  UkrConfig Cfg;
  Cfg.MR = 2;
  Cfg.NR = 12;
  Cfg.Isa = &neonIsa();
  EXPECT_EQ(Cfg.effectiveStyle(), FmaStyle::Scalar);
}
