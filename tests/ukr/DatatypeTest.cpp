//===- DatatypeTest.cpp - §III-D data-type support ------------------------===//

#include "ukr/UkrSchedule.h"
#include "ukr/UkrSpec.h"

#include "exo/interp/Interp.h"
#include "exo/ir/Printer.h"
#include "exo/jit/Jit.h"
#include "exo/sched/Schedule.h"

#include <gtest/gtest.h>

using namespace exo;
using namespace ukr;

TEST(DatatypeTest, F16NeonKernelGenerates) {
  // §III-D: the f16 kernel uses the Neon8f space and 8-lane loops. With 8
  // lanes, 8x16 is the natural f16 flagship.
  UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 16;
  Cfg.Ty = ScalarKind::F16;
  Cfg.Isa = &neonIsa();
  Cfg.Style = FmaStyle::Lane;
  auto R = generateUkernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  std::string S = printProc(R->Final);
  EXPECT_NE(S.find("C_reg: f16[16, 1, 8] @ Neon8f"), std::string::npos) << S;
  EXPECT_NE(S.find("neon_vfmla_8xf16_8xf16"), std::string::npos) << S;
  EXPECT_NE(R->CSource.find("float16x8_t"), std::string::npos);
  EXPECT_NE(R->CSource.find("vfmaq_laneq_f16"), std::string::npos);
}

TEST(DatatypeTest, F16KernelSemanticsViaInterpreter) {
  UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 16;
  Cfg.Ty = ScalarKind::F16;
  Cfg.Isa = &neonIsa();
  Cfg.Style = FmaStyle::Lane;
  auto R = generateUkernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();

  const int64_t KC = 5, Ldc = 8;
  std::vector<double> Ac(KC * 8), Bc(KC * 16), C(16 * 8, 1.0);
  for (size_t I = 0; I != Ac.size(); ++I)
    Ac[I] = static_cast<double>(I % 4) - 1;
  for (size_t I = 0; I != Bc.size(); ++I)
    Bc[I] = static_cast<double>(I % 3) - 1;
  std::vector<double> Want = C;
  for (int64_t J = 0; J < 16; ++J)
    for (int64_t I = 0; I < 8; ++I)
      for (int64_t K = 0; K < KC; ++K)
        Want[J * Ldc + I] += Ac[K * 8 + I] * Bc[K * 16 + J];

  Error Err = interpret(R->Final, {{"KC", KC}, {"ldc", Ldc}},
                        {{"Ac", {Ac.data(), {KC, 8}}},
                         {"Bc", {Bc.data(), {KC, 16}}},
                         {"C", {C.data(), {16, 8}}}});
  ASSERT_FALSE(Err) << Err.message();
  // Small integers are exact in f16.
  EXPECT_EQ(C, Want);
}

TEST(DatatypeTest, F64PortableKernelExecutes) {
  UkrConfig Cfg;
  Cfg.MR = 4;
  Cfg.NR = 4;
  Cfg.Ty = ScalarKind::F64;
  Cfg.Isa = &portableIsa();
  Cfg.Style = FmaStyle::Lane;
  auto R = generateUkernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_NE(R->CSource.find("exo_v2d"), std::string::npos) << R->CSource;
  EXPECT_NE(R->CSource.find("const double *restrict Ac"), std::string::npos);
}

TEST(DatatypeTest, SetPrecisionConvertsKernelBuffers) {
  // The §III-D path as described: take the f32 spec and set_precision the
  // staged register to f16.
  Proc P = partialEval(makeUkernelRef(), {{"MR", 8}, {"NR", 12}}).take();
  P = stageMem(P, "C[_] += _", "C", "C_reg").take();
  auto Q = setPrecision(P, "C_reg", ScalarKind::F16);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.message();
  auto B = Q->findBuffer("C_reg");
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Ty, ScalarKind::F16);
}

TEST(DatatypeTest, I32PortableKernelExecutes) {
  // Integer arithmetic — one of the gaps in existing libraries the paper's
  // introduction lists (limitation 5).
  UkrConfig Cfg;
  Cfg.MR = 4;
  Cfg.NR = 8;
  Cfg.Ty = ScalarKind::I32;
  Cfg.Isa = &portableIsa();
  Cfg.Style = FmaStyle::Lane;
  auto R = generateUkernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_NE(R->CSource.find("exo_v4i"), std::string::npos) << R->CSource;
  EXPECT_NE(R->CSource.find("const int32_t *restrict Ac"),
            std::string::npos);

  // JIT and verify with exact integer arithmetic.
  auto Jit = jitCompile(R->CSource, Cfg.kernelName(), "");
  ASSERT_TRUE(static_cast<bool>(Jit)) << Jit.message();
  using KernelI32 = void (*)(int64_t, int64_t, const int32_t *,
                             const int32_t *, int32_t *);
  auto Fn = (*Jit)->as<KernelI32>();
  const int64_t KC = 9, Ldc = 4;
  std::vector<int32_t> Ac(KC * 4), Bc(KC * 8), C(8 * 4, 3), Want(8 * 4, 3);
  for (size_t I = 0; I != Ac.size(); ++I)
    Ac[I] = static_cast<int32_t>(I % 7) - 3;
  for (size_t I = 0; I != Bc.size(); ++I)
    Bc[I] = static_cast<int32_t>(I % 5) - 2;
  for (int64_t J = 0; J < 8; ++J)
    for (int64_t I = 0; I < 4; ++I)
      for (int64_t K = 0; K < KC; ++K)
        Want[J * Ldc + I] += Ac[K * 4 + I] * Bc[K * 8 + J];
  Fn(KC, Ldc, Ac.data(), Bc.data(), C.data());
  EXPECT_EQ(C, Want);
}
