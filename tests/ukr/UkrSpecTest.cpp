//===- UkrSpecTest.cpp - Reference micro-kernel specs ---------------------===//

#include "ukr/UkrSpec.h"

#include "exo/interp/Interp.h"
#include "exo/ir/Printer.h"

#include <gtest/gtest.h>

using namespace exo;

TEST(UkrSpecTest, SimplifiedSpecMatchesPaperFig5) {
  Proc P = ukr::makeUkernelRef();
  EXPECT_EQ(printProc(P),
            "def ukernel_ref(MR: size, NR: size, KC: size, ldc: size, "
            "Ac: f32[KC, MR] @ DRAM, Bc: f32[KC, NR] @ DRAM, "
            "C: f32[NR, MR] @ DRAM):\n"
            "    assert ldc >= MR\n"
            "    for k in seq(0, KC):\n"
            "        for j in seq(0, NR):\n"
            "            for i in seq(0, MR):\n"
            "                C[j, i] += Ac[k, i] * Bc[k, j]\n");
}

TEST(UkrSpecTest, SimplifiedSpecComputesGemm) {
  Proc P = ukr::makeUkernelRef();
  const int64_t MR = 3, NR = 2, KC = 4, Ldc = 5;
  std::vector<double> Ac(KC * MR), Bc(KC * NR);
  std::vector<double> C((NR - 1) * Ldc + MR, 1.0);
  for (size_t I = 0; I != Ac.size(); ++I)
    Ac[I] = static_cast<double>(I % 5) - 2;
  for (size_t I = 0; I != Bc.size(); ++I)
    Bc[I] = static_cast<double>(I % 3) - 1;

  std::vector<double> Want = C;
  for (int64_t J = 0; J < NR; ++J)
    for (int64_t I = 0; I < MR; ++I)
      for (int64_t K = 0; K < KC; ++K)
        Want[J * Ldc + I] += Ac[K * MR + I] * Bc[K * NR + J];

  Error Err = interpret(P,
                        {{"MR", MR}, {"NR", NR}, {"KC", KC}, {"ldc", Ldc}},
                        {{"Ac", {Ac.data(), {KC, MR}}},
                         {"Bc", {Bc.data(), {KC, NR}}},
                         {"C", {C.data(), {NR, MR}}}});
  ASSERT_FALSE(Err) << Err.message();
  EXPECT_EQ(C, Want);
}

TEST(UkrSpecTest, FullSpecHandlesAlphaBeta) {
  Proc P = ukr::makeUkernelRefFull();
  const int64_t MR = 2, NR = 2, KC = 3, Ldc = 2;
  std::vector<double> Ac(KC * MR, 1.0), Bc(KC * NR, 2.0);
  std::vector<double> C(NR * MR, 10.0);
  std::vector<double> Alpha{0.5}, Beta{3.0};

  Error Err = interpret(P,
                        {{"MR", MR}, {"NR", NR}, {"KC", KC}, {"ldc", Ldc}},
                        {{"alpha", {Alpha.data(), {1}}},
                         {"Ac", {Ac.data(), {KC, MR}}},
                         {"Bc", {Bc.data(), {KC, NR}}},
                         {"beta", {Beta.data(), {1}}},
                         {"C", {C.data(), {NR, MR}}}});
  ASSERT_FALSE(Err) << Err.message();
  // C = beta*C + Ac * (alpha*Bc): 3*10 + sum_k 1*(0.5*2) = 30 + 3 = 33.
  for (double V : C)
    EXPECT_DOUBLE_EQ(V, 33.0);
}

TEST(UkrSpecTest, FullSpecUsesStagingBuffers) {
  Proc P = ukr::makeUkernelRefFull();
  std::string S = exo::printProc(P);
  EXPECT_NE(S.find("Cb: f32[NR, MR] @ DRAM"), std::string::npos) << S;
  EXPECT_NE(S.find("Ba: f32[KC, NR] @ DRAM"), std::string::npos) << S;
  EXPECT_NE(S.find("Cb[cj, ci] = C[cj, ci] * beta[0]"), std::string::npos);
  EXPECT_NE(S.find("Ba[bk, bj] = Bc[bk, bj] * alpha[0]"), std::string::npos);
}
