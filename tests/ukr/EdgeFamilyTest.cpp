//===- EdgeFamilyTest.cpp - The §III-B edge-case kernel family ------------===//

#include "ukr/KernelRegistry.h"

#include "benchutil/Bench.h"

#include <gtest/gtest.h>

using namespace exo;
using namespace ukr;

namespace {

/// The micro-kernel family the paper's ALG+EXO runs for ResNet50:
/// 8x12, 8x4, 4x4, 4x8, 4x12, 1x8, 1x12 (§IV-C).
const std::vector<std::pair<int64_t, int64_t>> &paperFamily() {
  static const std::vector<std::pair<int64_t, int64_t>> F = {
      {8, 12}, {8, 4}, {4, 4}, {4, 8}, {4, 12}, {1, 8}, {1, 12}};
  return F;
}

} // namespace

TEST(EdgeFamilyTest, WholePaperFamilyBuildsAndRuns) {
  for (auto [MR, NR] : paperFamily()) {
    UkrConfig Cfg;
    Cfg.MR = MR;
    Cfg.NR = NR;
    Cfg.Isa = bestIsaForMr(MR);
    if (!Cfg.Isa)
      Cfg.Style = FmaStyle::Scalar;
    auto K = KernelCache::global().get(Cfg);
    ASSERT_TRUE(static_cast<bool>(K))
        << MR << "x" << NR << ": " << K.message();
    ASSERT_NE((*K)->Fn, nullptr) << MR << "x" << NR;

    // Each kernel computes its shape correctly.
    const int64_t KC = 13, Ldc = MR + 1;
    std::vector<float> Ac(KC * MR), Bc(KC * NR);
    std::vector<float> C((NR - 1) * Ldc + MR, 1.0f), Want;
    benchutil::fillRandom(Ac.data(), Ac.size(), 31);
    benchutil::fillRandom(Bc.data(), Bc.size(), 32);
    Want = C;
    for (int64_t J = 0; J < NR; ++J)
      for (int64_t I = 0; I < MR; ++I)
        for (int64_t P = 0; P < KC; ++P)
          Want[J * Ldc + I] += Ac[P * MR + I] * Bc[P * NR + J];
    (*K)->Fn(KC, Ldc, Ac.data(), Bc.data(), C.data());
    for (size_t I = 0; I != C.size(); ++I)
      EXPECT_NEAR(C[I], Want[I], 1e-4f) << MR << "x" << NR << " @" << I;
  }
}

TEST(EdgeFamilyTest, SpecializationPicksNarrowerVectorsForSmallMR) {
  // MR=4 must not use an 8-lane ISA.
  UkrConfig Cfg;
  Cfg.MR = 4;
  Cfg.NR = 12;
  Cfg.Isa = bestIsaForMr(4);
  ASSERT_NE(Cfg.Isa, nullptr);
  EXPECT_EQ(Cfg.Isa->lanes(ScalarKind::F32), 4u);
  EXPECT_NE(Cfg.effectiveStyle(), FmaStyle::Scalar);
}

TEST(EdgeFamilyTest, ArbitraryShapesAlwaysHaveAKernel) {
  // The generator must never fail outright: any (mr, nr) gets at least a
  // scalar kernel (vectorized where the shape allows). Sampled grid to keep
  // JIT time bounded.
  for (int64_t MR : {1, 2, 3, 4, 5, 8, 16}) {
    for (int64_t NR : {1, 3, 7, 12, 16}) {
      UkrConfig Cfg;
      Cfg.MR = MR;
      Cfg.NR = NR;
      Cfg.Isa = bestIsaForMr(MR);
      if (!Cfg.Isa)
        Cfg.Style = FmaStyle::Scalar;
      auto K = KernelCache::global().get(Cfg);
      ASSERT_TRUE(static_cast<bool>(K))
          << MR << "x" << NR << ": " << K.message();
      EXPECT_NE((*K)->Fn, nullptr) << MR << "x" << NR;
    }
  }
}
