//===- KernelServiceTest.cpp - Async kernel-cache service -----------------===//

#include "ukr/KernelService.h"

#include "JitCacheTestEnv.h"
#include "benchutil/Bench.h"
#include "exo/jit/DiskCache.h"
#include "exo/jit/Jit.h"
#include "ukr/KernelRegistry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <unistd.h>

using namespace exo;
using namespace ukr;

namespace {

/// A private cache root for one test (on top of the binary-wide ephemeral
/// EXO_JIT_CACHE_DIR the shared environment installs).
std::string makeTempDir() { return exotest::makeTempDir("exo-kstest"); }

UkrConfig configFor(int64_t MR, int64_t NR) {
  UkrConfig Cfg;
  Cfg.MR = MR;
  Cfg.NR = NR;
  Cfg.Isa = bestIsaForMr(MR);
  if (!Cfg.Isa)
    Cfg.Style = FmaStyle::Scalar;
  return Cfg;
}

/// Runs \p Fn on random packed panels and checks it against the triple
/// loop (same harness as EdgeFamilyTest).
void checkNumerics(MicroKernelF32 Fn, int64_t MR, int64_t NR) {
  const int64_t KC = 13, Ldc = MR + 1;
  std::vector<float> Ac(KC * MR), Bc(KC * NR);
  std::vector<float> C((NR - 1) * Ldc + MR, 1.0f), Want;
  benchutil::fillRandom(Ac.data(), Ac.size(), 31);
  benchutil::fillRandom(Bc.data(), Bc.size(), 32);
  Want = C;
  for (int64_t J = 0; J < NR; ++J)
    for (int64_t I = 0; I < MR; ++I)
      for (int64_t P = 0; P < KC; ++P)
        Want[J * Ldc + I] += Ac[P * MR + I] * Bc[P * NR + J];
  Fn(KC, Ldc, Ac.data(), Bc.data(), C.data());
  for (size_t I = 0; I != C.size(); ++I)
    ASSERT_NEAR(C[I], Want[I], 1e-4f) << MR << "x" << NR << " @" << I;
}

} // namespace

TEST(FallbackUkrTest, CoversTheCandidateFamilyAndNoMore) {
  EXPECT_NE(fallbackUkr(8, 12), nullptr);
  EXPECT_NE(fallbackUkr(1, 1), nullptr);
  EXPECT_NE(fallbackUkr(24, 16), nullptr);
  EXPECT_EQ(fallbackUkr(25, 1), nullptr);
  EXPECT_EQ(fallbackUkr(1, 17), nullptr);
  EXPECT_EQ(fallbackUkr(0, 4), nullptr);
}

TEST(FallbackUkrTest, ReferenceNumerics) {
  for (auto [MR, NR] : {std::pair<int64_t, int64_t>{8, 12}, {3, 5}, {1, 12}})
    checkNumerics(fallbackUkr(MR, NR), MR, NR);
}

TEST(StandardShapeFamilyTest, TilePlusEdgesNoDuplicates) {
  std::vector<UkrConfig> Family = standardShapeFamily(8, 12);
  ASSERT_GE(Family.size(), 5u);
  std::set<std::string> Names;
  bool HasFullTile = false;
  for (const UkrConfig &Cfg : Family) {
    EXPECT_TRUE(Names.insert(Cfg.kernelName()).second) << Cfg.kernelName();
    EXPECT_GE(Cfg.MR, 1);
    EXPECT_LE(Cfg.MR, 8);
    EXPECT_GE(Cfg.NR, 1);
    EXPECT_LE(Cfg.NR, 12);
    HasFullTile |= Cfg.MR == 8 && Cfg.NR == 12;
    // Every family member must have a fallback stand-in for tryGet.
    EXPECT_NE(fallbackUkr(Cfg.MR, Cfg.NR), nullptr);
  }
  EXPECT_TRUE(HasFullTile);
}

TEST(KernelServiceTest, AsyncFirstTouchFallsBackThenSpecializes) {
  if (!jitAvailable())
    GTEST_SKIP();
  KernelService::Options Opts;
  Opts.Workers = 2;
  Opts.CacheDir = makeTempDir();
  KernelService S(Opts);

  UkrConfig Cfg = configFor(4, 6);
  // Cold service: the very first tryGet can never have a ready kernel, so
  // it must answer with the portable stand-in immediately (never the
  // compiler on this thread).
  const Kernel *F = S.tryGet(Cfg);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->IsFallback);
  ASSERT_NE(F->Fn, nullptr);
  EXPECT_EQ(F->Fn, fallbackUkr(4, 6));
  checkNumerics(F->Fn, 4, 6);

  // Blocking get resolves to the specialized kernel...
  auto K = S.get(Cfg);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_FALSE((*K)->IsFallback);
  ASSERT_NE((*K)->Fn, nullptr);
  EXPECT_NE((*K)->Fn, F->Fn);
  checkNumerics((*K)->Fn, 4, 6);

  // ...and from then on tryGet serves it too.
  const Kernel *R = S.tryGet(Cfg);
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->IsFallback);
  EXPECT_EQ(R->Fn, (*K)->Fn);

  CacheStats St = S.stats();
  EXPECT_GE(St.Fallbacks, 1u);
  EXPECT_GE(St.Hits, 1u);
  EXPECT_EQ(St.Builds, 1u);
  EXPECT_EQ(St.Failures, 0u);
  EXPECT_EQ(St.InFlight, 0u);
}

TEST(KernelServiceTest, EightThreadHammerBuildsOncePerConfig) {
  if (!jitAvailable())
    GTEST_SKIP();
  KernelService::Options Opts;
  Opts.Workers = 4;
  Opts.CacheDir = makeTempDir();
  KernelService S(Opts);

  const std::vector<UkrConfig> Family = standardShapeFamily(8, 12);
  constexpr int NumThreads = 8;
  // [thread][config] -> resolved function pointer, preallocated so worker
  // threads never touch shared containers (TSan-clean by construction).
  std::vector<std::vector<MicroKernelF32>> FromService(
      NumThreads, std::vector<MicroKernelF32>(Family.size(), nullptr));
  std::vector<std::vector<MicroKernelF32>> FromCache = FromService;
  std::vector<int> Errors(NumThreads, 0);

  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (size_t I = 0; I < Family.size(); ++I) {
        const UkrConfig &Cfg = Family[I];
        // Non-blocking path: either the stand-in or the real kernel,
        // never a null answer for the standard family.
        const Kernel *Quick = S.tryGet(Cfg);
        if (!Quick || !Quick->Fn) {
          ++Errors[T];
          continue;
        }
        // Blocking path: everyone must converge on one build.
        auto K = S.get(Cfg);
        if (!K || !(*K)->Fn) {
          ++Errors[T];
          continue;
        }
        FromService[T][I] = (*K)->Fn;
        // And the synchronous registry agrees under the same contention.
        auto C = KernelCache::global().get(Cfg);
        if (!C || !(*C)->Fn) {
          ++Errors[T];
          continue;
        }
        FromCache[T][I] = (*C)->Fn;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  for (int T = 0; T < NumThreads; ++T) {
    EXPECT_EQ(Errors[T], 0) << "thread " << T;
    for (size_t I = 0; I < Family.size(); ++I) {
      // One build per config: every thread got the same function pointer.
      EXPECT_EQ(FromService[T][I], FromService[0][I])
          << "thread " << T << " config " << Family[I].kernelName();
      EXPECT_EQ(FromCache[T][I], FromCache[0][I])
          << "thread " << T << " config " << Family[I].kernelName();
      EXPECT_NE(FromService[T][I], nullptr);
    }
  }

  CacheStats St = S.stats();
  EXPECT_EQ(St.Builds, Family.size());
  EXPECT_EQ(St.Failures, 0u);
  EXPECT_EQ(St.InFlight, 0u);
  EXPECT_EQ(S.size(), Family.size());
}

TEST(KernelServiceTest, SecondServiceOverWarmDirSkipsTheCompiler) {
  if (!jitAvailable())
    GTEST_SKIP();
  std::string Dir = makeTempDir();
  UkrConfig Cfg = configFor(6, 5);

  // First service over a cold directory: must invoke the compiler.
  jitClearMemoryCache();
  {
    KernelService::Options Opts;
    Opts.Workers = 2;
    Opts.CacheDir = Dir;
    KernelService S1(Opts);
    auto K1 = S1.get(Cfg);
    ASSERT_TRUE(static_cast<bool>(K1)) << K1.message();
    CacheStats St1 = S1.stats();
    EXPECT_EQ(St1.Compiles, 1u);
    EXPECT_EQ(St1.DiskHits, 0u);
  }

  // Fresh service, same directory, empty in-process map: the kernel must
  // come back from disk with zero compiler invocations.
  jitClearMemoryCache();
  KernelService::Options Opts;
  Opts.Workers = 2;
  Opts.CacheDir = Dir;
  KernelService S2(Opts);
  auto K2 = S2.get(Cfg);
  ASSERT_TRUE(static_cast<bool>(K2)) << K2.message();
  checkNumerics((*K2)->Fn, 6, 5);
  CacheStats St2 = S2.stats();
  EXPECT_EQ(St2.Compiles, 0u);
  EXPECT_EQ(St2.DiskHits, 1u);
  EXPECT_EQ(St2.Builds, 1u);
}

TEST(KernelServiceTest, CorruptedDiskEntryRecompilesCleanly) {
  if (!jitAvailable())
    GTEST_SKIP();
  std::string Dir = makeTempDir();
  UkrConfig Cfg = configFor(7, 3);

  jitClearMemoryCache();
  {
    KernelService::Options Opts;
    Opts.Workers = 1;
    Opts.CacheDir = Dir;
    KernelService S1(Opts);
    auto K1 = S1.get(Cfg);
    ASSERT_TRUE(static_cast<bool>(K1)) << K1.message();
  }

  // Replace every published artifact with garbage (a new inode, like a
  // torn write from another process — the kernel built above stays mapped
  // in this process, so truncating in place would be undefined).
  std::vector<JitDiskCache::Entry> Entries = JitDiskCache::global().list();
  ASSERT_FALSE(Entries.empty());
  for (const JitDiskCache::Entry &E : Entries) {
    std::string Tmp = E.SoPath + ".corrupt";
    std::ofstream(Tmp) << "not an object";
    ASSERT_EQ(::rename(Tmp.c_str(), E.SoPath.c_str()), 0) << E.SoPath;
  }

  // A fresh service must notice the corruption, recompile, and still hand
  // out a working kernel — no crash, no error.
  jitClearMemoryCache();
  KernelService::Options Opts;
  Opts.Workers = 1;
  Opts.CacheDir = Dir;
  KernelService S2(Opts);
  auto K2 = S2.get(Cfg);
  ASSERT_TRUE(static_cast<bool>(K2)) << K2.message();
  checkNumerics((*K2)->Fn, 7, 3);
  EXPECT_GE(S2.stats().Compiles, 1u);
}

TEST(KernelServiceTest, WarmResolvesTheWholeFamily) {
  if (!jitAvailable())
    GTEST_SKIP();
  KernelService::Options Opts;
  Opts.Workers = 4;
  Opts.CacheDir = makeTempDir();
  KernelService S(Opts);

  std::vector<UkrConfig> Family = standardShapeFamily(8, 12);
  exo::Error Err = S.warm(Family);
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.message();
  EXPECT_EQ(S.size(), Family.size());
  EXPECT_EQ(S.stats().InFlight, 0u);
  for (const UkrConfig &Cfg : Family) {
    const Kernel *K = S.tryGet(Cfg);
    ASSERT_NE(K, nullptr) << Cfg.kernelName();
    EXPECT_FALSE(K->IsFallback) << Cfg.kernelName();
  }
}
