//===- KernelNumericsTest.cpp - Generated kernels vs ground truth ---------===//
//
// Parameterized sweep: every generated kernel (shape x ISA x style) must
// compute exactly the same GEMM update as a naive loop, both through the
// interpreter (all ISAs, including Neon which cannot execute here) and
// through the JIT-compiled C (host ISAs).
//
//===----------------------------------------------------------------------===//

#include "ukr/KernelRegistry.h"

#include "benchutil/Bench.h"
#include "exo/interp/Interp.h"
#include "exo/support/Str.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

using namespace exo;
using namespace ukr;

namespace {

struct Shape {
  int64_t MR, NR;
  const char *IsaName; // nullptr => scalar
  FmaStyle Style;
};

std::string shapeName(const testing::TestParamInfo<Shape> &Info) {
  const Shape &S = Info.param;
  return strf("mr%lld_nr%lld_%s_%s", static_cast<long long>(S.MR),
              static_cast<long long>(S.NR),
              S.IsaName ? S.IsaName : "none", fmaStyleName(S.Style));
}

class KernelNumericsTest : public testing::TestWithParam<Shape> {};

/// Naive update C[j, i] += sum_k Ac[k, i] * Bc[k, j] in float.
void naive(int64_t MR, int64_t NR, int64_t KC, int64_t Ldc,
           const std::vector<float> &Ac, const std::vector<float> &Bc,
           std::vector<float> &C) {
  for (int64_t J = 0; J < NR; ++J)
    for (int64_t I = 0; I < MR; ++I)
      for (int64_t K = 0; K < KC; ++K)
        C[J * Ldc + I] += Ac[K * MR + I] * Bc[K * NR + J];
}

} // namespace

TEST_P(KernelNumericsTest, MatchesNaiveGemm) {
  const Shape &S = GetParam();
  UkrConfig Cfg;
  Cfg.MR = S.MR;
  Cfg.NR = S.NR;
  Cfg.Style = S.Style;
  if (S.IsaName)
    Cfg.Isa = findIsa(S.IsaName);

  auto K = buildKernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();

  const int64_t KC = 29, Ldc = S.MR + 5;
  std::vector<float> Ac(KC * S.MR), Bc(KC * S.NR);
  std::vector<float> C((S.NR - 1) * Ldc + S.MR, 0.5f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 11);
  benchutil::fillRandom(Bc.data(), Bc.size(), 22);
  std::vector<float> Want = C;
  naive(S.MR, S.NR, KC, Ldc, Ac, Bc, Want);

  // 1) Interpreter over the final scheduled proc (works for every ISA).
  {
    std::vector<double> AcD(Ac.begin(), Ac.end()),
        BcD(Bc.begin(), Bc.end());
    std::vector<double> CD(C.size());
    for (size_t I = 0; I != C.size(); ++I)
      CD[I] = C[I];
    Error Err = interpret(K->Final, {{"KC", KC}, {"ldc", Ldc}},
                          {{"Ac", {AcD.data(), {KC, S.MR}}},
                           {"Bc", {BcD.data(), {KC, S.NR}}},
                           {"C", {CD.data(), {S.NR, S.MR}}}});
    ASSERT_FALSE(Err) << Err.message();
    for (size_t I = 0; I != C.size(); ++I)
      EXPECT_NEAR(CD[I], Want[I], 2e-4) << "interp index " << I;
  }

  // 2) JIT execution when the ISA runs on this host.
  if (K->Fn) {
    std::vector<float> CJ = C;
    K->Fn(KC, Ldc, Ac.data(), Bc.data(), CJ.data());
    for (size_t I = 0; I != C.size(); ++I)
      EXPECT_NEAR(CJ[I], Want[I], 2e-4f) << "jit index " << I;
  } else {
    EXPECT_FALSE(Cfg.Isa->hostExecutable())
        << "host-executable kernel did not JIT";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelNumericsTest,
    testing::Values(
        // The paper's Neon flagship and edge family (interpreted).
        Shape{8, 12, "neon", FmaStyle::Lane},
        Shape{8, 8, "neon", FmaStyle::Lane},
        Shape{8, 4, "neon", FmaStyle::Lane},
        Shape{4, 12, "neon", FmaStyle::Lane},
        Shape{4, 8, "neon", FmaStyle::Lane},
        Shape{4, 4, "neon", FmaStyle::Lane},
        Shape{1, 8, nullptr, FmaStyle::Scalar},
        Shape{1, 12, nullptr, FmaStyle::Scalar},
        // Portable lane kernels (executed).
        Shape{8, 12, "portable", FmaStyle::Lane},
        Shape{4, 4, "portable", FmaStyle::Lane},
        Shape{12, 8, "portable", FmaStyle::Lane},
        Shape{8, 12, "portable", FmaStyle::Broadcast},
        // x86 broadcast kernels (executed).
        Shape{8, 12, "avx2", FmaStyle::Auto},
        Shape{16, 6, "avx2", FmaStyle::Auto},
        Shape{8, 1, "avx2", FmaStyle::Auto},
        Shape{24, 5, "avx2", FmaStyle::Auto},
        Shape{16, 12, "avx512", FmaStyle::Auto},
        Shape{32, 4, "avx512", FmaStyle::Auto},
        // Odd scalar shapes.
        Shape{3, 5, nullptr, FmaStyle::Scalar},
        Shape{2, 2, nullptr, FmaStyle::Scalar},
        Shape{5, 12, "avx2", FmaStyle::Auto} // MR=5 -> auto scalar fallback
        ),
    shapeName);

TEST(KernelCacheTest, CachesByName) {
  UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 4;
  Cfg.Isa = &portableIsa();
  auto K1 = KernelCache::global().get(Cfg);
  auto K2 = KernelCache::global().get(Cfg);
  ASSERT_TRUE(static_cast<bool>(K1)) << K1.message();
  ASSERT_TRUE(static_cast<bool>(K2));
  EXPECT_EQ(*K1, *K2);
}

TEST(KernelCacheTest, BestIsaSelection) {
  const IsaLib *I16 = bestIsaForMr(16);
  ASSERT_NE(I16, nullptr);
  const IsaLib *I8 = bestIsaForMr(8);
  ASSERT_NE(I8, nullptr);
  EXPECT_GE(I8->lanes(ScalarKind::F32), 8u);
  const IsaLib *I4 = bestIsaForMr(4);
  ASSERT_NE(I4, nullptr);
  EXPECT_EQ(I4->lanes(ScalarKind::F32), 4u);
  EXPECT_EQ(bestIsaForMr(3), nullptr);
  EXPECT_EQ(bestIsaForMr(1), nullptr);
}

TEST(KernelNumericsTest2, UnrollComputeVariantMatches) {
  UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 12;
  Cfg.Isa = &portableIsa();
  Cfg.Style = FmaStyle::Lane;
  Cfg.UnrollCompute = true;
  auto K = buildKernel(Cfg);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  ASSERT_NE(K->Fn, nullptr);

  const int64_t KC = 17, Ldc = 8;
  std::vector<float> Ac(KC * 8), Bc(KC * 12), C(12 * 8, 0.f), Want(12 * 8, 0.f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 5);
  benchutil::fillRandom(Bc.data(), Bc.size(), 6);
  naive(8, 12, KC, Ldc, Ac, Bc, Want);
  K->Fn(KC, Ldc, Ac.data(), Bc.data(), C.data());
  for (size_t I = 0; I != C.size(); ++I)
    EXPECT_NEAR(C[I], Want[I], 2e-4f);
}
