//===- GoldenStepsTest.cpp - In-tree goldens for the Fig. 6-11 pipeline ---===//
//
// The drift guard for the paper progression: every intermediate IR of the
// flagship 8x12 Neon lane schedule (Fig. 6-11) and the final generated C
// (Fig. 3) is committed under tests/ukr/golden/ and compared byte for byte.
// StepByStepTest checks structural landmarks; this test pins the complete
// text, so *any* printer/schedule/codegen drift — even whitespace — fails
// loudly and shows up as a reviewable golden-file diff.
//
// Regenerate after an intentional change with:
//
//   EXO_UPDATE_GOLDEN=1 ./ukr_test --gtest_filter='GoldenSteps*'
//
// and commit the rewritten files.
//
//===----------------------------------------------------------------------===//

#include "ukr/UkrSchedule.h"
#include "ukr/UkrSpec.h"

#include "exo/ir/Printer.h"
#include "exo/sched/Schedule.h"
#include "exo/support/Str.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace exo;
using namespace ukr;

namespace {

const UkrResult &neon8x12() {
  static UkrResult R = [] {
    UkrConfig Cfg;
    Cfg.MR = 8;
    Cfg.NR = 12;
    Cfg.Isa = &neonIsa();
    Cfg.Style = FmaStyle::Lane;
    auto Res = generateUkernel(Cfg);
    if (!Res)
      fatal(Res.message());
    return Res.take();
  }();
  return R;
}

const Proc &step(const std::string &Label) {
  for (const UkrStep &S : neon8x12().Steps)
    if (S.Label == Label)
      return S.P;
  fatal("no step labeled " + Label);
}

bool updateMode() {
  const char *V = std::getenv("EXO_UPDATE_GOLDEN");
  return V && *V && std::string(V) != "0";
}

/// Byte-compares \p Got against the committed golden file, or rewrites the
/// file when EXO_UPDATE_GOLDEN is set.
void checkGolden(const std::string &FileName, const std::string &Got) {
  const std::string Path = std::string(UKR_GOLDEN_DIR) + "/" + FileName;
  if (updateMode()) {
    std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(Out.is_open()) << Path;
    Out << Got;
    ASSERT_TRUE(Out.good()) << Path;
    std::printf("updated %s (%zu bytes)\n", Path.c_str(), Got.size());
    return;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.is_open())
      << Path << " missing - run with EXO_UPDATE_GOLDEN=1 to create it";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Got)
      << FileName << " drifted; if intentional, regenerate with "
      << "EXO_UPDATE_GOLDEN=1 and commit the diff";
}

} // namespace

TEST(GoldenStepsTest, Fig6PartialEval) {
  checkGolden("fig06_partial_eval.ir", printProc(step("partial_eval")));
}

TEST(GoldenStepsTest, Fig7LoopSplit) {
  checkGolden("fig07_divide_j.ir", printProc(step("divide_loop j")));
}

TEST(GoldenStepsTest, Fig8CRegisters) {
  checkGolden("fig08_c_reg.ir", printProc(step("set_memory C_reg")));
}

TEST(GoldenStepsTest, Fig9OperandRegisters) {
  checkGolden("fig09_operand_regs.ir", printProc(step("set_memory B_reg")));
}

TEST(GoldenStepsTest, Fig10LaneFma) {
  checkGolden("fig10_fmla.ir", printProc(step("replace fmla")));
}

TEST(GoldenStepsTest, Fig11FinalIr) {
  checkGolden("fig11_final.ir", printProc(neon8x12().Final));
}

TEST(GoldenStepsTest, Fig3GeneratedC) {
  checkGolden("fig03_kernel.c", neon8x12().CSource);
}

// §III-D: set_precision retypes the accumulator of the all-bf16 spec to
// f32 — the widened dot-product convention (UkrConfig::WidenAcc). The
// reduce's rhs reads only Ac/Bc, so the rewrite is type-consistent; the
// golden pins the retyped IR, and the equivalence check pins the stronger
// property that the rewrite lands exactly on the spec the generator
// builds natively with makeUkernelRef(BF16, F32).
TEST(GoldenStepsTest, SetPrecisionBf16) {
  Proc Spec = makeUkernelRef(ScalarKind::BF16);
  auto Eval = partialEval(Spec, {{"MR", 8}, {"NR", 12}});
  ASSERT_TRUE(bool(Eval)) << Eval.message();
  auto Widened = setPrecision(*Eval, "C", ScalarKind::F32);
  ASSERT_TRUE(bool(Widened)) << Widened.message();
  checkGolden("set_precision_bf16.ir", printProc(*Widened));

  auto Native =
      partialEval(makeUkernelRef(ScalarKind::BF16, ScalarKind::F32),
                  {{"MR", 8}, {"NR", 12}});
  ASSERT_TRUE(bool(Native)) << Native.message();
  EXPECT_EQ(printProc(*Widened), printProc(*Native))
      << "set_precision drifted from the natively typed spec";

  // Retyping one multiplicand alone must be refused: the reduce's rhs
  // would mix bf16 and f32 in a single expression, and the IR has no
  // implicit-cast node to paper over it.
  auto Mixed = setPrecision(*Native, "Ac", ScalarKind::F16);
  EXPECT_FALSE(bool(Mixed));
}
