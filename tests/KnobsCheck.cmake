# KnobsCheck.cmake - env-knob documentation gate (ctest docs_knobs_check)
#
# Two-way check between the code and docs/KNOBS.md:
#   1. every `getenv("EXO_*")` in the tree must be documented in KNOBS.md;
#   2. every EXO_* name KNOBS.md mentions must actually be read by code
#      (no documented-but-dead knobs).
# Non-EXO variables the code honors (HOME, TMPDIR, XDG_CACHE_HOME) are
# documented prose-only and not gated here. Run directly with:
#
#   cmake -DREPO=/path/to/repo -P tests/KnobsCheck.cmake

if(NOT REPO)
  message(FATAL_ERROR "pass -DREPO=<repo root>")
endif()

file(GLOB_RECURSE CODE_FILES
  "${REPO}/src/*.cpp" "${REPO}/src/*.h"
  "${REPO}/tools/*.cpp"
  "${REPO}/bench/*.cpp" "${REPO}/bench/*.h"
  "${REPO}/tests/*.cpp" "${REPO}/tests/*.h"
  "${REPO}/examples/*.cpp")

set(READ_VARS "")
foreach(F ${CODE_FILES})
  file(READ "${F}" TEXT)
  string(REGEX MATCHALL "getenv\\(\"EXO_[A-Z0-9_]+\"" MATCHES "${TEXT}")
  foreach(M ${MATCHES})
    string(REGEX REPLACE "^getenv\\(\"" "" VAR "${M}")
    string(REGEX REPLACE "\"$" "" VAR "${VAR}")
    list(APPEND READ_VARS "${VAR}")
  endforeach()
endforeach()
list(REMOVE_DUPLICATES READ_VARS)
list(SORT READ_VARS)

set(KNOBS_MD "${REPO}/docs/KNOBS.md")
if(NOT EXISTS "${KNOBS_MD}")
  message(FATAL_ERROR "docs/KNOBS.md is missing")
endif()
file(READ "${KNOBS_MD}" KNOBS)
string(REGEX MATCHALL "EXO_[A-Z0-9_]+" DOC_VARS "${KNOBS}")
list(REMOVE_DUPLICATES DOC_VARS)
list(SORT DOC_VARS)

set(FAILED FALSE)
foreach(V ${READ_VARS})
  list(FIND DOC_VARS "${V}" IDX)
  if(IDX EQUAL -1)
    message(SEND_ERROR
            "knob ${V} is read by code but not documented in docs/KNOBS.md")
    set(FAILED TRUE)
  endif()
endforeach()
foreach(V ${DOC_VARS})
  list(FIND READ_VARS "${V}" IDX)
  if(IDX EQUAL -1)
    message(SEND_ERROR
            "docs/KNOBS.md mentions ${V} but no code reads it via getenv — "
            "remove it or implement it")
    set(FAILED TRUE)
  endif()
endforeach()

if(FAILED)
  message(FATAL_ERROR "knobs-check: FAILED")
endif()
list(LENGTH READ_VARS NVARS)
message(STATUS "knobs-check: PASS (${NVARS} EXO_* knobs consistent)")
