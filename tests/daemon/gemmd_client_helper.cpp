//===- gemmd_client_helper.cpp - out-of-process gemmd test client ---------===//
//
// A real separate client process for daemon_test's fault-isolation cases
// (fork+exec keeps the gtest/TSan runtime out of the child). Loops
// remote sgemm calls and verifies each result bitwise against a local
// Engine::sgemm with the same configuration:
//
//   gemmd_client_helper --socket PATH --iters N [--seed S] [--sleep-ms N]
//
// Exit codes: 0 all iterations verified, 2 a result mismatched, 3 a
// remote call failed. The SIGKILL cases kill this process mid-loop; the
// survivors' exit 0 is the fault-isolation proof.
//
//===----------------------------------------------------------------------===//

#include "gemm/Engine.h"
#include "ipc/Client.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

int main(int Argc, char **Argv) {
  std::string Socket;
  int Iters = 8;
  unsigned Seed = 1;
  int SleepMs = 0;
  for (int I = 1; I < Argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc)
        std::exit(3);
      return Argv[++I];
    };
    if (const char *V = Value("--socket"))
      Socket = V;
    else if (const char *V = Value("--iters"))
      Iters = std::atoi(V);
    else if (const char *V = Value("--seed"))
      Seed = static_cast<unsigned>(std::atoi(V));
    else if (const char *V = Value("--sleep-ms"))
      SleepMs = std::atoi(V);
    else
      std::exit(3);
  }

  const int64_t M = 64, N = 48, K = 32;
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<float> Dist(-1.0f, 1.0f);
  std::vector<float> A(M * K), B(K * N), CRemote(M * N), CLocal(M * N);

  gemm::Client::Options CO;
  CO.SocketPath = Socket;
  CO.TimeoutMs = 30000;
  gemm::Client Remote(CO);
  gemm::Engine Local;

  for (int It = 0; It != Iters; ++It) {
    for (float &X : A)
      X = Dist(Rng);
    for (float &X : B)
      X = Dist(Rng);
    for (int64_t I = 0; I != M * N; ++I)
      CRemote[I] = CLocal[I] = Dist(Rng);
    const float Beta = It % 2 ? 0.5f : 0.0f;
    if (exo::Error E = Remote.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K,
                                    Beta, CRemote.data(), M)) {
      std::fprintf(stderr, "helper: remote: %s\n", E.message().c_str());
      return 3;
    }
    if (exo::Error E = Local.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K,
                                   Beta, CLocal.data(), M)) {
      std::fprintf(stderr, "helper: local: %s\n", E.message().c_str());
      return 3;
    }
    if (std::memcmp(CRemote.data(), CLocal.data(),
                    CRemote.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "helper: iteration %d mismatched\n", It);
      return 2;
    }
    if (SleepMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
  }
  std::printf("helper: %d iteration(s) verified\n", Iters);
  return 0;
}
