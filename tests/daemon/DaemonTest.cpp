//===- DaemonTest.cpp - gemmd server/client integration tests -------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The gemmd contracts, tested end to end with a real in-process server:
//
//   - remote sgemm results are bitwise identical to a local Engine::sgemm
//     (including degenerate and error paths),
//   - a cold client's first call on a daemon-warmed shape is a pure cache
//     hit (no plan build, no JIT compile),
//   - fault isolation: a SIGKILLed client process, a malformed packet
//     header, or an oversized header costs exactly that client its
//     session while every other stream keeps serving,
//   - admission control answers Busy instead of queueing unboundedly,
//   - handshake rejections (bad version, --max-clients) are clean.
//
// Out-of-process clients are fork+exec'd real binaries
// (gemmd_client_helper), so SIGKILL kills a genuine separate process.
//
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"
#include "exo/jit/Jit.h"
#include "gemm/Engine.h"
#include "gemm/Planner.h"
#include "gemm/PriorDb.h"
#include "ipc/Client.h"
#include "ipc/Ring.h"
#include "ipc/Shm.h"
#include "ipc/Socket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <dirent.h>
#include <random>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace exo;

namespace {

std::string uniqueSocketPath() {
  static std::atomic<int> Counter{0};
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "/tmp/exo-gemmd-test-%ld-%d.sock",
                static_cast<long>(::getpid()),
                Counter.fetch_add(1, std::memory_order_relaxed));
  return Buf;
}

/// A server on a fresh unique socket, torn down with the test.
struct ServerFixture {
  gemmd::ServerOptions Opts;
  std::unique_ptr<gemmd::Server> Srv;

  explicit ServerFixture(gemmd::ServerOptions O = {}) {
    O.SocketPath = uniqueSocketPath();
    Opts = O;
    Srv = std::make_unique<gemmd::Server>(O);
    Error E = Srv->start();
    EXPECT_FALSE(E) << (E ? E.message() : "");
  }
  ~ServerFixture() { Srv->stop(); }

  gemm::Client::Options clientOpts(uint64_t ShmBytes = 8ull << 20) const {
    gemm::Client::Options CO;
    CO.SocketPath = Opts.SocketPath;
    CO.ShmBytes = ShmBytes;
    CO.TimeoutMs = 60000; // CI machines are slow; never hang forever
    return CO;
  }
};

void fillRandom(std::vector<float> &V, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<float> Dist(-1.0f, 1.0f);
  for (float &X : V)
    X = Dist(Rng);
}

/// Runs one (TA, TB, M, N, K, beta) problem remotely and locally and
/// expects bitwise-identical C.
void expectRemoteMatchesLocal(gemm::Client &Remote, gemm::Engine &Local,
                              gemm::Trans TA, gemm::Trans TB, int64_t M,
                              int64_t N, int64_t K, float Beta,
                              unsigned Seed) {
  const int64_t ARows = TA == gemm::Trans::None ? M : K;
  const int64_t ACols = TA == gemm::Trans::None ? K : M;
  const int64_t BRows = TB == gemm::Trans::None ? K : N;
  const int64_t BCols = TB == gemm::Trans::None ? N : K;
  std::vector<float> A(ARows * ACols), B(BRows * BCols), C0(M * N);
  fillRandom(A, Seed);
  fillRandom(B, Seed + 1);
  fillRandom(C0, Seed + 2);
  std::vector<float> CR = C0, CL = C0;
  Error ER = Remote.sgemm(TA, TB, M, N, K, 1.0f, A.data(), ARows, B.data(),
                          BRows, Beta, CR.data(), M);
  ASSERT_FALSE(ER) << ER.message();
  Error EL = Local.sgemm(TA, TB, M, N, K, 1.0f, A.data(), ARows, B.data(),
                         BRows, Beta, CL.data(), M);
  ASSERT_FALSE(EL) << EL.message();
  EXPECT_EQ(0,
            std::memcmp(CR.data(), CL.data(), CR.size() * sizeof(float)))
      << "remote result diverged for " << M << "x" << N << "x" << K;
}

/// A hand-rolled session speaking the raw wire protocol — what a buggy or
/// malicious client "looks like" to the server.
struct RawSession {
  ipc::ShmRegion Shm;
  ipc::SessionLayout Layout;
  ipc::Socket Sock;
  ipc::RingView Req, Resp;
  ipc::HelloAck Ack;

  /// Connects and handshakes; \p Mutate can corrupt the HelloMsg first.
  Error connect(const std::string &Path,
                void (*Mutate)(ipc::HelloMsg &) = nullptr,
                uint64_t Bytes = 1 << 20, uint32_t Slots = 16) {
    Expected<ipc::SessionLayout> L = ipc::SessionLayout::derive(Bytes, Slots);
    if (!L)
      return L.takeError();
    Layout = *L;
    Expected<ipc::ShmRegion> R = ipc::ShmRegion::create(Bytes);
    if (!R)
      return R.takeError();
    Shm = R.take();
    auto *H = reinterpret_cast<ipc::ShmSessionHeader *>(Shm.base());
    *H = ipc::ShmSessionHeader{};
    H->TotalBytes = Bytes;
    H->RingSlots = Slots;
    H->ArenaOff = Layout.ArenaOff;
    H->ArenaBytes = Layout.ArenaBytes;
    Req.init(Shm.at(Layout.ReqRingOff), Slots);
    Resp.init(Shm.at(Layout.RespRingOff), Slots);
    Expected<ipc::Socket> S = ipc::Socket::connect(Path);
    if (!S)
      return S.takeError();
    Sock = S.take();
    ipc::HelloMsg Hello;
    Hello.ShmBytes = Bytes;
    Hello.RingSlots = Slots;
    Hello.NameLen = static_cast<uint32_t>(Shm.name().size());
    std::snprintf(Hello.ShmName, sizeof(Hello.ShmName), "%s",
                  Shm.name().c_str());
    if (Mutate)
      Mutate(Hello);
    if (Error E = Sock.sendAll(&Hello, sizeof(Hello)))
      return E;
    if (Error E = Sock.recvAllTimed(&Ack, sizeof(Ack), 60000))
      return E;
    Shm.unlinkName();
    return Error::success();
  }

  bool admitted() const {
    return Ack.Status == static_cast<uint16_t>(ipc::HelloStatus::Ok);
  }

  /// Pushes raw bytes as one packet and rings the request doorbell.
  Error post(const void *Packet, uint32_t Bytes) {
    if (!Req.push(Packet, Bytes))
      return errorf("raw session: request ring full");
    return Sock.ring(ipc::DoorbellRequest);
  }

  /// Pops the next reply, waiting on the doorbell as needed.
  Error nextReply(void *Slot, int TimeoutMs = 60000) {
    for (;;) {
      if (Resp.pop(Slot))
        return Error::success();
      uint8_t Bell;
      if (Error E = Sock.recvAllTimed(&Bell, 1, TimeoutMs))
        return E;
    }
  }
};

/// fork+execs gemmd_client_helper; returns the child pid.
pid_t spawnHelper(const std::string &Socket, int Iters, int Seed,
                  int SleepMs) {
  std::string ItersS = std::to_string(Iters);
  std::string SeedS = std::to_string(Seed);
  std::string SleepS = std::to_string(SleepMs);
  pid_t Pid = ::fork();
  if (Pid == 0) {
    ::execl(GEMMD_HELPER, GEMMD_HELPER, "--socket", Socket.c_str(),
            "--iters", ItersS.c_str(), "--seed", SeedS.c_str(),
            "--sleep-ms", SleepS.c_str(), static_cast<char *>(nullptr));
    _exit(127); // exec failed
  }
  return Pid;
}

//===----------------------------------------------------------------------===//
// Differential correctness (the satellite-5 contract)
//===----------------------------------------------------------------------===//

TEST(GemmdDifferential, RemoteMatchesLocalBitwise) {
  ServerFixture F;
  gemm::Client Remote(F.clientOpts());
  gemm::Engine Local; // same default EngineConfig as the server's engine
  expectRemoteMatchesLocal(Remote, Local, gemm::Trans::None,
                           gemm::Trans::None, 64, 48, 32, 0.0f, 11);
  expectRemoteMatchesLocal(Remote, Local, gemm::Trans::None,
                           gemm::Trans::None, 33, 29, 17, 0.5f, 22);
  expectRemoteMatchesLocal(Remote, Local, gemm::Trans::Transpose,
                           gemm::Trans::None, 40, 24, 16, 1.0f, 33);
  expectRemoteMatchesLocal(Remote, Local, gemm::Trans::None,
                           gemm::Trans::Transpose, 24, 40, 16, 0.0f, 44);
  expectRemoteMatchesLocal(Remote, Local, gemm::Trans::Transpose,
                           gemm::Trans::Transpose, 16, 16, 48, 0.25f, 55);
}

TEST(GemmdDifferential, DegenerateCallsMatchEngineExactly) {
  ServerFixture F;
  gemm::Client Remote(F.clientOpts());
  gemm::Engine Local;
  // m == 0: C untouched, no wire traffic.
  std::vector<float> C{1, 2, 3, 4};
  ASSERT_FALSE(Remote.sgemm(0, 2, 2, 1.0f, nullptr, 1, nullptr, 1, 0.0f,
                            C.data(), 1));
  EXPECT_EQ(1.0f, C[0]);
  // k == 0: beta scaling, bitwise-identical to the Engine's path.
  std::vector<float> CR{1, 2, 3, 4}, CL{1, 2, 3, 4};
  ASSERT_FALSE(Remote.sgemm(2, 2, 0, 1.0f, nullptr, 2, nullptr, 1, 0.3f,
                            CR.data(), 2));
  ASSERT_FALSE(Local.sgemm(2, 2, 0, 1.0f, nullptr, 2, nullptr, 1, 0.3f,
                           CL.data(), 2));
  EXPECT_EQ(0, std::memcmp(CR.data(), CL.data(), 4 * sizeof(float)));
  // Errors: negative dims and bad leading dimensions fail client-side.
  Error E1 = Remote.sgemm(-1, 2, 2, 1.0f, nullptr, 1, nullptr, 1, 0.0f,
                          C.data(), 1);
  ASSERT_TRUE(E1);
  EXPECT_NE(E1.message().find("negative dimension"), std::string::npos);
  Error E2 = Remote.sgemm(4, 2, 3, 1.0f, C.data(), 2, C.data(), 3, 0.0f,
                          C.data(), 4);
  ASSERT_TRUE(E2);
  EXPECT_NE(E2.message().find("leading dimension"), std::string::npos);
}

TEST(GemmdDifferential, OutOfProcessClientVerifies) {
  ServerFixture F;
  pid_t Pid = spawnHelper(F.Opts.SocketPath, 4, 7, 0);
  ASSERT_GT(Pid, 0);
  int Status = 0;
  ASSERT_EQ(Pid, ::waitpid(Pid, &Status, 0));
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(0, WEXITSTATUS(Status)) << "helper found a divergence";
}

//===----------------------------------------------------------------------===//
// Batched round trips (wire v2)
//===----------------------------------------------------------------------===//

TEST(GemmdBatched, StridedBatchedMatchesLocalBitwise) {
  ServerFixture F;
  gemm::Client Remote(F.clientOpts());
  gemm::Engine Local; // same default EngineConfig as the server's engine
  const int64_t M = 17, N = 23, K = 31, Count = 6;
  const int64_t SA = M * K + 2, SB = K * N + 1, SC = M * N + 3;
  std::vector<float> A(SA * Count), B(SB * Count), C0(SC * Count);
  fillRandom(A, 101);
  fillRandom(B, 102);
  fillRandom(C0, 103);
  std::vector<float> CR = C0, CL = C0;
  Error ER = Remote.sgemmStridedBatched(
      gemm::Trans::None, gemm::Trans::None, M, N, K, 1.25f, A.data(), M, SA,
      B.data(), K, SB, 0.5f, CR.data(), M, SC, Count);
  ASSERT_FALSE(ER) << ER.message();
  Error EL = Local.sgemmStridedBatched(
      gemm::Trans::None, gemm::Trans::None, M, N, K, 1.25f, A.data(), M, SA,
      B.data(), K, SB, 0.5f, CL.data(), M, SC, Count);
  ASSERT_FALSE(EL) << EL.message();
  EXPECT_EQ(0, std::memcmp(CR.data(), CL.data(), CR.size() * sizeof(float)))
      << "remote batch diverged from local engine";
}

TEST(GemmdBatched, StrideZeroSharedOperandsMatchLocal) {
  ServerFixture F;
  gemm::Client Remote(F.clientOpts());
  gemm::Engine Local;
  const int64_t M = 24, N = 36, K = 48, Count = 5;
  std::vector<float> A(M * K), B(K * N), CR(M * N * Count, 0.0f),
      CL(M * N * Count, 0.0f);
  fillRandom(A, 201);
  fillRandom(B, 202);
  // A and B shared across the batch (stride 0): the client ships each
  // exactly once, the server fans them out.
  Error ER = Remote.sgemmStridedBatched(gemm::Trans::None, gemm::Trans::None,
                                        M, N, K, 1.0f, A.data(), M, 0,
                                        B.data(), K, 0, 0.0f, CR.data(), M,
                                        M * N, Count);
  ASSERT_FALSE(ER) << ER.message();
  Error EL = Local.sgemmStridedBatched(gemm::Trans::None, gemm::Trans::None,
                                       M, N, K, 1.0f, A.data(), M, 0,
                                       B.data(), K, 0, 0.0f, CL.data(), M,
                                       M * N, Count);
  ASSERT_FALSE(EL) << EL.message();
  EXPECT_EQ(0, std::memcmp(CR.data(), CL.data(), CR.size() * sizeof(float)));
}

TEST(GemmdBatched, DegenerateAndInvalidBatchesResolveClientSide) {
  ServerFixture F;
  gemm::Client Remote(F.clientOpts());
  gemm::Engine Local;
  // Empty batch: success, no wire traffic needed.
  ASSERT_FALSE(Remote.sgemmStridedBatched(gemm::Trans::None,
                                          gemm::Trans::None, 8, 8, 8, 1.0f,
                                          nullptr, 8, 64, nullptr, 8, 64,
                                          0.0f, nullptr, 8, 64, 0));
  // alpha == 0: local beta scaling per item, identical to the engine's.
  const int64_t M = 3, N = 2, Count = 2, SC = M * N;
  std::vector<float> CR(SC * Count), CL(SC * Count);
  fillRandom(CR, 301);
  std::memcpy(CL.data(), CR.data(), CR.size() * sizeof(float));
  ASSERT_FALSE(Remote.sgemmStridedBatched(gemm::Trans::None,
                                          gemm::Trans::None, M, N, 4, 0.0f,
                                          nullptr, M, 0, nullptr, 4, 0,
                                          0.25f, CR.data(), M, SC, Count));
  ASSERT_FALSE(Local.sgemmStridedBatched(gemm::Trans::None,
                                         gemm::Trans::None, M, N, 4, 0.0f,
                                         nullptr, M, 0, nullptr, 4, 0,
                                         0.25f, CL.data(), M, SC, Count));
  EXPECT_EQ(0, std::memcmp(CR.data(), CL.data(), CR.size() * sizeof(float)));
  // Overlapping C panels fail before any traffic.
  std::vector<float> Buf(256);
  Error E = Remote.sgemmStridedBatched(gemm::Trans::None, gemm::Trans::None,
                                       8, 8, 8, 1.0f, Buf.data(), 8, 0,
                                       Buf.data(), 8, 0, 0.0f, Buf.data(), 8,
                                       32, 2);
  ASSERT_TRUE(E);
}

TEST(GemmdBatched, BatchGeometryEscapingArenaRejectedNotFatal) {
  ServerFixture F;
  RawSession S;
  ASSERT_FALSE(S.connect(F.Opts.SocketPath));
  ASSERT_TRUE(S.admitted());
  // Well-formed batched packet; the last item's C panel escapes the arena
  // through the stride multiplication, which only wide arithmetic catches.
  ipc::GemmBatchRequestMsg Q;
  Q.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmBatchRequest);
  Q.H.Seq = 7;
  Q.H.Bytes = sizeof(Q);
  Q.M = Q.N = Q.K = 8;
  Q.Lda = Q.Ldb = Q.Ldc = 8;
  Q.StrideA = Q.StrideB = 64;
  Q.StrideC = int64_t(1) << 40;
  Q.BatchCount = 4;
  ASSERT_FALSE(S.post(&Q, sizeof(Q)));
  alignas(8) unsigned char Slot[ipc::SlotBytes];
  ASSERT_FALSE(S.nextReply(Slot));
  ipc::GemmReplyMsg Rep;
  std::memcpy(&Rep, Slot, sizeof(Rep));
  EXPECT_EQ(static_cast<uint16_t>(ipc::PacketType::GemmBatchReply),
            Rep.H.Type);
  EXPECT_EQ(Q.H.Seq, Rep.H.Seq);
  EXPECT_EQ(static_cast<int32_t>(ipc::ReqStatus::Bad), Rep.Status);
  // Bad geometry is a client bug, not a protocol violation: the session
  // survives and still answers well-formed batches.
  Q.StrideC = 64;
  Q.OffB = 1024;
  Q.OffC = 2048;
  Q.H.Seq = 8;
  ASSERT_FALSE(S.post(&Q, sizeof(Q)));
  ASSERT_FALSE(S.nextReply(Slot));
  std::memcpy(&Rep, Slot, sizeof(Rep));
  EXPECT_EQ(static_cast<int32_t>(ipc::ReqStatus::Ok), Rep.Status);
}

//===----------------------------------------------------------------------===//
// The warm shared cache (the headline acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(GemmdWarmCache, ColdClientSkipsPlanBuildAndJitOnWarmShape) {
  ServerFixture F;
  const int64_t M = 72, N = 36, K = 24;
  std::vector<float> A(M * K), B(K * N), C(M * N);
  fillRandom(A, 1);
  fillRandom(B, 2);

  // First client warms the daemon: its call pays plan build (and possibly
  // JIT compiles).
  gemm::Client Warmer(F.clientOpts());
  ASSERT_FALSE(Warmer.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f,
                            C.data(), M));
  ipc::StatsReplyMsg Warm;
  ASSERT_FALSE(Warmer.serverStats(Warm));
  EXPECT_GE(Warm.PlanBuilds, 1u);

  // A brand-new session ("cold client") on the same shape must ride the
  // warm caches: plan hit, no new build, no compiler invocation.
  gemm::Client Cold(F.clientOpts());
  ASSERT_FALSE(Cold.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f,
                          C.data(), M));
  ipc::StatsReplyMsg After;
  ASSERT_FALSE(Cold.serverStats(After));
  EXPECT_EQ(Warm.PlanBuilds, After.PlanBuilds);
  EXPECT_EQ(Warm.UkrCompiles, After.UkrCompiles);
  EXPECT_EQ(Warm.PlanHits + 1, After.PlanHits);
  EXPECT_TRUE(Cold.lastFlags() & ipc::ReplyPlanHit);
  EXPECT_FALSE(Cold.lastFlags() & ipc::ReplyPlanBuilt);
  EXPECT_FALSE(Cold.lastFlags() & ipc::ReplyJitCompiled);
  EXPECT_EQ(2u, After.TotalClients);
}

//===----------------------------------------------------------------------===//
// Fault isolation
//===----------------------------------------------------------------------===//

TEST(GemmdFaultIsolation, SigkilledClientMidRequestSparesOthers) {
  ServerFixture F;
  // Three real client processes; the victim runs long enough that SIGKILL
  // lands mid-stream (1 ms pause per iteration keeps it alive past the
  // kill without slowing the suite).
  pid_t Victim = spawnHelper(F.Opts.SocketPath, 2000, 101, 1);
  pid_t S1 = spawnHelper(F.Opts.SocketPath, 20, 102, 0);
  pid_t S2 = spawnHelper(F.Opts.SocketPath, 20, 103, 0);
  ASSERT_GT(Victim, 0);
  ASSERT_GT(S1, 0);
  ASSERT_GT(S2, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(0, ::kill(Victim, SIGKILL));
  int Status = 0;
  ASSERT_EQ(Victim, ::waitpid(Victim, &Status, 0));
  EXPECT_TRUE(WIFSIGNALED(Status));

  // The survivors complete all iterations bitwise-correct...
  ASSERT_EQ(S1, ::waitpid(S1, &Status, 0));
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(0, WEXITSTATUS(Status)) << "survivor 1 failed";
  ASSERT_EQ(S2, ::waitpid(S2, &Status, 0));
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(0, WEXITSTATUS(Status)) << "survivor 2 failed";

  // ...and the server keeps serving fresh sessions, with the death
  // recorded as a reap.
  gemm::Client After(F.clientOpts());
  ASSERT_FALSE(After.ping());
  ipc::StatsReplyMsg St;
  ASSERT_FALSE(After.serverStats(St));
  EXPECT_GE(St.Reaped, 1u);
}

TEST(GemmdFaultIsolation, MalformedHeaderReapsOnlyThatClient) {
  ServerFixture F;
  gemm::Client Healthy(F.clientOpts());
  ASSERT_FALSE(Healthy.ping());

  RawSession Evil;
  ASSERT_FALSE(Evil.connect(F.Opts.SocketPath));
  ASSERT_TRUE(Evil.admitted());
  unsigned char Garbage[64];
  std::memset(Garbage, 0xAB, sizeof(Garbage)); // wrong magic, wrong all
  ASSERT_FALSE(Evil.post(Garbage, sizeof(Garbage)));

  // The server reaps the violator: its socket reads EOF.
  uint8_t Bell;
  Error E = Evil.Sock.recvAllTimed(&Bell, 1, 60000);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("closed"), std::string::npos) << E.message();

  // The healthy session never noticed.
  std::vector<float> A(8 * 8, 1.0f), C(8 * 8, 0.0f);
  EXPECT_FALSE(Healthy.sgemm(8, 8, 8, 1.0f, A.data(), 8, A.data(), 8, 0.0f,
                             C.data(), 8));
  ipc::StatsReplyMsg St;
  ASSERT_FALSE(Healthy.serverStats(St));
  EXPECT_GE(St.Reaped, 1u);
}

TEST(GemmdFaultIsolation, OversizedHeaderReaped) {
  ServerFixture F;
  RawSession Evil;
  ASSERT_FALSE(Evil.connect(F.Opts.SocketPath));
  ASSERT_TRUE(Evil.admitted());
  // Valid magic/version, but Bytes claims more than a slot can hold.
  ipc::PacketHeader H;
  H.Type = static_cast<uint16_t>(ipc::PacketType::GemmRequest);
  H.Bytes = ipc::SlotBytes * 4;
  ASSERT_FALSE(Evil.post(&H, sizeof(H)));
  uint8_t Bell;
  Error E = Evil.Sock.recvAllTimed(&Bell, 1, 60000);
  ASSERT_TRUE(E); // EOF: session reaped

  // Server still admits and serves new sessions.
  gemm::Client After(F.clientOpts());
  EXPECT_FALSE(After.ping());
}

TEST(GemmdFaultIsolation, GeometryEscapingArenaIsRejectedNotFatal) {
  ServerFixture F;
  RawSession S;
  ASSERT_FALSE(S.connect(F.Opts.SocketPath));
  ASSERT_TRUE(S.admitted());
  // A well-formed packet whose tensor extents escape the arena.
  ipc::GemmRequestMsg Q;
  Q.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmRequest);
  Q.H.Seq = 1;
  Q.H.Bytes = sizeof(Q);
  Q.M = Q.N = Q.K = 1 << 20; // ~4 TiB per operand
  Q.Lda = Q.Ldb = Q.Ldc = 1 << 20;
  ASSERT_FALSE(S.post(&Q, sizeof(Q)));
  alignas(8) unsigned char Slot[ipc::SlotBytes];
  ASSERT_FALSE(S.nextReply(Slot));
  ipc::GemmReplyMsg Rep;
  std::memcpy(&Rep, Slot, sizeof(Rep));
  EXPECT_EQ(static_cast<int32_t>(ipc::ReqStatus::Bad), Rep.Status);
  // Bad geometry is a client bug, not a protocol violation: the session
  // survives and can still do real work.
  EXPECT_FALSE(S.Sock.ring(ipc::DoorbellRequest));
}

//===----------------------------------------------------------------------===//
// Admission control and handshake rejections
//===----------------------------------------------------------------------===//

TEST(GemmdAdmission, FloodGetsBusyNotUnboundedQueueing) {
  gemmd::ServerOptions O;
  O.Workers = 1;
  O.QueueMax = 1;
  ServerFixture F(O);
  RawSession S;
  ASSERT_FALSE(S.connect(F.Opts.SocketPath, nullptr, 32 << 20));
  ASSERT_TRUE(S.admitted());

  // One heavy request to occupy the worker, then a burst. With a queue of
  // one, most of the burst must come back Busy instead of piling up.
  auto MakeReq = [&](uint32_t Seq, int64_t Dim) {
    ipc::GemmRequestMsg Q;
    Q.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmRequest);
    Q.H.Seq = Seq;
    Q.H.Bytes = sizeof(Q);
    Q.M = Q.N = Q.K = Dim;
    Q.Lda = Q.Ldb = Q.Ldc = Dim;
    Q.OffA = 0;
    Q.OffB = static_cast<uint64_t>(Dim) * Dim * sizeof(float);
    Q.OffC = Q.OffB * 2;
    return Q;
  };
  ipc::GemmRequestMsg Heavy = MakeReq(1, 512);
  ASSERT_FALSE(S.post(&Heavy, sizeof(Heavy)));
  constexpr int Burst = 6;
  for (int I = 0; I != Burst; ++I) {
    ipc::GemmRequestMsg Small = MakeReq(2 + I, 16);
    ASSERT_FALSE(S.post(&Small, sizeof(Small)));
  }
  int Ok = 0, Busy = 0;
  for (int I = 0; I != Burst + 1; ++I) {
    alignas(8) unsigned char Slot[ipc::SlotBytes];
    ASSERT_FALSE(S.nextReply(Slot, 120000));
    ipc::GemmReplyMsg Rep;
    std::memcpy(&Rep, Slot, sizeof(Rep));
    if (Rep.Status == static_cast<int32_t>(ipc::ReqStatus::Ok))
      ++Ok;
    else if (Rep.Status == static_cast<int32_t>(ipc::ReqStatus::Busy))
      ++Busy;
    else
      FAIL() << "unexpected reply status " << Rep.Status;
  }
  // Every request got exactly one answer; the bounded queue shed load.
  EXPECT_EQ(Burst + 1, Ok + Busy);
  EXPECT_GE(Ok, 1);   // at least the heavy one completed
  EXPECT_GE(Busy, 1); // and the burst could not all queue
}

TEST(GemmdAdmission, BadVersionHelloRejected) {
  ServerFixture F;
  RawSession S;
  ASSERT_FALSE(S.connect(F.Opts.SocketPath,
                         [](ipc::HelloMsg &H) { H.Version = 999; }));
  EXPECT_EQ(static_cast<uint16_t>(ipc::HelloStatus::BadVersion),
            S.Ack.Status);
}

TEST(GemmdAdmission, MaxClientsEnforced) {
  gemmd::ServerOptions O;
  O.MaxClients = 1;
  ServerFixture F(O);
  gemm::Client First(F.clientOpts());
  ASSERT_FALSE(First.ping()); // occupies the only seat
  RawSession Second;
  ASSERT_FALSE(Second.connect(F.Opts.SocketPath));
  EXPECT_EQ(static_cast<uint16_t>(ipc::HelloStatus::Full),
            Second.Ack.Status);
  // The seat frees on disconnect.
  First.disconnect();
  // Reaping is asynchronous (poller sees the hangup); poll briefly.
  bool Admitted = false;
  for (int Try = 0; Try != 100 && !Admitted; ++Try) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    RawSession Third;
    if (!Third.connect(F.Opts.SocketPath) && Third.admitted())
      Admitted = true;
  }
  EXPECT_TRUE(Admitted);
}

//===----------------------------------------------------------------------===//
// Lifecycle hygiene
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Wire v3: the precision dimension over the wire (docs/PRECISION.md)
//===----------------------------------------------------------------------===//

/// One typed problem remotely and locally; the engine's typed executor is
/// deterministic for a fixed plan, and both sides plan on the same
/// machine, so C must match bitwise for every dtype.
void expectTypedRoundTrip(gemm::Client &Remote, gemm::Engine &Local,
                          gemm::DType Ty, int64_t M, int64_t N, int64_t K,
                          double Alpha, double Beta, unsigned Seed) {
  const unsigned InB = gemm::dtypeInBytes(Ty);
  const unsigned OutB = gemm::dtypeOutBytes(Ty);
  std::vector<unsigned char> A(M * K * InB), B(K * N * InB),
      C0(M * N * OutB);
  std::mt19937 Rng(Seed);
  auto FillIn = [&](std::vector<unsigned char> &V) {
    if (Ty == gemm::DType::I8I32) {
      for (unsigned char &X : V)
        X = static_cast<unsigned char>(Rng());
      return;
    }
    std::uniform_real_distribution<float> D(-1.0f, 1.0f);
    auto *H = reinterpret_cast<uint16_t *>(V.data());
    for (size_t X = 0; X != V.size() / 2; ++X)
      H[X] = Ty == gemm::DType::F16 ? gemm::f32ToF16(D(Rng))
                                    : gemm::f32ToBf16(D(Rng));
  };
  FillIn(A);
  FillIn(B);
  std::vector<unsigned char> CR = C0, CL = C0;
  Error ER = Remote.gemm(Ty, gemm::Trans::None, gemm::Trans::None, M, N, K,
                         Alpha, A.data(), M, B.data(), K, Beta, CR.data(),
                         M);
  ASSERT_FALSE(ER) << ER.message();
  Error EL = Local.gemm(Ty, gemm::Trans::None, gemm::Trans::None, M, N, K,
                        Alpha, A.data(), M, B.data(), K, Beta, CL.data(),
                        M);
  ASSERT_FALSE(EL) << EL.message();
  EXPECT_EQ(0, std::memcmp(CR.data(), CL.data(), CR.size()))
      << gemm::dtypeName(Ty) << " " << M << "x" << N << "x" << K
      << " diverged over the wire";
}

TEST(GemmdPrecision, TypedRoundTripMatchesLocalBitwise) {
  ServerFixture F;
  gemm::Client Remote(F.clientOpts());
  gemm::Engine Local;
  unsigned Seed = 500;
  for (gemm::DType Ty :
       {gemm::DType::F16, gemm::DType::BF16, gemm::DType::I8I32}) {
    expectTypedRoundTrip(Remote, Local, Ty, 17, 13, 19, 1.0, 0.0, Seed++);
    expectTypedRoundTrip(Remote, Local, Ty, 40, 24, 32, 1.0,
                         Ty == gemm::DType::I8I32 ? 2.0 : 0.0, Seed++);
  }
}

TEST(GemmdPrecision, ClientRejectsUnrepresentableScalesLocally) {
  ServerFixture F;
  gemm::Client Remote(F.clientOpts());
  std::vector<int8_t> A(16, 1), B(16, 1);
  std::vector<int32_t> C(16, 0);
  // Fractional i8 scale: refused before anything crosses the wire.
  EXPECT_TRUE(bool(Remote.gemm(gemm::DType::I8I32, gemm::Trans::None,
                               gemm::Trans::None, 4, 4, 4, 0.5, A.data(), 4,
                               B.data(), 4, 0.0, C.data(), 4)));
  // Alpha that doesn't survive the wire's f32: likewise refused.
  std::vector<uint16_t> Ah(16, 0), Bh(16, 0), Ch(16, 0);
  EXPECT_TRUE(bool(Remote.gemm(gemm::DType::F16, gemm::Trans::None,
                               gemm::Trans::None, 4, 4, 4, 1.0000000001,
                               Ah.data(), 4, Bh.data(), 4, 0.0, Ch.data(),
                               4)));
}

TEST(GemmdPrecision, UnknownDtypeRejectedNotFatal) {
  ServerFixture F;
  RawSession S;
  ASSERT_FALSE(S.connect(F.Opts.SocketPath));
  ASSERT_TRUE(S.admitted());
  ipc::GemmRequestMsg Q;
  Q.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmRequest);
  Q.H.Seq = 21;
  Q.H.Bytes = sizeof(Q);
  Q.M = Q.N = Q.K = 8;
  Q.Lda = Q.Ldb = Q.Ldc = 8;
  Q.OffB = 1024;
  Q.OffC = 2048;
  Q.DTy = 7; // not a gemm::DType
  ASSERT_FALSE(S.post(&Q, sizeof(Q)));
  alignas(8) unsigned char Slot[ipc::SlotBytes];
  ASSERT_FALSE(S.nextReply(Slot));
  ipc::GemmReplyMsg Rep;
  std::memcpy(&Rep, Slot, sizeof(Rep));
  EXPECT_EQ(static_cast<int32_t>(ipc::ReqStatus::Bad), Rep.Status);
  // Session survives; the same packet with a valid dtype answers Ok.
  Q.DTy = static_cast<uint8_t>(gemm::DType::I8I32);
  Q.H.Seq = 22;
  ASSERT_FALSE(S.post(&Q, sizeof(Q)));
  ASSERT_FALSE(S.nextReply(Slot));
  std::memcpy(&Rep, Slot, sizeof(Rep));
  EXPECT_EQ(static_cast<int32_t>(ipc::ReqStatus::Ok), Rep.Status);
}

TEST(GemmdPrecision, BatchDtypeRejectedInWireV3) {
  ServerFixture F;
  RawSession S;
  ASSERT_FALSE(S.connect(F.Opts.SocketPath));
  ASSERT_TRUE(S.admitted());
  ipc::GemmBatchRequestMsg Q;
  Q.H.Type = static_cast<uint16_t>(ipc::PacketType::GemmBatchRequest);
  Q.H.Seq = 31;
  Q.H.Bytes = sizeof(Q);
  Q.M = Q.N = Q.K = 8;
  Q.Lda = Q.Ldb = Q.Ldc = 8;
  Q.StrideA = Q.StrideB = Q.StrideC = 64;
  Q.OffB = 1024;
  Q.OffC = 2048;
  Q.BatchCount = 2;
  Q.DTy = static_cast<uint8_t>(gemm::DType::F16); // reserved until v4
  ASSERT_FALSE(S.post(&Q, sizeof(Q)));
  alignas(8) unsigned char Slot[ipc::SlotBytes];
  ASSERT_FALSE(S.nextReply(Slot));
  ipc::GemmReplyMsg Rep;
  std::memcpy(&Rep, Slot, sizeof(Rep));
  EXPECT_EQ(static_cast<int32_t>(ipc::ReqStatus::Bad), Rep.Status);
  // f32 batches on the same session still work.
  Q.DTy = 0;
  Q.H.Seq = 32;
  ASSERT_FALSE(S.post(&Q, sizeof(Q)));
  ASSERT_FALSE(S.nextReply(Slot));
  std::memcpy(&Rep, Slot, sizeof(Rep));
  EXPECT_EQ(static_cast<int32_t>(ipc::ReqStatus::Ok), Rep.Status);
}

TEST(GemmdLifecycle, StopClosesSessionsAndUnlinksSocket) {
  auto F = std::make_unique<ServerFixture>();
  std::string Path = F->Opts.SocketPath;
  gemm::Client C(F->clientOpts());
  ASSERT_FALSE(C.ping());
  F->Srv->stop();
  // The client notices on its next call and fails cleanly.
  EXPECT_TRUE(C.ping());
  // The socket file is gone.
  EXPECT_NE(0, ::access(Path.c_str(), F_OK));
}

TEST(GemmdLifecycle, NoSharedMemoryNamesLeak) {
  {
    ServerFixture F;
    gemm::Client C(F.clientOpts());
    ASSERT_FALSE(C.ping());
    // Session live, name already unlinked: nothing to leak even if both
    // sides died right now.
    if (DIR *D = ::opendir("/dev/shm")) {
      while (dirent *E = ::readdir(D))
        EXPECT_EQ(nullptr, std::strstr(E->d_name, "exo-gemmd"))
            << "leaked shm name " << E->d_name;
      ::closedir(D);
    }
  }
}

} // namespace
