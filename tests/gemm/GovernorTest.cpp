//===- GovernorTest.cpp - Governor budget, clamps and bitwise grants ------===//
//
// The governor's contract (Governor.h, docs/CONCURRENCY.md) in three
// testable pieces:
//
//   - the process-wide budget invariant — across racing acquirers the sum
//     of (granted width - 1) never exceeds ceiling - 1, and every unit is
//     returned when the grants die,
//   - the shape clamp — work under EXO_GEMM_GOVERNOR_MIN_WORK per extra
//     thread is granted width 1 (the sequential driver) no matter how idle
//     the pool is,
//   - the output contract — governed Engines racing from eight plain
//     threads produce results bitwise identical to the fixed 1-thread
//     plan, because a grant changes scheduling, never arithmetic.
//
// Rides in gemm_test, so the tsan_gemm_threads8 gate re-runs the racing
// cases under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "gemm/Governor.h"

#include "benchutil/Bench.h"
#include "gemm/Engine.h"
#include "gemm/Kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace gemm;

namespace {

/// Records the running and high-water sum of extra threads held by live
/// grants, so the budget invariant is checked at its tightest moment.
struct ExtraLedger {
  std::atomic<int64_t> Held{0};
  std::atomic<int64_t> Peak{0};

  void add(int64_t Extra) {
    int64_t Now = Held.fetch_add(Extra, std::memory_order_relaxed) + Extra;
    int64_t Seen = Peak.load(std::memory_order_relaxed);
    while (Now > Seen &&
           !Peak.compare_exchange_weak(Seen, Now, std::memory_order_relaxed))
      ;
  }
  void sub(int64_t Extra) {
    Held.fetch_sub(Extra, std::memory_order_relaxed);
  }
};

} // namespace

TEST(Governor, BudgetInvariantUnderRacingAcquirers) {
  const int64_t Ceiling = 4;
  Governor Gov(Ceiling, /*MinWorkFlops=*/0);

  ExtraLedger Ledger;
  std::atomic<bool> Bad{false};
  const int NThreads = 8, Iters = 200;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != Iters; ++I) {
        Governor::Grant G;
        Gov.acquire(512, 512, 512, /*PlanWidth=*/Ceiling, G);
        if (G.width() < 1 || G.width() > Ceiling)
          Bad.store(true, std::memory_order_relaxed);
        Ledger.add(G.width() - 1);
        if (Gov.outstandingExtra() > Ceiling - 1)
          Bad.store(true, std::memory_order_relaxed);
        Ledger.sub(G.width() - 1);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_FALSE(Bad.load());
  EXPECT_LE(Ledger.Peak.load(), Ceiling - 1);
  EXPECT_EQ(Gov.outstandingExtra(), 0) << "grants leaked budget";
  GovernorStats S = Gov.stats();
  EXPECT_EQ(S.Grants, static_cast<uint64_t>(NThreads) * Iters);
  EXPECT_GE(S.WidthSum, S.Grants); // every grant is at least width 1
}

TEST(Governor, SmallShapeClampsToSequential) {
  Governor Gov(/*Ceiling=*/8, /*MinWorkFlops=*/int64_t(1) << 21);

  // 2*32^3 = 64K flops — far under the 2M-flop floor for even one extra
  // thread. Width 1 means no reservation at all: the sequential driver.
  {
    Governor::Grant G;
    Gov.acquire(32, 32, 32, /*PlanWidth=*/8, G);
    EXPECT_EQ(G.width(), 1);
    EXPECT_TRUE(G.shapeClamped());
    EXPECT_EQ(G.reservation().Count, 0);
    EXPECT_EQ(Gov.outstandingExtra(), 0);
  }

  // 2*512^3 = 268M flops clears the floor for the full plan width on an
  // idle pool.
  {
    Governor::Grant G;
    Gov.acquire(512, 512, 512, /*PlanWidth=*/4, G);
    EXPECT_EQ(G.width(), 4);
    EXPECT_FALSE(G.shapeClamped());
    EXPECT_EQ(G.reservation().Count, 3);
    EXPECT_EQ(Gov.outstandingExtra(), 3);
  }
  EXPECT_EQ(Gov.outstandingExtra(), 0);

  // The work floor scales per extra thread: ~2.5x the floor affords a
  // width-2 team but not more, whatever the plan width.
  {
    Governor::Grant G;
    Gov.acquireFlops(2.5 * (int64_t(1) << 21), /*PlanWidth=*/8, G);
    EXPECT_LE(G.width(), 2);
    EXPECT_TRUE(G.shapeClamped());
  }
}

namespace {

struct RacingCallerCtx {
  Engine *E;
  const float *A, *B;
  int64_t M, N, K;
  std::vector<float> *Cs;
  std::atomic<int> Failures{0};
};

} // namespace

TEST(Governor, RacingGovernedCallersMatchFixedPlanBitwise) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";

  const int64_t M = 96, N = 80, K = 112;
  std::vector<float> A(M * K), B(K * N);
  benchutil::fillRandom(A.data(), A.size(), 41);
  benchutil::fillRandom(B.data(), B.size(), 42);

  EngineConfig Fixed;
  Fixed.Series = EngineSeries::Blis;
  Fixed.Threads = 1;
  Fixed.Governor = 0;
  Engine ERef(Fixed);
  std::vector<float> CRef(M * N, 0.0f);
  ASSERT_FALSE(ERef.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f,
                          CRef.data(), M));

  // Governed engine planning at a 4-wide team: every racing caller gets
  // whatever width the governor grants at that instant (1..4 depending on
  // the interleaving) and all must match the sequential result bitwise.
  EngineConfig Gov;
  Gov.Series = EngineSeries::Blis;
  Gov.Threads = 4;
  Gov.Governor = 1;
  Engine EGov(Gov);

  const int Callers = 8, Rounds = 16;
  std::vector<std::vector<float>> Cs(Callers,
                                     std::vector<float>(M * N, 0.0f));
  RacingCallerCtx Ctx;
  Ctx.E = &EGov;
  Ctx.A = A.data();
  Ctx.B = B.data();
  Ctx.M = M;
  Ctx.N = N;
  Ctx.K = K;
  Ctx.Cs = Cs.data();

  std::vector<std::thread> Threads;
  for (int T = 0; T != Callers; ++T)
    Threads.emplace_back([&Ctx, T] {
      float *C = (Ctx.Cs + T)->data();
      for (int R = 0; R != Rounds; ++R)
        if (Ctx.E->sgemm(Ctx.M, Ctx.N, Ctx.K, 1.0f, Ctx.A, Ctx.M, Ctx.B,
                         Ctx.K, 0.0f, C, Ctx.M))
          Ctx.Failures.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Ctx.Failures.load(), 0);
  for (int T = 0; T != Callers; ++T)
    EXPECT_EQ(0, std::memcmp(Cs[T].data(), CRef.data(),
                             CRef.size() * sizeof(float)))
        << "governed caller " << T << " differs from the 1-thread result";

  EngineStats S = EGov.stats();
  EXPECT_GE(S.GovGrants, static_cast<uint64_t>(Callers) * Rounds);
  EXPECT_GE(S.GovWidthSum, S.GovGrants);
}
