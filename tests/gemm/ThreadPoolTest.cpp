//===- ThreadPoolTest.cpp - Pool re-entrancy detection and degradation ----===//
//
// The pool admits one fork-join job at a time (JobMu), so a body that
// calls parallel() on the same pool again used to self-deadlock: the
// inner call waited on the mutex its own outer job holds. The contract
// under test here is the degradation path that replaced the deadlock:
//
//   - inParallel() is true exactly while the calling thread is inside a
//     job body on that pool (workers and the caller-as-member alike),
//   - a nested parallel() on the same pool runs every Tid inline on the
//     calling thread, sequentially, instead of deadlocking,
//   - an Engine::sgemm issued from inside a pool job still returns — the
//     GEMM driver collapses its team to size 1 — and its result is
//     bitwise identical to the same call made outside the pool (the
//     thread-count invariance guarantee, applied at team size 1).
//
// Rides in gemm_test, which the tsan_gemm_threads8 gate re-runs under
// ThreadSanitizer — the degradation must also be race-free.
//
//===----------------------------------------------------------------------===//

#include "gemm/ThreadPool.h"

#include "benchutil/Bench.h"
#include "gemm/Engine.h"
#include "gemm/Kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace gemm;

namespace {

struct ProbeCtx {
  std::atomic<int> InsideTrue{0};
  std::atomic<int> Ran{0};
};

void probeBody(void *CtxP, int64_t) {
  auto *Ctx = static_cast<ProbeCtx *>(CtxP);
  if (ThreadPool::global().inParallel())
    Ctx->InsideTrue.fetch_add(1, std::memory_order_relaxed);
  Ctx->Ran.fetch_add(1, std::memory_order_relaxed);
}

struct NestedCtx {
  std::atomic<int> InnerRan{0};
  std::vector<std::thread::id> InnerThreads; // written only by Tid 0
};

void innerBody(void *CtxP, int64_t) {
  auto *Ctx = static_cast<NestedCtx *>(CtxP);
  Ctx->InnerRan.fetch_add(1, std::memory_order_relaxed);
  Ctx->InnerThreads.push_back(std::this_thread::get_id());
}

void outerBody(void *CtxP, int64_t Tid) {
  if (Tid != 0)
    return; // one member exercises the nested call; the rest just join
  // Without degradation this is the classic self-deadlock.
  ThreadPool::global().parallel(4, &innerBody, CtxP);
}

} // namespace

TEST(ThreadPool, InParallelTracksJobScope) {
  ThreadPool &P = ThreadPool::global();
  EXPECT_FALSE(P.inParallel());
  ProbeCtx Ctx;
  P.parallel(3, &probeBody, &Ctx);
  EXPECT_EQ(Ctx.Ran.load(), 3);
  EXPECT_EQ(Ctx.InsideTrue.load(), 3);
  EXPECT_FALSE(P.inParallel()); // cleared once the job completes
}

TEST(ThreadPool, NestedParallelDegradesInline) {
  NestedCtx Ctx;
  ThreadPool::global().parallel(2, &outerBody, &Ctx);
  // All four inner Tids ran, every one inline on the member that issued
  // the nested call — no handoff to other workers, no deadlock.
  EXPECT_EQ(Ctx.InnerRan.load(), 4);
  ASSERT_EQ(Ctx.InnerThreads.size(), 4u);
  for (const std::thread::id &Id : Ctx.InnerThreads)
    EXPECT_EQ(Id, Ctx.InnerThreads.front());
}

namespace {

struct GemmFromPoolCtx {
  Engine *E;
  const float *A, *B;
  int64_t M, N, K;
  std::vector<float> *Cs; // one buffer per Tid
  std::atomic<int> Failures{0};
};

void gemmFromPool(void *CtxP, int64_t Tid) {
  auto *Ctx = static_cast<GemmFromPoolCtx *>(CtxP);
  float *C = (Ctx->Cs + Tid)->data();
  exo::Error Err =
      Ctx->E->sgemm(Ctx->M, Ctx->N, Ctx->K, 1.0f, Ctx->A, Ctx->M, Ctx->B,
                    Ctx->K, 0.0f, C, Ctx->M);
  if (Err)
    Ctx->Failures.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TEST(ThreadPool, EngineCallInsidePoolJobDegradesAndMatchesBitwise) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";

  const int64_t M = 49, N = 50, K = 51;
  std::vector<float> A(M * K), B(K * N);
  benchutil::fillRandom(A.data(), A.size(), 31);
  benchutil::fillRandom(B.data(), B.size(), 32);

  // A team size the driver would normally fork for — from inside a pool
  // job it must collapse to 1 instead.
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Cfg.Threads = 4;
  Engine E(Cfg);

  std::vector<float> CRef(M * N, 0.0f);
  ASSERT_FALSE(E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f,
                       CRef.data(), M));

  const int64_t Outer = 3;
  std::vector<std::vector<float>> Cs(Outer,
                                     std::vector<float>(M * N, 0.0f));
  GemmFromPoolCtx Ctx;
  Ctx.E = &E;
  Ctx.A = A.data();
  Ctx.B = B.data();
  Ctx.M = M;
  Ctx.N = N;
  Ctx.K = K;
  Ctx.Cs = Cs.data();
  ThreadPool::global().parallel(Outer, &gemmFromPool, &Ctx);

  EXPECT_EQ(Ctx.Failures.load(), 0);
  for (int64_t T = 0; T != Outer; ++T)
    EXPECT_EQ(0, std::memcmp(Cs[T].data(), CRef.data(),
                             CRef.size() * sizeof(float)))
        << "pool-nested result differs from top-level result (Tid " << T
        << ")";
}

namespace {

struct TeamProbeCtx {
  std::atomic<uint64_t> TidMask{0};
  std::atomic<int> Ran{0};
};

void teamProbeBody(void *CtxP, int64_t Tid) {
  auto *Ctx = static_cast<TeamProbeCtx *>(CtxP);
  Ctx->TidMask.fetch_or(uint64_t(1) << Tid, std::memory_order_relaxed);
  Ctx->Ran.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TEST(ThreadPool, TryReserveRunTeamRelease) {
  ThreadPool &P = ThreadPool::global();

  // An idle pool grants the full request (growing up to the spawn cap)
  // and runTeam runs the caller as Tid 0 plus one Tid per reserved worker.
  ThreadPool::Reservation R;
  ASSERT_EQ(P.tryReserve(3, /*SpawnCap=*/8, R), 3);
  EXPECT_EQ(R.Count, 3);
  TeamProbeCtx Ctx;
  P.runTeam(R, &teamProbeBody, &Ctx);
  EXPECT_EQ(Ctx.Ran.load(), 4);
  EXPECT_EQ(Ctx.TidMask.load(), 0xfu); // Tids 0..3, each exactly once
  EXPECT_EQ(R.Count, 0) << "runTeam must consume the reservation";

  // Two live reservations never share a worker slot.
  ThreadPool::Reservation R1, R2;
  int64_t N1 = P.tryReserve(2, 8, R1);
  int64_t N2 = P.tryReserve(2, 8, R2);
  for (int64_t I = 0; I < N1; ++I)
    for (int64_t J = 0; J < N2; ++J)
      EXPECT_NE(R1.Slots[I], R2.Slots[J]);
  P.release(R1);
  P.release(R2);
  EXPECT_EQ(R1.Count, 0);
  EXPECT_EQ(R2.Count, 0);

  // A zero-worker reservation still runs the caller inline.
  ThreadPool::Reservation R0;
  EXPECT_EQ(P.tryReserve(0, 8, R0), 0);
  TeamProbeCtx Solo;
  P.runTeam(R0, &teamProbeBody, &Solo);
  EXPECT_EQ(Solo.Ran.load(), 1);
  EXPECT_EQ(Solo.TidMask.load(), 0x1u);
}

TEST(ThreadPool, ConcurrentTeamsOnDisjointWorkers) {
  ThreadPool &P = ThreadPool::global();
  const int NCallers = 4, Rounds = 32;
  std::atomic<int> TotalRan{0};
  std::atomic<bool> Bad{false};
  std::vector<std::thread> Callers;
  for (int C = 0; C != NCallers; ++C)
    Callers.emplace_back([&] {
      for (int R = 0; R != Rounds; ++R) {
        ThreadPool::Reservation Res;
        int64_t Got = P.tryReserve(2, /*SpawnCap=*/8, Res);
        if (Got < 0 || Got > 2)
          Bad.store(true, std::memory_order_relaxed);
        TeamProbeCtx Ctx;
        P.runTeam(Res, &teamProbeBody, &Ctx);
        if (Ctx.Ran.load() != Got + 1)
          Bad.store(true, std::memory_order_relaxed);
        TotalRan.fetch_add(Ctx.Ran.load(), std::memory_order_relaxed);
      }
    });
  for (std::thread &Th : Callers)
    Th.join();
  EXPECT_FALSE(Bad.load());
  EXPECT_GE(TotalRan.load(), NCallers * Rounds); // every caller always runs
}
