//===- PlanCacheHammerTest.cpp - Concurrent plan-cache correctness --------===//
//
// Eight caller threads hammer one Engine with a mix of shapes — every
// thread races on every shape, so cold keys see 8-way build races and hot
// keys stress the shared-lock fast path. The contract under test:
//
//   - exactly one plan build per distinct key (racing requesters wait for
//     the winner instead of duplicating work),
//   - every thread's result is bitwise identical to a single-threaded
//     reference through the same Engine configuration,
//   - no errors, no lost updates in the counters.
//
// The Engine itself runs with a team size of 1 (caller concurrency is the
// subject here, not the macro-kernel team). The whole file is TSan-clean:
// it rides in gemm_test, which the tsan_gemm_threads8 gate re-runs under
// ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "gemm/Engine.h"

#include "benchutil/Bench.h"
#include "gemm/Kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace gemm;

namespace {

struct Shape {
  int64_t M, N, K;
};

// Mixed hot/cold set: tile multiples and edge-heavy shapes, small enough
// that 8 threads x reps x shapes stays fast.
constexpr Shape Shapes[] = {
    {8, 12, 16}, {17, 23, 31}, {49, 50, 51}, {33, 65, 17},
    {64, 48, 32}, {5, 124, 77}, {40, 60, 20},
};
constexpr int NumThreads = 8;
constexpr int RepsPerThread = 6;

} // namespace

TEST(PlanCacheHammer, ExactlyOneBuildPerKeyAndBitwiseResults) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";

  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Cfg.Threads = 1; // caller concurrency only
  Engine E(Cfg);

  // Shared inputs, one expected output per shape (computed through an
  // identically configured single-threaded Engine).
  constexpr size_t NShapes = sizeof(Shapes) / sizeof(Shapes[0]);
  std::vector<float> A[NShapes], B[NShapes], Want[NShapes];
  {
    Engine Ref(Cfg);
    for (size_t I = 0; I != NShapes; ++I) {
      const Shape &S = Shapes[I];
      A[I].resize(S.M * S.K);
      B[I].resize(S.K * S.N);
      Want[I].assign(S.M * S.N, 0.25f);
      benchutil::fillRandom(A[I].data(), A[I].size(), 3 * I + 1);
      benchutil::fillRandom(B[I].data(), B[I].size(), 3 * I + 2);
      ASSERT_FALSE(static_cast<bool>(
          Ref.sgemm(S.M, S.N, S.K, 1.5f, A[I].data(), S.M, B[I].data(), S.K,
                    0.5f, Want[I].data(), S.M)));
    }
  }

  std::atomic<int> Mismatches{0}, Errors{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      // Stagger each thread's shape order so cold keys see racing
      // requesters rather than a convoy.
      for (int Rep = 0; Rep != RepsPerThread; ++Rep)
        for (size_t J = 0; J != NShapes; ++J) {
          size_t I = (J + static_cast<size_t>(T)) % NShapes;
          const Shape &S = Shapes[I];
          std::vector<float> C(S.M * S.N, 0.25f);
          exo::Error Err =
              E.sgemm(S.M, S.N, S.K, 1.5f, A[I].data(), S.M, B[I].data(),
                      S.K, 0.5f, C.data(), S.M);
          if (Err) {
            Errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (std::memcmp(C.data(), Want[I].data(),
                          C.size() * sizeof(float)) != 0)
            Mismatches.fetch_add(1, std::memory_order_relaxed);
        }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Errors.load(), 0);
  EXPECT_EQ(Mismatches.load(), 0);

  EngineStats St = E.stats();
  EXPECT_EQ(St.Builds, NShapes); // exactly one build per distinct key
  EXPECT_EQ(E.planCount(), NShapes);
  EXPECT_EQ(St.Hits + St.Misses,
            static_cast<uint64_t>(NumThreads) * RepsPerThread * NShapes);
}
