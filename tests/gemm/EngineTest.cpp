//===- EngineTest.cpp - Engine front door vs legacy GEMM ------------------===//
//
// The Engine's core guarantee: Engine::sgemm is a *dispatch* layer, not a
// different algorithm. For the same (provider, tile, plan) the result must
// be bitwise identical to the legacy blisGemmT front door — both run the
// shared detail::executeGemm, and the differential sweep here holds that
// across a broad shape set (edge-heavy shapes included), all four
// transpose combos, and team sizes 1 and 4. Also covers the plan cache's
// observable behavior (counters, cap eviction, cache-off mode) and the
// planner's measured-prior path.
//
//===----------------------------------------------------------------------===//

#include "gemm/Engine.h"

#include "benchutil/Bench.h"
#include "exo/jit/Jit.h"
#include "gemm/ExoProvider.h"
#include "gemm/Kernels.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace gemm;

namespace {

constexpr Trans Combos[][2] = {{Trans::None, Trans::None},
                               {Trans::None, Trans::Transpose},
                               {Trans::Transpose, Trans::None},
                               {Trans::Transpose, Trans::Transpose}};

/// The differential sweep's shapes: full-tile multiples, edge-heavy
/// remainders around the 8x12 tile, degenerate-adjacent slivers, and a few
/// larger blocks that cross mc/nc boundaries.
constexpr int64_t Shapes[][3] = {
    {1, 1, 1},     {1, 12, 4},    {8, 1, 8},     {1, 8, 8},
    {2, 2, 2},     {3, 5, 2},     {7, 11, 5},    {8, 12, 1},
    {8, 12, 16},   {13, 13, 13},  {16, 24, 32},  {17, 23, 31},
    {24, 36, 48},  {25, 37, 49},  {31, 47, 29},  {33, 65, 17},
    {40, 60, 20},  {41, 61, 21},  {49, 50, 51},  {57, 3, 19},
    {3, 57, 19},   {64, 48, 32},  {5, 124, 77},  {124, 5, 77},
    {61, 67, 71},  {80, 84, 88},  {81, 85, 89},  {96, 96, 96},
    {100, 62, 64}, {128, 12, 128}, {12, 128, 12}, {160, 96, 64},
};

/// op(A) is M x K: storage extents for one operand given its transpose.
void operandExtents(Trans T, int64_t Rows, int64_t Cols, int64_t &StoreRows,
                    int64_t &StoreCols) {
  StoreRows = T == Trans::None ? Rows : Cols;
  StoreCols = T == Trans::None ? Cols : Rows;
}

bool sameBits(const std::vector<float> &X, const std::vector<float> &Y) {
  return X.size() == Y.size() &&
         std::memcmp(X.data(), Y.data(), X.size() * sizeof(float)) == 0;
}

/// Runs the legacy and Engine front doors on identical inputs and expects
/// bitwise-identical C.
void expectBitwiseEqual(Engine &E, const GemmPlan &Plan, KernelProvider &P,
                       Trans TA, Trans TB, int64_t M, int64_t N, int64_t K) {
  int64_t ARows, ACols, BRows, BCols;
  operandExtents(TA, M, K, ARows, ACols);
  operandExtents(TB, K, N, BRows, BCols);
  const int64_t Lda = ARows + 2, Ldb = BRows + 1, Ldc = M + 3;

  std::vector<float> A(Lda * ACols), B(Ldb * BCols), C(Ldc * N);
  benchutil::fillRandom(A.data(), A.size(), 7 * M + N);
  benchutil::fillRandom(B.data(), B.size(), 11 * N + K);
  benchutil::fillRandom(C.data(), C.size(), 13 * K + M);

  std::vector<float> CLegacy = C, CEngine = C;
  exo::Error ELeg =
      blisGemmT(Plan, P, TA, TB, M, N, K, 1.25f, A.data(), Lda, B.data(),
                Ldb, 0.5f, CLegacy.data(), Ldc);
  exo::Error EEng = E.sgemm(TA, TB, M, N, K, 1.25f, A.data(), Lda, B.data(),
                            Ldb, 0.5f, CEngine.data(), Ldc);
  ASSERT_FALSE(static_cast<bool>(ELeg)) << ELeg.message();
  ASSERT_FALSE(static_cast<bool>(EEng)) << EEng.message();
  EXPECT_TRUE(sameBits(CLegacy, CEngine))
      << M << "x" << N << "x" << K << " TA=" << (TA == Trans::Transpose)
      << " TB=" << (TB == Trans::Transpose);
}

} // namespace

TEST(EngineDifferential, BitwiseMatchesLegacyBlisSweep) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  for (int64_t Threads : {int64_t{1}, int64_t{4}}) {
    EngineConfig Cfg;
    Cfg.Series = EngineSeries::Blis;
    Cfg.Threads = Threads;
    Engine E(Cfg);
    FixedProvider P(blisKernel(), "blis");
    GemmPlan Plan = GemmPlan::standard(P);
    Plan.Threads = Threads;
    for (const auto &S : Shapes)
      for (auto [TA, TB] : Combos)
        expectBitwiseEqual(E, Plan, P, TA, TB, S[0], S[1], S[2]);
  }
}

TEST(EngineDifferential, BitwiseMatchesLegacyExoEdgeShapes) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  if (!exo::jitAvailable())
    GTEST_SKIP() << "no working C compiler";
  // Generated kernels with specialized edges: the pinned 8x12 tile keeps
  // the Engine's provider memo and the legacy ExoProvider on the same
  // kernel family.
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Exo;
  Cfg.Isa = &exo::avx2Isa();
  Cfg.ForceMR = 8;
  Cfg.ForceNR = 12;
  Engine E(Cfg);
  ExoProvider P(8, 12, &exo::avx2Isa());
  GemmPlan Plan = GemmPlan::standard(P);
  for (const auto &S : {std::array<int64_t, 3>{49, 50, 51},
                        {100, 62, 64},
                        {17, 23, 31},
                        {8, 12, 16}})
    for (auto [TA, TB] : Combos)
      expectBitwiseEqual(E, Plan, P, TA, TB, S[0], S[1], S[2]);
}

TEST(EnginePlanCache, CountsHitsMissesAndBuilds) {
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Engine E(Cfg);
  std::vector<float> A(32 * 32), B(32 * 32), C(32 * 32, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);

  for (int Rep = 0; Rep != 5; ++Rep)
    ASSERT_FALSE(static_cast<bool>(
        E.sgemm(32, 32, 32, 1.f, A.data(), 32, B.data(), 32, 0.f, C.data(),
                32)));
  ASSERT_FALSE(static_cast<bool>(
      E.sgemm(16, 16, 16, 1.f, A.data(), 16, B.data(), 16, 0.f, C.data(),
              16)));

  EngineStats St = E.stats();
  EXPECT_EQ(St.Builds, 2u); // one per distinct shape
  EXPECT_EQ(St.Misses, 2u);
  EXPECT_EQ(St.Hits, 4u);
  EXPECT_EQ(E.planCount(), 2u);

  E.clearPlanCache();
  EXPECT_EQ(E.planCount(), 0u);
}

TEST(EnginePlanCache, CapEvictsLeastRecentlyUsed) {
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Cfg.PlanCacheCap = 3;
  Engine E(Cfg);
  std::vector<float> A(64 * 64), B(64 * 64), C(64 * 64, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);

  for (int64_t S : {8, 16, 24, 32, 40, 48})
    ASSERT_FALSE(static_cast<bool>(
        E.sgemm(S, S, S, 1.f, A.data(), S, B.data(), S, 0.f, C.data(), S)));

  EXPECT_LE(E.planCount(), 3u);
  EXPECT_GE(E.stats().Evictions, 3u);
}

TEST(EnginePlanCache, CapOneChurnsWithoutInvalidatingReturnedPlans) {
  // cap=1 makes every new build the sole resident: each insertion evicts
  // the previous plan while the new entry must survive its own eviction
  // pass (a returned plan read through the map after self-eviction is a
  // use-after-free; ASan-visible).
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Cfg.PlanCacheCap = 1;
  Engine E(Cfg);
  std::vector<float> A(64 * 64), B(64 * 64), C(64 * 64, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);

  for (int Round = 0; Round != 2; ++Round)
    for (int64_t S : {8, 16, 24, 32})
      ASSERT_FALSE(static_cast<bool>(E.sgemm(
          S, S, S, 1.f, A.data(), S, B.data(), S, 0.f, C.data(), S)));

  EXPECT_LE(E.planCount(), 1u);
  EXPECT_GE(E.stats().Evictions, 7u); // every later build displaces one
}

TEST(EnginePlanCache, DisabledCachePlansPerCall) {
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Cfg.PlanCache = 0;
  Engine E(Cfg);
  std::vector<float> A(16 * 16), B(16 * 16), C(16 * 16, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);

  for (int Rep = 0; Rep != 3; ++Rep)
    ASSERT_FALSE(static_cast<bool>(
        E.sgemm(16, 16, 16, 1.f, A.data(), 16, B.data(), 16, 0.f, C.data(),
                16)));
  EXPECT_EQ(E.planCount(), 0u);
  EXPECT_EQ(E.stats().Builds, 3u); // every call re-plans
}

TEST(EnginePlanner, ForcedTileWinsAndIsReported) {
  // Forcing only makes sense for planner-driven series (Exo/Auto); fixed
  // kernel series always report "fixed" because their kernel is the tile.
  if (!exo::jitAvailable())
    GTEST_SKIP() << "JIT unavailable";
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Exo;
  Cfg.Isa = &exo::avx2Isa();
  Cfg.ForceMR = 8;
  Cfg.ForceNR = 12;
  Engine E(Cfg);
  exo::Expected<PlanChoice> Choice =
      E.planFor(Trans::None, Trans::None, 64, 64, 64);
  ASSERT_TRUE(static_cast<bool>(Choice)) << Choice.takeError().message();
  EXPECT_EQ(Choice->MR, 8);
  EXPECT_EQ(Choice->NR, 12);
  EXPECT_STREQ(Choice->Source, "forced");

  // And the fixed-series counterpart: same tile, honestly labeled.
  EngineConfig BlisCfg;
  BlisCfg.Series = EngineSeries::Blis;
  Engine EB(BlisCfg);
  exo::Expected<PlanChoice> BlisChoice =
      EB.planFor(Trans::None, Trans::None, 64, 64, 64);
  ASSERT_TRUE(static_cast<bool>(BlisChoice))
      << BlisChoice.takeError().message();
  EXPECT_STREQ(BlisChoice->Source, "fixed");
}

TEST(EnginePlanner, MeasuredPriorWinsOnExactShape) {
  // A minimal BENCH_*.json carrying mr/nr counters: the 8x8 row measures
  // best for 64x48x32, so the prior must override the analytical pick.
  std::string Path = testing::TempDir() + "/engine_prior.json";
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs(R"({
  "bench": "dispatch",
  "rows": [
    {"label": "64", "series": "hot_plan", "metric": "gflops",
     "better": "higher", "value": 40.0, "m": 64, "n": 48, "k": 32,
     "counters": {"mr": 8, "nr": 12}},
    {"label": "64", "series": "hot_plan", "metric": "gflops",
     "better": "higher", "value": 55.0, "m": 64, "n": 48, "k": 32,
     "counters": {"mr": 8, "nr": 8}},
    {"label": "96", "series": "hot_plan", "metric": "gflops",
     "better": "higher", "value": 99.0, "m": 96, "n": 96, "k": 96,
     "counters": {"mr": 16, "nr": 12}}
  ]
})",
               F);
    std::fclose(F);
  }

  int64_t Mr = 0, Nr = 0;
  ASSERT_TRUE(lookupPlanPrior(Path, 64, 48, 32, Mr, Nr));
  EXPECT_EQ(Mr, 8);
  EXPECT_EQ(Nr, 8);
  EXPECT_FALSE(lookupPlanPrior(Path, 65, 48, 32, Mr, Nr)); // exact only

  PlanChoice Choice = choosePlan(64, 48, 32, nullptr, Path);
  EXPECT_STREQ(Choice.Source, "prior");
  EXPECT_EQ(Choice.MR, 8);
  EXPECT_EQ(Choice.NR, 8);

  // Shapes without a measured row fall back to the analytical model.
  PlanChoice Model = choosePlan(33, 65, 17, nullptr, Path);
  EXPECT_STREQ(Model.Source, "model");
}

TEST(EngineConfigTest, CustomSeriesRequiresProvider) {
  // Every entry point must report the misconfiguration as an Error; the
  // planFor/warm paths used to dereference the null provider in build().
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Custom;
  Engine E(Cfg);
  std::vector<float> C(4, 0.f);
  exo::Error Err =
      E.sgemm(2, 2, 2, 1.f, C.data(), 2, C.data(), 2, 0.f, C.data(), 2);
  EXPECT_TRUE(static_cast<bool>(Err));

  exo::Expected<PlanChoice> Choice =
      E.planFor(Trans::None, Trans::None, 4, 4, 4);
  ASSERT_FALSE(static_cast<bool>(Choice));
  EXPECT_TRUE(static_cast<bool>(Choice.takeError()));

  exo::Error WarmErr = E.warm(Trans::None, Trans::None, 4, 4, 4);
  EXPECT_TRUE(static_cast<bool>(WarmErr));
}

TEST(EngineConfigTest, StickyErrorEntriesStayBounded) {
  // Unbuildable shapes leave sticky error entries; those must count as
  // eviction victims, or probing many bad shapes pins the cache over cap
  // and disables eviction of real plans.
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Custom; // no provider: every build fails
  Cfg.PlanCacheCap = 2;
  Engine E(Cfg);
  for (int64_t S = 1; S <= 10; ++S) {
    exo::Expected<PlanChoice> Choice =
        E.planFor(Trans::None, Trans::None, S, S, S);
    ASSERT_FALSE(static_cast<bool>(Choice));
    (void)Choice.takeError();
  }
  EXPECT_GE(E.stats().Evictions, 8u); // 10 error entries, cap 2
}

TEST(EngineConfigTest, CustomProviderServes) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Custom;
  Cfg.Provider =
      std::make_shared<FixedProvider>(blisKernelPrefetch(), "custom-pf");
  Engine E(Cfg);
  FixedProvider P(blisKernelPrefetch(), "custom-pf");
  GemmPlan Plan = GemmPlan::standard(P);
  for (auto [TA, TB] : Combos)
    expectBitwiseEqual(E, Plan, P, TA, TB, 33, 29, 31);
}
