//===- GemmTest.cpp - Full macro-kernel GEMM vs reference -----------------===//

#include "gemm/Gemm.h"

#include "benchutil/Bench.h"
#include "exo/support/Str.h"
#include "gemm/ExoProvider.h"
#include "gemm/Kernels.h"
#include "gemm/RefGemm.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace gemm;

namespace {

enum class ProviderKind { Hand, Blis, BlisPrefetch, Exo };

struct Case {
  ProviderKind Kind;
  int64_t M, N, K;
  float Alpha = 1.0f, Beta = 1.0f;
};

std::string caseName(const testing::TestParamInfo<Case> &Info) {
  const Case &C = Info.param;
  const char *P = C.Kind == ProviderKind::Hand           ? "hand"
                  : C.Kind == ProviderKind::Blis         ? "blis"
                  : C.Kind == ProviderKind::BlisPrefetch ? "blispf"
                                                         : "exo";
  std::string Name = exo::strf(
      "%s_%lldx%lldx%lld_a%d_b%d", P, static_cast<long long>(C.M),
      static_cast<long long>(C.N), static_cast<long long>(C.K),
      static_cast<int>(C.Alpha * 10), static_cast<int>(C.Beta * 10));
  return exo::replaceAll(std::move(Name), "-", "m");
}

std::unique_ptr<KernelProvider> makeProvider(ProviderKind Kind) {
  switch (Kind) {
  case ProviderKind::Hand:
    return std::make_unique<FixedProvider>(handVectorKernel(), "hand");
  case ProviderKind::Blis:
    return std::make_unique<FixedProvider>(blisKernel(), "blis");
  case ProviderKind::BlisPrefetch:
    return std::make_unique<FixedProvider>(blisKernelPrefetch(), "blispf");
  case ProviderKind::Exo:
    return std::make_unique<ExoProvider>(8, 12, &exo::avx2Isa());
  }
  return nullptr;
}

class GemmProviderTest : public testing::TestWithParam<Case> {};

} // namespace

TEST_P(GemmProviderTest, MatchesReference) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  const Case &TC = GetParam();
  auto Provider = makeProvider(TC.Kind);

  // Leading dimensions slightly larger than the extents to catch stride
  // bugs.
  int64_t Lda = TC.M + 3, Ldb = TC.K + 2, Ldc = TC.M + 1;
  std::vector<float> A(Lda * TC.K), B(Ldb * TC.N), C(Ldc * TC.N);
  benchutil::fillRandom(A.data(), A.size(), 101);
  benchutil::fillRandom(B.data(), B.size(), 102);
  benchutil::fillRandom(C.data(), C.size(), 103);
  std::vector<float> Want = C;
  refSgemm(TC.M, TC.N, TC.K, TC.Alpha, A.data(), Lda, B.data(), Ldb, TC.Beta,
           Want.data(), Ldc);

  GemmPlan Plan = GemmPlan::standard(*Provider);
  exo::Error Err =
      blisGemm(Plan, *Provider, TC.M, TC.N, TC.K, TC.Alpha, A.data(), Lda,
               B.data(), Ldb, TC.Beta, C.data(), Ldc);
  ASSERT_FALSE(Err) << Err.message();

  float Tol = 1e-5f * static_cast<float>(TC.K + 1);
  for (int64_t J = 0; J < TC.N; ++J)
    for (int64_t I = 0; I < TC.M; ++I)
      ASSERT_NEAR(C[I + J * Ldc], Want[I + J * Ldc], Tol)
          << "(" << I << ", " << J << ")";
  // Padding between columns is untouched.
  for (int64_t J = 0; J < TC.N; ++J)
    for (int64_t I = TC.M; I < Ldc; ++I)
      ASSERT_EQ(C[I + J * Ldc], Want[I + J * Ldc]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProviderTest,
    testing::Values(
        Case{ProviderKind::Hand, 64, 48, 32}, //
        Case{ProviderKind::Blis, 64, 48, 32},
        Case{ProviderKind::BlisPrefetch, 64, 48, 32},
        Case{ProviderKind::Exo, 64, 48, 32},
        // Edge-rich shapes (not multiples of 8/12).
        Case{ProviderKind::Hand, 123, 77, 55},
        Case{ProviderKind::Blis, 123, 77, 55},
        Case{ProviderKind::Exo, 123, 77, 55},
        Case{ProviderKind::Exo, 49, 50, 47},
        Case{ProviderKind::Hand, 49, 50, 47},
        // Tiny and degenerate.
        Case{ProviderKind::Exo, 1, 1, 1},
        Case{ProviderKind::Hand, 1, 1, 1},
        Case{ProviderKind::Exo, 8, 12, 1},
        Case{ProviderKind::Exo, 7, 11, 600},
        // Larger-than-block sizes exercise all five loops.
        Case{ProviderKind::Exo, 300, 530, 600},
        Case{ProviderKind::BlisPrefetch, 300, 530, 600},
        // Alpha/beta handling.
        Case{ProviderKind::Exo, 100, 90, 80, 2.0f, 0.5f},
        Case{ProviderKind::Hand, 100, 90, 80, -1.0f, 0.0f},
        Case{ProviderKind::Blis, 100, 90, 80, 0.5f, 2.0f}),
    caseName);

TEST(GemmDriverTest, KZeroScalesByBeta) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  FixedProvider P(blisKernel(), "blis");
  std::vector<float> C(6 * 5, 2.0f);
  GemmPlan Plan = GemmPlan::standard(P);
  exo::Error Err = blisGemm(Plan, P, 6, 5, 0, 1.0f, nullptr, 6, nullptr, 1,
                            0.5f, C.data(), 6);
  ASSERT_FALSE(Err) << Err.message();
  for (float V : C)
    EXPECT_EQ(V, 1.0f);
}

TEST(GemmDriverTest, EmptyProblemsAreNoOps) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  FixedProvider P(blisKernel(), "blis");
  GemmPlan Plan = GemmPlan::standard(P);
  EXPECT_FALSE(blisGemm(Plan, P, 0, 5, 3, 1.0f, nullptr, 1, nullptr, 3, 1.0f,
                        nullptr, 1));
  EXPECT_FALSE(blisGemm(Plan, P, 5, 0, 3, 1.0f, nullptr, 5, nullptr, 3, 1.0f,
                        nullptr, 5));
  EXPECT_TRUE(blisGemm(Plan, P, -1, 5, 3, 1.0f, nullptr, 1, nullptr, 3, 1.0f,
                       nullptr, 1));
}

TEST(GemmDriverTest, StandardPlanMatchesProviderEdgeSupport) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  FixedProvider Fixed(blisKernel(), "blis");
  EXPECT_EQ(GemmPlan::standard(Fixed).PackMode, EdgePack::ZeroPad);
  ExoProvider Exo(8, 12, &exo::avx2Isa());
  EXPECT_EQ(GemmPlan::standard(Exo).PackMode, EdgePack::Tight);
}
