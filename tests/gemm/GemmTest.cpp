//===- GemmTest.cpp - Full macro-kernel GEMM vs reference -----------------===//

#include "gemm/Gemm.h"

#include "benchutil/Bench.h"
#include "exo/support/Str.h"
#include "gemm/ExoProvider.h"
#include "gemm/Kernels.h"
#include "gemm/RefGemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

using namespace gemm;

namespace {

enum class ProviderKind { Hand, Blis, BlisPrefetch, Exo };

struct Case {
  ProviderKind Kind;
  int64_t M, N, K;
  float Alpha = 1.0f, Beta = 1.0f;
};

std::string caseName(const testing::TestParamInfo<Case> &Info) {
  const Case &C = Info.param;
  const char *P = C.Kind == ProviderKind::Hand           ? "hand"
                  : C.Kind == ProviderKind::Blis         ? "blis"
                  : C.Kind == ProviderKind::BlisPrefetch ? "blispf"
                                                         : "exo";
  std::string Name = exo::strf(
      "%s_%lldx%lldx%lld_a%d_b%d", P, static_cast<long long>(C.M),
      static_cast<long long>(C.N), static_cast<long long>(C.K),
      static_cast<int>(C.Alpha * 10), static_cast<int>(C.Beta * 10));
  return exo::replaceAll(std::move(Name), "-", "m");
}

std::unique_ptr<KernelProvider> makeProvider(ProviderKind Kind) {
  switch (Kind) {
  case ProviderKind::Hand:
    return std::make_unique<FixedProvider>(handVectorKernel(), "hand");
  case ProviderKind::Blis:
    return std::make_unique<FixedProvider>(blisKernel(), "blis");
  case ProviderKind::BlisPrefetch:
    return std::make_unique<FixedProvider>(blisKernelPrefetch(), "blispf");
  case ProviderKind::Exo:
    return std::make_unique<ExoProvider>(8, 12, &exo::avx2Isa());
  }
  return nullptr;
}

class GemmProviderTest : public testing::TestWithParam<Case> {};

} // namespace

TEST_P(GemmProviderTest, MatchesReference) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  const Case &TC = GetParam();
  auto Provider = makeProvider(TC.Kind);

  // Leading dimensions slightly larger than the extents to catch stride
  // bugs.
  int64_t Lda = TC.M + 3, Ldb = TC.K + 2, Ldc = TC.M + 1;
  std::vector<float> A(Lda * TC.K), B(Ldb * TC.N), C(Ldc * TC.N);
  benchutil::fillRandom(A.data(), A.size(), 101);
  benchutil::fillRandom(B.data(), B.size(), 102);
  benchutil::fillRandom(C.data(), C.size(), 103);
  std::vector<float> Want = C;
  refSgemm(TC.M, TC.N, TC.K, TC.Alpha, A.data(), Lda, B.data(), Ldb, TC.Beta,
           Want.data(), Ldc);

  GemmPlan Plan = GemmPlan::standard(*Provider);
  exo::Error Err =
      blisGemm(Plan, *Provider, TC.M, TC.N, TC.K, TC.Alpha, A.data(), Lda,
               B.data(), Ldb, TC.Beta, C.data(), Ldc);
  ASSERT_FALSE(Err) << Err.message();

  float Tol = 1e-5f * static_cast<float>(TC.K + 1);
  for (int64_t J = 0; J < TC.N; ++J)
    for (int64_t I = 0; I < TC.M; ++I)
      ASSERT_NEAR(C[I + J * Ldc], Want[I + J * Ldc], Tol)
          << "(" << I << ", " << J << ")";
  // Padding between columns is untouched.
  for (int64_t J = 0; J < TC.N; ++J)
    for (int64_t I = TC.M; I < Ldc; ++I)
      ASSERT_EQ(C[I + J * Ldc], Want[I + J * Ldc]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProviderTest,
    testing::Values(
        Case{ProviderKind::Hand, 64, 48, 32}, //
        Case{ProviderKind::Blis, 64, 48, 32},
        Case{ProviderKind::BlisPrefetch, 64, 48, 32},
        Case{ProviderKind::Exo, 64, 48, 32},
        // Edge-rich shapes (not multiples of 8/12).
        Case{ProviderKind::Hand, 123, 77, 55},
        Case{ProviderKind::Blis, 123, 77, 55},
        Case{ProviderKind::Exo, 123, 77, 55},
        Case{ProviderKind::Exo, 49, 50, 47},
        Case{ProviderKind::Hand, 49, 50, 47},
        // Tiny and degenerate.
        Case{ProviderKind::Exo, 1, 1, 1},
        Case{ProviderKind::Hand, 1, 1, 1},
        Case{ProviderKind::Exo, 8, 12, 1},
        Case{ProviderKind::Exo, 7, 11, 600},
        // Larger-than-block sizes exercise all five loops.
        Case{ProviderKind::Exo, 300, 530, 600},
        Case{ProviderKind::BlisPrefetch, 300, 530, 600},
        // Alpha/beta handling.
        Case{ProviderKind::Exo, 100, 90, 80, 2.0f, 0.5f},
        Case{ProviderKind::Hand, 100, 90, 80, -1.0f, 0.0f},
        Case{ProviderKind::Blis, 100, 90, 80, 0.5f, 2.0f}),
    caseName);

namespace {

/// Seeds \p C with the NaN/Inf garbage a pooled, uninitialized serving
/// buffer can contain.
void fillGarbage(std::vector<float> &C) {
  for (size_t I = 0; I < C.size(); ++I)
    C[I] = I % 3 == 0   ? std::numeric_limits<float>::quiet_NaN()
           : I % 3 == 1 ? std::numeric_limits<float>::infinity()
                        : -std::numeric_limits<float>::infinity();
}

} // namespace

// The classic BLAS beta-zero rule: beta == 0 overwrites C without reading
// it, so NaN/Inf in an uninitialized output buffer never propagates. Edge-
// rich shape (not multiples of 8/12), all four transpose combinations.
TEST(GemmDriverTest, BetaZeroOverwritesNaN) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  const int64_t M = 61, N = 45, K = 38;
  for (Trans TA : {Trans::None, Trans::Transpose}) {
    for (Trans TB : {Trans::None, Trans::Transpose}) {
      int64_t ARows = TA == Trans::None ? M : K;
      int64_t BRows = TB == Trans::None ? K : N;
      std::vector<float> A(M * K), B(K * N), C(M * N);
      benchutil::fillRandom(A.data(), A.size(), 7);
      benchutil::fillRandom(B.data(), B.size(), 8);
      fillGarbage(C);
      // The oracle runs over the same garbage-seeded C: it must agree
      // that beta == 0 never reads C, or it would mask the bug.
      std::vector<float> AEff(M * K), BEff(K * N), Want = C;
      for (int64_t P = 0; P < K; ++P)
        for (int64_t I = 0; I < M; ++I)
          AEff[I + P * M] =
              TA == Trans::None ? A[I + P * ARows] : A[P + I * ARows];
      for (int64_t J = 0; J < N; ++J)
        for (int64_t P = 0; P < K; ++P)
          BEff[P + J * K] =
              TB == Trans::None ? B[P + J * BRows] : B[J + P * BRows];
      refSgemm(M, N, K, 1.25f, AEff.data(), M, BEff.data(), K, 0.0f,
               Want.data(), M);

      ExoProvider P(8, 12, &exo::avx2Isa());
      GemmPlan Plan = GemmPlan::standard(P);
      exo::Error Err = blisGemmT(Plan, P, TA, TB, M, N, K, 1.25f, A.data(),
                                 ARows, B.data(), BRows, 0.0f, C.data(), M);
      ASSERT_FALSE(Err) << Err.message();
      for (int64_t I = 0; I < M * N; ++I) {
        ASSERT_TRUE(std::isfinite(C[I]))
            << "NaN/Inf leaked at " << I << " (TA=" << static_cast<int>(TA)
            << " TB=" << static_cast<int>(TB) << ")";
        ASSERT_NEAR(C[I], Want[I], 1e-4f * static_cast<float>(K));
      }
    }
  }
}

// Same rule on the monolithic-kernel (ZeroPad scratch) path.
TEST(GemmDriverTest, BetaZeroOverwritesNaNMonolithic) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  const int64_t M = 123, N = 77, K = 55;
  FixedProvider P(blisKernel(), "blis");
  std::vector<float> A(M * K), B(K * N), C(M * N);
  benchutil::fillRandom(A.data(), A.size(), 9);
  benchutil::fillRandom(B.data(), B.size(), 10);
  fillGarbage(C);
  std::vector<float> Want = C;
  refSgemm(M, N, K, -0.5f, A.data(), M, B.data(), K, 0.0f, Want.data(), M);
  GemmPlan Plan = GemmPlan::standard(P);
  exo::Error Err = blisGemm(Plan, P, M, N, K, -0.5f, A.data(), M, B.data(),
                            K, 0.0f, C.data(), M);
  ASSERT_FALSE(Err) << Err.message();
  for (int64_t I = 0; I < M * N; ++I) {
    ASSERT_TRUE(std::isfinite(C[I])) << "NaN/Inf leaked at " << I;
    ASSERT_NEAR(C[I], Want[I], 1e-4f * static_cast<float>(K));
  }
}

// The K == 0 degenerate path must obey the same overwrite rule.
TEST(GemmDriverTest, KZeroBetaZeroOverwritesNaN) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  FixedProvider P(blisKernel(), "blis");
  std::vector<float> C(6 * 5);
  fillGarbage(C);
  GemmPlan Plan = GemmPlan::standard(P);
  exo::Error Err = blisGemm(Plan, P, 6, 5, 0, 1.0f, nullptr, 6, nullptr, 1,
                            0.0f, C.data(), 6);
  ASSERT_FALSE(Err) << Err.message();
  for (float V : C)
    EXPECT_EQ(V, 0.0f);
}

TEST(GemmDriverTest, KZeroScalesByBeta) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  FixedProvider P(blisKernel(), "blis");
  std::vector<float> C(6 * 5, 2.0f);
  GemmPlan Plan = GemmPlan::standard(P);
  exo::Error Err = blisGemm(Plan, P, 6, 5, 0, 1.0f, nullptr, 6, nullptr, 1,
                            0.5f, C.data(), 6);
  ASSERT_FALSE(Err) << Err.message();
  for (float V : C)
    EXPECT_EQ(V, 1.0f);
}

TEST(GemmDriverTest, EmptyProblemsAreNoOps) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  FixedProvider P(blisKernel(), "blis");
  GemmPlan Plan = GemmPlan::standard(P);
  EXPECT_FALSE(blisGemm(Plan, P, 0, 5, 3, 1.0f, nullptr, 1, nullptr, 3, 1.0f,
                        nullptr, 1));
  EXPECT_FALSE(blisGemm(Plan, P, 5, 0, 3, 1.0f, nullptr, 5, nullptr, 3, 1.0f,
                        nullptr, 5));
  EXPECT_TRUE(blisGemm(Plan, P, -1, 5, 3, 1.0f, nullptr, 1, nullptr, 3, 1.0f,
                       nullptr, 1));
}

TEST(GemmDriverTest, StandardPlanMatchesProviderEdgeSupport) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  FixedProvider Fixed(blisKernel(), "blis");
  EXPECT_EQ(GemmPlan::standard(Fixed).PackMode, EdgePack::ZeroPad);
  ExoProvider Exo(8, 12, &exo::avx2Isa());
  EXPECT_EQ(GemmPlan::standard(Exo).PackMode, EdgePack::Tight);
}

namespace {

/// Wraps a provider but denies one edge width — a *partial* edge family,
/// as a provider whose kernel family was only partly warmed would present.
class PartialEdgeProvider final : public KernelProvider {
public:
  PartialEdgeProvider(KernelProvider &Inner, int64_t DenyNr)
      : Inner(Inner), DenyNr(DenyNr) {}
  MicroKernel main() override { return Inner.main(); }
  std::optional<MicroKernel> edge(int64_t MrEff, int64_t NrEff) override {
    if (NrEff == DenyNr)
      return std::nullopt;
    return Inner.edge(MrEff, NrEff);
  }
  const char *name() const override { return "partial-edge"; }

private:
  KernelProvider &Inner;
  int64_t DenyNr;
};

} // namespace

// A Tight-mode plan over a provider missing one edge width used to error
// mid-computation; now the affected strips degrade to the monolithic
// kernel over a re-padded panel and the result still matches the oracle.
TEST(GemmDriverTest, PartialEdgeFamilyDegradesGracefully) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  ExoProvider Exo(8, 12, &exo::avx2Isa());
  PartialEdgeProvider P(Exo, /*DenyNr=*/3);
  GemmPlan Plan = GemmPlan::standard(P);
  ASSERT_EQ(Plan.PackMode, EdgePack::Tight); // nr=1 probe still succeeds

  const int64_t M = 20, N = 27, K = 33; // N % 12 == 3: the denied width
  std::vector<float> A(M * K), B(K * N), C(M * N, 0.5f);
  benchutil::fillRandom(A.data(), A.size(), 21);
  benchutil::fillRandom(B.data(), B.size(), 22);
  std::vector<float> Want = C;
  refSgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, Want.data(), M);
  exo::Error Err = blisGemm(Plan, P, M, N, K, 1.0f, A.data(), M, B.data(),
                            K, 1.0f, C.data(), M);
  ASSERT_FALSE(Err) << Err.message();
  float D = benchutil::maxAbsDiff(C.data(), Want.data(), C.size());
  EXPECT_LT(D, 1e-3f);
}

// The parallel macro-kernel partitions work but never reorders or splits
// any per-element accumulation chain, so every thread count must produce
// bitwise-identical output. Sweep shapes that exercise all five loops,
// edge tiles, and more threads than ic blocks (forcing jr-level teams).
TEST(GemmDriverTest, ThreadedMatchesSingleThreadBitwise) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  struct Shape {
    int64_t M, N, K;
  };
  const Shape Shapes[] = {
      {64, 48, 32}, {123, 77, 55}, {49, 50, 47}, {300, 530, 600}, {8, 12, 1},
  };
  for (ProviderKind Kind : {ProviderKind::Exo, ProviderKind::Blis}) {
    auto Provider = makeProvider(Kind);
    GemmPlan Plan = GemmPlan::standard(*Provider);
    for (const Shape &S : Shapes) {
      std::vector<float> A(S.M * S.K), B(S.K * S.N), CBase(S.M * S.N);
      benchutil::fillRandom(A.data(), A.size(), 31);
      benchutil::fillRandom(B.data(), B.size(), 32);
      benchutil::fillRandom(CBase.data(), CBase.size(), 33);

      std::vector<float> C1 = CBase;
      Plan.Threads = 1;
      ASSERT_FALSE(blisGemm(Plan, *Provider, S.M, S.N, S.K, 1.5f, A.data(),
                            S.M, B.data(), S.K, 0.5f, C1.data(), S.M));
      for (int64_t T : {2, 3, 8}) {
        std::vector<float> CT = CBase;
        Plan.Threads = T;
        ASSERT_FALSE(blisGemm(Plan, *Provider, S.M, S.N, S.K, 1.5f,
                              A.data(), S.M, B.data(), S.K, 0.5f, CT.data(),
                              S.M));
        EXPECT_EQ(0, std::memcmp(C1.data(), CT.data(),
                                 C1.size() * sizeof(float)))
            << "threads=" << T << " shape " << S.M << "x" << S.N << "x"
            << S.K << " provider " << Provider->name();
      }
      Plan.Threads = 0;
    }
  }
}

// Beta == 0 + garbage C stays clean on the threaded path too (the pre-
// scale is partitioned across the team).
TEST(GemmDriverTest, ThreadedBetaZeroOverwritesNaN) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  const int64_t M = 123, N = 77, K = 55;
  ExoProvider P(8, 12, &exo::avx2Isa());
  GemmPlan Plan = GemmPlan::standard(P);
  Plan.Threads = 4;
  std::vector<float> A(M * K), B(K * N), C(M * N);
  benchutil::fillRandom(A.data(), A.size(), 41);
  benchutil::fillRandom(B.data(), B.size(), 42);
  fillGarbage(C);
  std::vector<float> Want = C;
  refSgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f, Want.data(), M);
  ASSERT_FALSE(blisGemm(Plan, P, M, N, K, 1.0f, A.data(), M, B.data(), K,
                        0.0f, C.data(), M));
  for (int64_t I = 0; I < M * N; ++I) {
    ASSERT_TRUE(std::isfinite(C[I])) << "NaN/Inf leaked at " << I;
    ASSERT_NEAR(C[I], Want[I], 1e-4f * static_cast<float>(K));
  }
}

// One provider instance serving concurrent GEMM calls from independent
// caller threads: the provider's shape memo is locked, the kernel service
// is internally synchronized — no torn kernels, correct results.
TEST(GemmDriverTest, ProviderSharedAcrossCallerThreads) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  const int64_t M = 49, N = 50, K = 47;
  ExoProvider P(8, 12, &exo::avx2Isa());
  GemmPlan Plan = GemmPlan::standard(P);
  std::vector<float> A(M * K), B(K * N), Want(M * N, 1.0f);
  benchutil::fillRandom(A.data(), A.size(), 51);
  benchutil::fillRandom(B.data(), B.size(), 52);
  refSgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f, Want.data(), M);

  constexpr int NCallers = 4;
  std::vector<std::vector<float>> Cs(NCallers);
  std::vector<exo::Error> Errs(NCallers);
  {
    std::vector<std::thread> Callers;
    for (int I = 0; I < NCallers; ++I)
      Callers.emplace_back([&, I] {
        Cs[I].assign(M * N, 1.0f);
        Errs[I] = blisGemm(Plan, P, M, N, K, 1.0f, A.data(), M, B.data(), K,
                           1.0f, Cs[I].data(), M);
      });
    for (std::thread &Th : Callers)
      Th.join();
  }
  for (int I = 0; I < NCallers; ++I) {
    ASSERT_FALSE(Errs[I]) << Errs[I].message();
    EXPECT_LT(benchutil::maxAbsDiff(Cs[I].data(), Want.data(), Want.size()),
              1e-3f);
  }
}
