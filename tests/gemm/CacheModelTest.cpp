//===- CacheModelTest.cpp - Analytical blocking model ---------------------===//

#include "gemm/CacheModel.h"

#include <gtest/gtest.h>

using namespace gemm;

namespace {
int64_t waysFor(int64_t Bytes, const CacheLevel &L) {
  return (Bytes + L.waySize() - 1) / L.waySize();
}
} // namespace

TEST(CacheModelTest, CarmelConfig) {
  CacheConfig C = CacheConfig::carmel();
  EXPECT_EQ(C.L1.SizeBytes, 64 * 1024);
  EXPECT_EQ(C.L1.Assoc, 4);
  EXPECT_TRUE(C.L3.present());
}

TEST(CacheModelTest, HostDetectionGivesSaneValues) {
  CacheConfig C = CacheConfig::host();
  EXPECT_TRUE(C.L1.present());
  EXPECT_GE(C.L1.SizeBytes, 8 * 1024);
  EXPECT_LE(C.L1.SizeBytes, 512 * 1024);
  EXPECT_TRUE(C.L2.present());
  EXPECT_FALSE(C.describe().empty());
}

TEST(CacheModelTest, BlocksRespectCacheConstraints) {
  CacheConfig C = CacheConfig::carmel();
  BlockSizes B = analyticalBlockSizes(C, 8, 12, sizeof(float));
  ASSERT_GT(B.KC, 0);
  ASSERT_GT(B.MC, 0);
  ASSERT_GT(B.NC, 0);

  // The L1 constraint the model maximizes under.
  int64_t Ways = waysFor(8 * B.KC * 4, C.L1) + waysFor(B.KC * 12 * 4, C.L1) +
                 1;
  EXPECT_LE(Ways, C.L1.Assoc);
  // Growing kc by one step must violate it (maximality).
  int64_t KcNext = B.KC + 4;
  int64_t WaysNext = waysFor(8 * KcNext * 4, C.L1) +
                     waysFor(KcNext * 12 * 4, C.L1) + 1;
  EXPECT_GT(WaysNext, C.L1.Assoc);

  // Packed A block fits L2 with the reserved ways.
  EXPECT_LE(waysFor(B.MC * B.KC * 4, C.L2) + 2, C.L2.Assoc);
}

TEST(CacheModelTest, BlocksAreMultiplesOfTileSizes) {
  BlockSizes B =
      analyticalBlockSizes(CacheConfig::carmel(), 8, 12, sizeof(float));
  EXPECT_EQ(B.MC % 8, 0);
  EXPECT_EQ(B.NC % 12, 0);
  EXPECT_EQ(B.KC % 4, 0);
}

TEST(CacheModelTest, WiderKernelShrinksKc) {
  CacheConfig C = CacheConfig::carmel();
  BlockSizes Narrow = analyticalBlockSizes(C, 8, 4, sizeof(float));
  BlockSizes Wide = analyticalBlockSizes(C, 8, 24, sizeof(float));
  EXPECT_GE(Narrow.KC, Wide.KC);
}

TEST(CacheModelTest, DoubleElementsShrinkBlocks) {
  CacheConfig C = CacheConfig::carmel();
  BlockSizes F32 = analyticalBlockSizes(C, 8, 12, 4);
  BlockSizes F64 = analyticalBlockSizes(C, 8, 12, 8);
  EXPECT_GE(F32.KC, F64.KC);
  EXPECT_GE(F32.MC, F64.MC);
}

TEST(CacheModelTest, NcCappedForHugeL3) {
  CacheConfig C = CacheConfig::carmel();
  C.L3.SizeBytes = 512ll * 1024 * 1024;
  BlockSizes B = analyticalBlockSizes(C, 8, 12, 4);
  EXPECT_LE(B.NC, 8196);
}

TEST(CacheModelTest, FixedBlocking) {
  BlockSizes B = fixedBlockSizes(8, 12);
  EXPECT_EQ(B.MC % 8, 0);
  EXPECT_EQ(B.NC % 12, 0);
  EXPECT_EQ(B.KC, 256);
}
