//===- KernelsTest.cpp - Hand-written baseline kernels --------------------===//

#include "gemm/Kernels.h"

#include "benchutil/Bench.h"

#include <gtest/gtest.h>

#include <vector>

using namespace gemm;

namespace {

class BaselineKernelTest : public testing::TestWithParam<MicroKernel> {};

} // namespace

TEST_P(BaselineKernelTest, MatchesNaiveUpdate) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  MicroKernel K = GetParam();
  ASSERT_EQ(K.MR, 8);
  ASSERT_EQ(K.NR, 12);

  const int64_t Kc = 23, Ldc = 11;
  std::vector<float> Ac(Kc * K.MR), Bc(Kc * K.NR);
  std::vector<float> C((K.NR - 1) * Ldc + K.MR, 0.25f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 7);
  benchutil::fillRandom(Bc.data(), Bc.size(), 8);
  std::vector<float> Want = C;
  for (int64_t J = 0; J < K.NR; ++J)
    for (int64_t I = 0; I < K.MR; ++I)
      for (int64_t P = 0; P < Kc; ++P)
        Want[J * Ldc + I] += Ac[P * K.MR + I] * Bc[P * K.NR + J];

  K.Fn(Kc, Ldc, Ac.data(), Bc.data(), C.data());
  for (size_t I = 0; I != C.size(); ++I)
    EXPECT_NEAR(C[I], Want[I], 1e-4f) << K.Name << " @" << I;
}

TEST_P(BaselineKernelTest, KcZeroIsIdentity) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  MicroKernel K = GetParam();
  std::vector<float> Ac(8), Bc(12), C(12 * 8, 3.0f), Want = C;
  K.Fn(0, 8, Ac.data(), Bc.data(), C.data());
  EXPECT_EQ(C, Want);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineKernelTest,
                         testing::Values(handVectorKernel(), blisKernel(),
                                         blisKernelPrefetch()),
                         [](const testing::TestParamInfo<MicroKernel> &I) {
                           switch (I.index) {
                           case 0:
                             return std::string("hand_vector");
                           case 1:
                             return std::string("blis_style");
                           default:
                             return std::string("blis_prefetch");
                           }
                         });
