//===- BenchUtilTest.cpp - benchutil helpers -------------------------------===//

#include "benchutil/Bench.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace benchutil;

TEST(BenchUtilTest, FillRandomIsDeterministicAndBounded) {
  std::vector<float> A(1000), B(1000);
  fillRandom(A.data(), A.size(), 42);
  fillRandom(B.data(), B.size(), 42);
  EXPECT_EQ(A, B);
  for (float V : A) {
    EXPECT_GE(V, -1.0f);
    EXPECT_LE(V, 1.0f);
  }
  fillRandom(B.data(), B.size(), 43);
  EXPECT_NE(A, B);
}

TEST(BenchUtilTest, MaxAbsDiff) {
  std::vector<float> A{1, 2, 3}, B{1, 2.5f, 2};
  EXPECT_FLOAT_EQ(maxAbsDiff(A.data(), B.data(), 3), 1.0f);
  EXPECT_FLOAT_EQ(maxAbsDiff(A.data(), A.data(), 3), 0.0f);
}

TEST(BenchUtilTest, GflopsMath) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1e9, 0.5), 2.0);
}

TEST(BenchUtilTest, TimeItRunsAtLeastOnce) {
  int Calls = 0;
  double Secs = timeIt([&] { ++Calls; }, 0.0);
  EXPECT_GE(Calls, 2) << "warm-up + one measured run";
  EXPECT_GE(Secs, 0.0);
}

TEST(BenchUtilTest, OptionsParse) {
  const char *Argv[] = {"bench", "--big", "--seconds", "1.5", "--csv"};
  BenchOptions O =
      BenchOptions::parse(5, const_cast<char **>(Argv));
  EXPECT_TRUE(O.Big);
  EXPECT_TRUE(O.Csv);
  EXPECT_DOUBLE_EQ(O.Seconds, 1.5);

  const char *Argv2[] = {"bench"};
  BenchOptions D = BenchOptions::parse(1, const_cast<char **>(Argv2));
  EXPECT_FALSE(D.Big);
  EXPECT_GT(D.Seconds, 0.0);
}

TEST(BenchUtilTest, TableRendersAllRows) {
  testing::internal::CaptureStdout();
  Table T("unit_test_table", {"a", "b"}, /*Csv=*/true);
  T.addRow({"x", "1"});
  T.addRow("y", {2.5});
  T.print();
  std::string Out = testing::internal::GetCapturedStdout();
  EXPECT_NE(Out.find("unit_test_table"), std::string::npos);
  EXPECT_NE(Out.find("2.50"), std::string::npos);
  EXPECT_NE(Out.find("CSV,unit_test_table,x,1"), std::string::npos);
}
