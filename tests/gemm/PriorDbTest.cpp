//===- PriorDbTest.cpp - Persistent tuning-prior database -----------------===//
//
// Mirrors DiskCacheTest for the planner's prior database: round-trip,
// machine-key rejection, corrupt-record quarantine, pruning, and a
// concurrent reader/writer hammer (which the TSan gate re-runs
// instrumented).
//
//===----------------------------------------------------------------------===//

#include "gemm/PriorDb.h"

#include "JitCacheTestEnv.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <utime.h>
#include <vector>

using namespace gemm;

namespace {

std::string makeTempDir() { return exotest::makeTempDir("exo-pdbtest"); }

/// A valid record for this machine (Machine/Class filled by store()).
PriorRecord sampleRecord(int64_t M, int64_t N, int64_t K) {
  PriorRecord R;
  R.M = M;
  R.N = N;
  R.K = K;
  R.Isa = "avx2";
  R.MR = 16;
  R.NR = 8;
  R.MC = 256;
  R.NC = 4096;
  R.KC = 512;
  R.UnrollCompute = true;
  R.Fma = "bcst";
  R.Threads = 1;
  R.TunedGflops = 50.5;
  R.ModelMR = 8;
  R.ModelNR = 12;
  R.ModelGflops = 44.25;
  return R;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

TEST(PriorMachineKeyTest, StableAndNonZero) {
  uint64_t K1 = priorMachineKey();
  EXPECT_NE(K1, 0u);
  EXPECT_EQ(priorMachineKey(), K1); // computed once, stable in-process
}

TEST(PriorShapeClassTest, RoundsUpToPowerOfTwoBuckets) {
  EXPECT_EQ(priorShapeClass(100, 100, 2000), "g128x128x2048");
  EXPECT_EQ(priorShapeClass(128, 128, 2048), "g128x128x2048");
  EXPECT_EQ(priorShapeClass(1, 1, 1), "g1x1x1");
  // Degenerate dims clamp rather than underflow.
  EXPECT_EQ(priorShapeClass(0, -5, 3), "g1x1x4");
}

TEST(PriorRecordTest, FormatParseRoundTripsEveryField) {
  // Property-style: a spread of records, including awkward values, must
  // survive format -> parse bit-exactly in every field.
  std::vector<PriorRecord> Recs;
  for (int I = 0; I < 8; ++I) {
    PriorRecord R = sampleRecord(64 + I * 13, 96 + I * 7, 128 + I * 29);
    R.Machine = 0x0123456789abcdefull + static_cast<uint64_t>(I);
    R.Class = priorShapeClass(R.M, R.N, R.K);
    R.MR = 4 + I;
    R.NR = 4 + 2 * I;
    R.UnrollCompute = I % 2 != 0;
    R.Prefetch = I * 64;
    R.Threads = 1 + I;
    R.TunedGflops = 1.0 / 3.0 + I * 0.125; // needs full double fidelity
    R.ModelGflops = 1e-3 * I;
    Recs.push_back(R);
  }
  for (const PriorRecord &R : Recs) {
    exo::Expected<PriorRecord> P = parsePriorRecord(formatPriorRecord(R));
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_EQ(P->Version, R.Version);
    EXPECT_EQ(P->Machine, R.Machine);
    EXPECT_EQ(P->M, R.M);
    EXPECT_EQ(P->N, R.N);
    EXPECT_EQ(P->K, R.K);
    EXPECT_EQ(P->Class, R.Class);
    EXPECT_EQ(P->Isa, R.Isa);
    EXPECT_EQ(P->MR, R.MR);
    EXPECT_EQ(P->NR, R.NR);
    EXPECT_EQ(P->MC, R.MC);
    EXPECT_EQ(P->NC, R.NC);
    EXPECT_EQ(P->KC, R.KC);
    EXPECT_EQ(P->UnrollCompute, R.UnrollCompute);
    EXPECT_EQ(P->Prefetch, R.Prefetch);
    EXPECT_EQ(P->Fma, R.Fma);
    EXPECT_EQ(P->Threads, R.Threads);
    EXPECT_DOUBLE_EQ(P->TunedGflops, R.TunedGflops);
    EXPECT_EQ(P->ModelMR, R.ModelMR);
    EXPECT_EQ(P->ModelNR, R.ModelNR);
    EXPECT_DOUBLE_EQ(P->ModelGflops, R.ModelGflops);
    EXPECT_DOUBLE_EQ(P->margin(), R.margin());
  }
}

TEST(PriorRecordTest, ParseRejectsTruncatedGarbageAndWrongVersion) {
  PriorRecord R = sampleRecord(64, 64, 64);
  R.Machine = priorMachineKey();
  std::string Good = formatPriorRecord(R);
  ASSERT_TRUE(static_cast<bool>(parsePriorRecord(Good)));

  // Truncation anywhere must fail, never default missing fields.
  for (size_t Cut : {size_t{0}, Good.size() / 4, Good.size() / 2,
                     Good.size() - 20})
    EXPECT_FALSE(static_cast<bool>(parsePriorRecord(Good.substr(0, Cut))))
        << "cut at " << Cut;

  EXPECT_FALSE(static_cast<bool>(parsePriorRecord("not a record at all")));
  // Checked scalar parses: trailing garbage and out-of-range both fail.
  EXPECT_FALSE(static_cast<bool>(
      parsePriorRecord(Good + "mr=8banana\n")));
  EXPECT_FALSE(static_cast<bool>(
      parsePriorRecord(Good + "tuned_gflops=1e99999\n")));
  // A version bump quarantines rather than half-reads.
  std::string Bumped = Good;
  Bumped.replace(Bumped.find("version=1"), 9, "version=9");
  EXPECT_FALSE(static_cast<bool>(parsePriorRecord(Bumped)));
  // Unknown keys are forward-compatible and skipped.
  EXPECT_TRUE(static_cast<bool>(
      parsePriorRecord(Good + "future_knob=42\n")));
}

TEST(PriorDbTest, StoreLookupExactAndClassFallback) {
  PriorDb Db(makeTempDir());
  ASSERT_TRUE(Db.enabled());

  PriorRecord R = sampleRecord(100, 100, 2000);
  ASSERT_FALSE(static_cast<bool>(Db.store(R))) << "store must succeed";

  bool Exact = false;
  std::optional<PriorRecord> Hit = Db.lookup(100, 100, 2000, &Exact);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_TRUE(Exact);
  EXPECT_EQ(Hit->MR, 16);
  EXPECT_EQ(Hit->NR, 8);
  EXPECT_EQ(Hit->Machine, priorMachineKey()); // store filled the default
  EXPECT_EQ(Hit->Class, "g128x128x2048");

  // A different shape in the same power-of-two class falls back to the
  // class representative.
  Hit = Db.lookup(97, 120, 1500, &Exact);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_FALSE(Exact);
  EXPECT_EQ(Hit->MR, 16);

  // A shape in another class misses entirely.
  EXPECT_FALSE(Db.lookup(8, 8, 8).has_value());

  // The class representative only upgrades: a slower record for the same
  // class must not displace the incumbent.
  PriorRecord Slow = sampleRecord(120, 110, 1800);
  Slow.MR = 8;
  Slow.NR = 4;
  Slow.TunedGflops = 10.0;
  ASSERT_FALSE(static_cast<bool>(Db.store(Slow)));
  Hit = Db.lookup(97, 120, 1500, &Exact);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->MR, 16) << "slower record displaced the class best";
}

TEST(PriorDbTest, StoreValidatesRecords) {
  PriorDb Db(makeTempDir());
  PriorRecord Bad = sampleRecord(64, 64, 64);
  Bad.MR = 0;
  EXPECT_TRUE(static_cast<bool>(Db.store(Bad)));
  Bad = sampleRecord(0, 64, 64);
  EXPECT_TRUE(static_cast<bool>(Db.store(Bad)));
  PriorDb Disabled("");
  EXPECT_FALSE(Disabled.enabled());
  EXPECT_TRUE(static_cast<bool>(Disabled.store(sampleRecord(8, 8, 8))));
  EXPECT_FALSE(Disabled.lookup(8, 8, 8).has_value());
}

TEST(PriorDbTest, TamperedMachineKeyIsRejectedAndCounted) {
  PriorDb Db(makeTempDir());
  ASSERT_TRUE(Db.enabled());
  ASSERT_FALSE(static_cast<bool>(Db.store(sampleRecord(64, 64, 64))));

  // Rewrite both entries in place with a foreign machine key — the
  // hand-copied-database scenario: filename hash still matches this
  // machine, content does not.
  std::vector<PriorDb::Entry> Entries = Db.list();
  ASSERT_EQ(Entries.size(), 2u); // exact + class representative
  for (const PriorDb::Entry &E : Entries) {
    PriorRecord Foreign = E.Rec;
    Foreign.Machine = E.Rec.Machine ^ 0xdeadbeefull;
    std::ofstream(E.Path) << formatPriorRecord(Foreign);
  }

  uint64_t Before = PriorDb::stats().MachineMismatch;
  EXPECT_FALSE(Db.lookup(64, 64, 64).has_value());
  EXPECT_EQ(PriorDb::stats().MachineMismatch - Before, 2u)
      << "both the exact and the class probe must reject";
  for (const PriorDb::Entry &E : Db.list())
    EXPECT_FALSE(E.MachineMatch);
}

TEST(PriorDbTest, CorruptRecordIsQuarantinedOnLookup) {
  std::string Dir = makeTempDir();
  PriorDb Db(Dir);
  ASSERT_FALSE(static_cast<bool>(Db.store(sampleRecord(64, 64, 64))));

  // Torn write: replace the exact record with a truncated prefix.
  std::vector<PriorDb::Entry> Entries = Db.list();
  ASSERT_EQ(Entries.size(), 2u);
  for (const PriorDb::Entry &E : Entries) {
    std::string Text = readFile(E.Path);
    std::ofstream(E.Path) << Text.substr(0, Text.size() / 3);
  }

  uint64_t CorruptBefore = PriorDb::stats().CorruptSeen;
  uint64_t QuarBefore = PriorDb::stats().Quarantined;
  EXPECT_FALSE(Db.lookup(64, 64, 64).has_value());
  EXPECT_EQ(PriorDb::stats().CorruptSeen - CorruptBefore, 2u);
  EXPECT_EQ(PriorDb::stats().Quarantined - QuarBefore, 2u);
  // Quarantined files are renamed *.bad and leave the live listing.
  EXPECT_TRUE(Db.list().empty());
  // A fresh store works over the quarantined remains, and prune sweeps
  // the .bad files.
  ASSERT_FALSE(static_cast<bool>(Db.store(sampleRecord(64, 64, 64))));
  EXPECT_TRUE(Db.lookup(64, 64, 64).has_value());
  EXPECT_EQ(Db.prune(/*DropForeign=*/false), 2u);
}

TEST(PriorDbTest, ListQuarantineAndPruneSweepCorruptAndForeign) {
  std::string Dir = makeTempDir();
  PriorDb Db(Dir);
  ASSERT_FALSE(static_cast<bool>(Db.store(sampleRecord(64, 64, 64))));
  ASSERT_FALSE(static_cast<bool>(Db.store(sampleRecord(128, 128, 128))));

  // One corrupt file and one foreign-machine record alongside the four
  // live entries (2 shapes x exact+class).
  std::ofstream(Dir + "/p00000000000000ff.prior") << "garbage";
  PriorRecord Foreign = sampleRecord(32, 32, 32);
  Foreign.Machine = 0x1234;
  std::ofstream(Dir + "/p00000000000000ee.prior")
      << formatPriorRecord(Foreign);

  std::vector<PriorDb::Entry> Entries = Db.list();
  ASSERT_EQ(Entries.size(), 6u);
  size_t Corrupt = 0, ForeignSeen = 0;
  for (const PriorDb::Entry &E : Entries) {
    Corrupt += E.Corrupt;
    ForeignSeen += !E.Corrupt && !E.MachineMatch;
  }
  EXPECT_EQ(Corrupt, 1u);
  EXPECT_EQ(ForeignSeen, 1u);

  EXPECT_EQ(Db.quarantine(), 1u);
  EXPECT_EQ(Db.list().size(), 5u);
  // prune: the .bad file and the foreign record go; live local stay.
  EXPECT_EQ(Db.prune(/*DropForeign=*/true), 2u);
  EXPECT_EQ(Db.list().size(), 4u);
  // Record cap: oldest-first eviction down to the cap.
  EXPECT_EQ(Db.prune(false, /*MaxRecords=*/1), 3u);
  EXPECT_EQ(Db.list().size(), 1u);
}

TEST(PriorDbTest, ConcurrentReadersAndWritersStayConsistent) {
  // The hammer the TSan gate re-runs instrumented: concurrent store /
  // lookup / list / quarantine on one root must never tear a record —
  // every successful lookup parses fully and carries this machine's key.
  PriorDb Db(makeTempDir());
  ASSERT_TRUE(Db.enabled());
  constexpr int Writers = 2, Readers = 2, Iters = 40;
  std::atomic<bool> Fail{false};
  std::vector<std::thread> Threads;
  for (int W = 0; W < Writers; ++W)
    Threads.emplace_back([&Db, W, &Fail] {
      for (int I = 0; I < Iters; ++I) {
        PriorRecord R = sampleRecord(64 + W, 64, 64 + (I % 3));
        R.TunedGflops = 40.0 + I;
        if (Db.store(R))
          Fail = true;
      }
    });
  for (int Rd = 0; Rd < Readers; ++Rd)
    Threads.emplace_back([&Db, Rd, &Fail] {
      for (int I = 0; I < Iters; ++I) {
        bool Exact = false;
        if (std::optional<PriorRecord> R =
                Db.lookup(64 + (I % Writers), 64, 64 + (I % 3), &Exact)) {
          if (R->Machine != priorMachineKey() || R->MR <= 0 || R->NR <= 0)
            Fail = true;
        }
        if (Rd == 0)
          (void)Db.list();
        else
          (void)Db.quarantine(); // must be a no-op on healthy files
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_FALSE(Fail.load());
  // Atomic publication: no .tmp litter survives the hammer.
  for (const PriorDb::Entry &E : Db.list()) {
    EXPECT_FALSE(E.Corrupt) << E.Path;
    EXPECT_EQ(E.Path.find(".tmp."), std::string::npos);
  }
}

TEST(PriorDbTest, GlobalRespectsEnvRootAndSetGlobalRoot) {
  // JitCacheTestEnv points EXO_GEMM_PRIOR_DB at an ephemeral dir for the
  // whole binary; global() must land there, not in ~/.cache.
  const char *Env = std::getenv("EXO_GEMM_PRIOR_DB");
  ASSERT_NE(Env, nullptr);
  PriorDb::setGlobalRoot(Env); // reset in case a prior test repointed it
  EXPECT_EQ(PriorDb::global().root(), std::string(Env));
  std::string Dir = makeTempDir();
  PriorDb::setGlobalRoot(Dir);
  EXPECT_EQ(PriorDb::global().root(), Dir);
  ASSERT_FALSE(
      static_cast<bool>(PriorDb::global().store(sampleRecord(40, 40, 40))));
  EXPECT_TRUE(PriorDb::global().lookup(40, 40, 40).has_value());
  PriorDb::setGlobalRoot(Env);
  EXPECT_FALSE(PriorDb::global().lookup(40, 40, 40).has_value());
}
