//===- DegenerateTest.cpp - BLAS quick-return semantics -------------------===//
//
// The degenerate corners of the GEMM contract (reference: the netlib sgemm
// quick-return rules):
//
//   - m == 0 or n == 0: nothing happens, C is not referenced at all.
//   - k == 0 or alpha == 0: C = beta * C; A and B are never read (callers
//     may pass null), and beta == 0 *overwrites* — a NaN already in C must
//     not survive.
//
// Every rule is checked across all four transpose combos and through all
// three entry points (blisGemm, blisGemmT, and Engine::sgemm — whose quick
// return must additionally fire *before* the plan cache: a degenerate call
// never plans, never allocates, and only bumps the Degenerate counter).
//
//===----------------------------------------------------------------------===//

#include "gemm/Gemm.h"

#include "gemm/Engine.h"
#include "gemm/Kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

using namespace gemm;

namespace {

constexpr float NaN = std::numeric_limits<float>::quiet_NaN();
constexpr Trans Combos[][2] = {{Trans::None, Trans::None},
                               {Trans::None, Trans::Transpose},
                               {Trans::Transpose, Trans::None},
                               {Trans::Transpose, Trans::Transpose}};

/// A C buffer (column-major, \p Ldc >= M) whose in-matrix elements count up
/// from 1 and whose slack rows [M, Ldc) hold NaN — any stray write there is
/// unmissable.
std::vector<float> makeC(int64_t M, int64_t N, int64_t Ldc) {
  std::vector<float> C(static_cast<size_t>(Ldc) * N, NaN);
  for (int64_t J = 0; J < N; ++J)
    for (int64_t I = 0; I < M; ++I)
      C[J * Ldc + I] = static_cast<float>(J * M + I + 1);
  return C;
}

/// True when the buffers are bit-identical (NaN-safe, padding-safe).
bool sameBits(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0;
}

struct DegenerateGemm : ::testing::Test {
  FixedProvider P{blisKernel(), "blis"};
  GemmPlan Plan = GemmPlan::standard(P);
};

} // namespace

TEST_F(DegenerateGemm, ZeroMOrNTouchesNothing) {
  for (auto [TA, TB] : Combos)
    for (auto [M, N] : {std::pair<int64_t, int64_t>{0, 7}, {5, 0}, {0, 0}}) {
      const int64_t Ldc = 6;
      std::vector<float> C(static_cast<size_t>(Ldc) * (N ? N : 1), NaN);
      const std::vector<float> Want = C;
      // Per BLAS, C (and A, B) are not referenced at all — beta included.
      exo::Error E = blisGemmT(Plan, P, TA, TB, M, N, /*K=*/3, 2.0f,
                               /*A=*/nullptr, 1, /*B=*/nullptr, 1,
                               /*Beta=*/0.0f, C.data(), Ldc);
      EXPECT_FALSE(static_cast<bool>(E)) << E.message();
      EXPECT_TRUE(sameBits(C, Want)) << "M=" << M << " N=" << N;
    }
}

TEST_F(DegenerateGemm, ZeroKScalesByBetaWithoutReadingAB) {
  const int64_t M = 5, N = 7, Ldc = 6;
  for (auto [TA, TB] : Combos)
    for (float Beta : {0.0f, 1.0f, 0.7f}) {
      std::vector<float> C = makeC(M, N, Ldc);
      std::vector<float> Want = C;
      for (int64_t J = 0; J < N; ++J)
        for (int64_t I = 0; I < M; ++I) {
          float &W = Want[J * Ldc + I];
          W = Beta == 0.0f ? 0.0f : W * Beta;
        }
      exo::Error E = blisGemmT(Plan, P, TA, TB, M, N, /*K=*/0, 2.0f,
                               /*A=*/nullptr, 1, /*B=*/nullptr, 1, Beta,
                               C.data(), Ldc);
      EXPECT_FALSE(static_cast<bool>(E)) << E.message();
      // Slack rows keep their NaNs (sameBits would fail on any change).
      EXPECT_TRUE(sameBits(C, Want)) << "beta=" << Beta;
    }
}

TEST_F(DegenerateGemm, ZeroAlphaScalesByBetaWithoutReadingAB) {
  const int64_t M = 5, N = 7, K = 9, Ldc = 6;
  for (auto [TA, TB] : Combos)
    for (float Beta : {0.0f, 1.0f, 0.7f}) {
      std::vector<float> C = makeC(M, N, Ldc);
      std::vector<float> Want = C;
      for (int64_t J = 0; J < N; ++J)
        for (int64_t I = 0; I < M; ++I) {
          float &W = Want[J * Ldc + I];
          W = Beta == 0.0f ? 0.0f : W * Beta;
        }
      exo::Error E = blisGemmT(Plan, P, TA, TB, M, N, K, /*Alpha=*/0.0f,
                               /*A=*/nullptr, 1, /*B=*/nullptr, 1, Beta,
                               C.data(), Ldc);
      EXPECT_FALSE(static_cast<bool>(E)) << E.message();
      EXPECT_TRUE(sameBits(C, Want)) << "beta=" << Beta;
    }
}

TEST_F(DegenerateGemm, BetaZeroOverwritesNaN) {
  // The serving-workload case: pooled, uninitialized C (all NaN). With
  // beta == 0 the result must be exactly zero — 0 * NaN == NaN would leak.
  const int64_t M = 4, N = 3, Ldc = 4;
  for (int64_t K : {int64_t{0}, int64_t{5}}) {
    std::vector<float> C(static_cast<size_t>(Ldc) * N, NaN);
    exo::Error E =
        blisGemm(Plan, P, M, N, K, /*Alpha=*/0.0f, /*A=*/nullptr, 1,
                 /*B=*/nullptr, 1, /*Beta=*/0.0f, C.data(), Ldc);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    for (float V : C)
      EXPECT_EQ(V, 0.0f) << "K=" << K;
  }
}

TEST_F(DegenerateGemm, NegativeDimensionIsAnError) {
  std::vector<float> C(4, 0.0f);
  for (auto [M, N, K] : {std::array<int64_t, 3>{-1, 2, 2},
                         {2, -1, 2},
                         {2, 2, -1}}) {
    exo::Error E = blisGemm(Plan, P, M, N, K, 1.0f, nullptr, 1, nullptr, 1,
                            1.0f, C.data(), 2);
    EXPECT_TRUE(static_cast<bool>(E)) << M << "x" << N << "x" << K;
  }
}

// The Engine equivalents use the Blis series so nothing below depends on
// the JIT; the quick return must fire before kernels are even resolved.

TEST(EngineDegenerate, ZeroMOrNTouchesNothingAndSkipsPlanning) {
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Engine E(Cfg);
  uint64_t Calls = 0;
  for (auto [TA, TB] : Combos)
    for (auto [M, N] : {std::pair<int64_t, int64_t>{0, 7}, {5, 0}, {0, 0}}) {
      const int64_t Ldc = 6;
      std::vector<float> C(static_cast<size_t>(Ldc) * (N ? N : 1), NaN);
      const std::vector<float> Want = C;
      exo::Error Err = E.sgemm(TA, TB, M, N, /*K=*/3, 2.0f, /*A=*/nullptr, 1,
                               /*B=*/nullptr, 1, /*Beta=*/0.0f, C.data(), Ldc);
      ++Calls;
      EXPECT_FALSE(static_cast<bool>(Err)) << Err.message();
      EXPECT_TRUE(sameBits(C, Want)) << "M=" << M << " N=" << N;
    }
  // The quick return answered every call before the plan cache.
  EXPECT_EQ(E.planCount(), 0u);
  EngineStats St = E.stats();
  EXPECT_EQ(St.Degenerate, Calls);
  EXPECT_EQ(St.Builds, 0u);
  EXPECT_EQ(St.Hits + St.Misses, 0u);
}

TEST(EngineDegenerate, ZeroKOrAlphaScalesByBetaWithoutPlanning) {
  const int64_t M = 5, N = 7, Ldc = 6;
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Engine E(Cfg);
  uint64_t Calls = 0;
  for (auto [TA, TB] : Combos)
    for (float Beta : {0.0f, 1.0f, 0.7f})
      for (bool ZeroK : {true, false}) {
        const int64_t K = ZeroK ? 0 : 9;
        const float Alpha = ZeroK ? 2.0f : 0.0f;
        std::vector<float> C = makeC(M, N, Ldc);
        std::vector<float> Want = C;
        for (int64_t J = 0; J < N; ++J)
          for (int64_t I = 0; I < M; ++I) {
            float &W = Want[J * Ldc + I];
            W = Beta == 0.0f ? 0.0f : W * Beta;
          }
        exo::Error Err = E.sgemm(TA, TB, M, N, K, Alpha, /*A=*/nullptr, 1,
                                 /*B=*/nullptr, 1, Beta, C.data(), Ldc);
        ++Calls;
        EXPECT_FALSE(static_cast<bool>(Err)) << Err.message();
        EXPECT_TRUE(sameBits(C, Want))
            << "beta=" << Beta << " zeroK=" << ZeroK;
      }
  EXPECT_EQ(E.planCount(), 0u);
  EXPECT_EQ(E.stats().Degenerate, Calls);
}

TEST(EngineDegenerate, BetaZeroOverwritesNaN) {
  const int64_t M = 4, N = 3, Ldc = 4;
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Engine E(Cfg);
  for (int64_t K : {int64_t{0}, int64_t{5}}) {
    std::vector<float> C(static_cast<size_t>(Ldc) * N, NaN);
    exo::Error Err = E.sgemm(M, N, K, /*Alpha=*/0.0f, /*A=*/nullptr, 1,
                             /*B=*/nullptr, 1, /*Beta=*/0.0f, C.data(), Ldc);
    EXPECT_FALSE(static_cast<bool>(Err)) << Err.message();
    for (float V : C)
      EXPECT_EQ(V, 0.0f) << "K=" << K;
  }
  EXPECT_EQ(E.planCount(), 0u);
}

TEST(EngineDegenerate, NegativeDimensionIsAnError) {
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Engine E(Cfg);
  std::vector<float> C(4, 0.0f);
  for (auto [M, N, K] : {std::array<int64_t, 3>{-1, 2, 2},
                         {2, -1, 2},
                         {2, 2, -1}}) {
    exo::Error Err = E.sgemm(M, N, K, 1.0f, nullptr, 1, nullptr, 1, 1.0f,
                             C.data(), 2);
    EXPECT_TRUE(static_cast<bool>(Err)) << M << "x" << N << "x" << K;
  }
  EXPECT_EQ(E.planCount(), 0u);
}
