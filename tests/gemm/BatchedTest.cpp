//===- BatchedTest.cpp - Batched entry points vs N sequential sgemm -------===//
//
// The batched front door's core guarantee: Engine::sgemmBatched and
// Engine::sgemmStridedBatched are *scheduling* layers, not different
// arithmetic. Whatever the grouping and whichever execution strategy the
// planner picks (intra-item slab teams or whole-item cross-batch
// scheduling), every item's C must be bitwise identical to the same item
// run through a lone Engine::sgemm — at every team size. The differential
// suite here holds that across mixed shapes in one batch, all four
// transpose combos, team sizes 1 and 4, both forced scheduling modes
// (EXO_GEMM_BATCH_CROSSOVER at 0 and huge), and degenerate items
// (m/n/k == 0, alpha == 0) interleaved mid-batch.
//
// Rides in gemm_test, so the tsan_gemm_threads8 gate re-runs the
// cross-item scheduling (one item per pool worker, per-worker packing
// workspaces) under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "gemm/Engine.h"

#include "JitCacheTestEnv.h"
#include "benchutil/Bench.h"
#include "exo/jit/Jit.h"
#include "gemm/Kernels.h"
#include "gemm/Planner.h"
#include "gemm/PriorDb.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

using namespace gemm;

namespace {

constexpr Trans Combos[][2] = {{Trans::None, Trans::None},
                               {Trans::None, Trans::Transpose},
                               {Trans::Transpose, Trans::None},
                               {Trans::Transpose, Trans::Transpose}};

struct Shape {
  int64_t M, N, K;
};

// Small enough that the cache model prefers cross-item scheduling, plus a
// couple of larger items that stay intra-item — one batch exercises both
// strategies and the grouping in between.
constexpr Shape MixedShapes[] = {
    {8, 12, 16},  {17, 23, 31}, {8, 12, 16},  {64, 64, 64},
    {5, 124, 77}, {8, 12, 16},  {128, 96, 64}, {17, 23, 31},
    {1, 1, 1},    {33, 65, 17}, {64, 64, 64},  {3, 57, 19},
};

/// Backing storage plus the item list for one differential batch.
struct BatchFixture {
  std::vector<GemmBatchItem> Items;
  std::vector<std::vector<float>> Store;  ///< A/B/C buffers, C last per item
  std::vector<std::vector<float>> CSeq;   ///< per-item sequential C copies

  /// Item over fresh deterministic operands; Ld padding and alpha/beta
  /// vary with the item index so no two items are accidentally uniform.
  void add(Trans TA, Trans TB, int64_t M, int64_t N, int64_t K,
           size_t Salt) {
    const int64_t ARows = TA == Trans::None ? M : K;
    const int64_t ACols = TA == Trans::None ? K : M;
    const int64_t BRows = TB == Trans::None ? K : N;
    const int64_t BCols = TB == Trans::None ? N : K;
    GemmBatchItem It;
    It.TA = TA;
    It.TB = TB;
    It.M = M;
    It.N = N;
    It.K = K;
    It.Alpha = Salt % 3 == 0 ? 1.0f : 1.25f;
    It.Beta = Salt % 2 == 0 ? 0.0f : 0.5f;
    It.Lda = ARows + static_cast<int64_t>(Salt % 3);
    It.Ldb = BRows + 1;
    It.Ldc = M + 2;
    Store.emplace_back(static_cast<size_t>(
        std::max<int64_t>(1, It.Lda * ACols)));
    benchutil::fillRandom(Store.back().data(), Store.back().size(),
                          static_cast<int>(7 * Salt + 1));
    It.A = Store.back().data();
    Store.emplace_back(static_cast<size_t>(
        std::max<int64_t>(1, It.Ldb * BCols)));
    benchutil::fillRandom(Store.back().data(), Store.back().size(),
                          static_cast<int>(11 * Salt + 2));
    It.B = Store.back().data();
    Store.emplace_back(static_cast<size_t>(
        std::max<int64_t>(1, It.Ldc * N)));
    benchutil::fillRandom(Store.back().data(), Store.back().size(),
                          static_cast<int>(13 * Salt + 3));
    It.C = Store.back().data();
    CSeq.push_back(Store.back()); // same pre-call C contents
    Items.push_back(It);
  }

  /// Sequential reference: each item through a lone sgemm on its copy.
  void runSequential(Engine &E) {
    for (size_t I = 0; I != Items.size(); ++I) {
      const GemmBatchItem &It = Items[I];
      ASSERT_FALSE(E.sgemm(It.TA, It.TB, It.M, It.N, It.K, It.Alpha, It.A,
                           It.Lda, It.B, It.Ldb, It.Beta, CSeq[I].data(),
                           It.Ldc));
    }
  }

  void expectBitwise() const {
    for (size_t I = 0; I != Items.size(); ++I)
      EXPECT_EQ(0, std::memcmp(Items[I].C, CSeq[I].data(),
                               CSeq[I].size() * sizeof(float)))
          << "item " << I << " (" << Items[I].M << "x" << Items[I].N << "x"
          << Items[I].K << ") differs from its sequential result";
  }
};

Engine makeEngine(int64_t Threads) {
  EngineConfig Cfg;
  Cfg.Series = EngineSeries::Blis;
  Cfg.Threads = Threads;
  return Engine(Cfg);
}

/// Scoped setenv, restoring the previous value on destruction.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      HadOld = true;
      OldValue = Old;
    }
    ::setenv(Name, Value, 1);
  }
  ~ScopedEnv() {
    if (HadOld)
      ::setenv(Name.c_str(), OldValue.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
  }

private:
  std::string Name, OldValue;
  bool HadOld = false;
};

void runMixedDifferential(int64_t Threads) {
  Engine E = makeEngine(Threads);
  BatchFixture F;
  size_t Salt = 0;
  for (const Shape &S : MixedShapes) {
    F.add(Combos[Salt % 4][0], Combos[Salt % 4][1], S.M, S.N, S.K, Salt);
    ++Salt;
  }
  F.runSequential(E);
  ASSERT_FALSE(E.sgemmBatched(F.Items));
  F.expectBitwise();
}

} // namespace

TEST(Batched, MixedShapesAllTransposeCombosOneThread) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  runMixedDifferential(1);
}

TEST(Batched, MixedShapesAllTransposeCombosFourThreads) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  runMixedDifferential(4);
}

TEST(Batched, ForcedCrossItemAndForcedIntraItemAgree) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  // Crossover 0: every group runs intra-item. Crossover huge: every
  // group runs cross-item. Both must reproduce the sequential bits.
  for (const char *Crossover : {"0", "1099511627776"}) {
    ScopedEnv Env("EXO_GEMM_BATCH_CROSSOVER", Crossover);
    Engine E = makeEngine(4);
    EngineStats Before = E.stats();
    BatchFixture F;
    for (size_t I = 0; I != 8; ++I)
      F.add(Trans::None, Trans::None, 24, 36, 48, I);
    F.runSequential(E);
    ASSERT_FALSE(E.sgemmBatched(F.Items));
    F.expectBitwise();
    EngineStats After = E.stats();
    EXPECT_EQ(After.BatchedItems - Before.BatchedItems, 8u);
    if (Crossover[0] == '0')
      EXPECT_EQ(After.BatchedCrossItem, Before.BatchedCrossItem)
          << "crossover 0 must keep every item intra-item";
    else
      EXPECT_EQ(After.BatchedCrossItem - Before.BatchedCrossItem, 8u)
          << "huge crossover must schedule every item cross-batch";
  }
}

TEST(Batched, DegeneratesInterleavedMidBatch) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  for (int64_t Threads : {int64_t(1), int64_t(4)}) {
    Engine E = makeEngine(Threads);
    BatchFixture F;
    F.add(Trans::None, Trans::None, 17, 23, 31, 0);
    F.add(Trans::None, Trans::None, 8, 12, 0, 1); // k == 0: beta-scale only
    F.add(Trans::Transpose, Trans::None, 33, 65, 17, 2);
    F.Items.back().Alpha = 0.0f; // alpha == 0: beta-scale only
    F.add(Trans::None, Trans::None, 0, 12, 16, 3); // m == 0: no-op
    F.add(Trans::None, Trans::Transpose, 24, 0, 48, 4); // n == 0: no-op
    F.add(Trans::None, Trans::None, 49, 50, 51, 5);
    EngineStats Before = E.stats();
    F.runSequential(E);
    ASSERT_FALSE(E.sgemmBatched(F.Items));
    F.expectBitwise();
    EngineStats After = E.stats();
    // 4 degenerates, counted by the batched path and the 4 sequential
    // reference calls alike.
    EXPECT_EQ(After.Degenerate - Before.Degenerate, 8u);
  }
}

TEST(Batched, StridedMatchesItemList) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  const int64_t M = 17, N = 23, K = 31, Count = 6;
  const int64_t SA = M * K + 5, SB = K * N + 3, SC = M * N + 7;
  Engine E = makeEngine(4);
  std::vector<float> A(SA * Count), B(SB * Count), C(SC * Count),
      CSeq(SC * Count);
  benchutil::fillRandom(A.data(), A.size(), 41);
  benchutil::fillRandom(B.data(), B.size(), 42);
  benchutil::fillRandom(C.data(), C.size(), 43);
  std::memcpy(CSeq.data(), C.data(), C.size() * sizeof(float));
  for (int64_t I = 0; I != Count; ++I)
    ASSERT_FALSE(E.sgemm(M, N, K, 1.5f, A.data() + I * SA, M,
                         B.data() + I * SB, K, 0.25f, CSeq.data() + I * SC,
                         M));
  ASSERT_FALSE(E.sgemmStridedBatched(Trans::None, Trans::None, M, N, K, 1.5f,
                                     A.data(), M, SA, B.data(), K, SB, 0.25f,
                                     C.data(), M, SC, Count));
  EXPECT_EQ(0, std::memcmp(C.data(), CSeq.data(), C.size() * sizeof(float)));
}

TEST(Batched, StridedSharedOperandsViaStrideZero) {
  if (!baselineKernelsUsable())
    GTEST_SKIP() << "host lacks AVX2+FMA";
  const int64_t M = 24, N = 36, K = 48, Count = 5;
  Engine E = makeEngine(1);
  std::vector<float> A(M * K), B(K * N), C(M * N * Count),
      CSeq(M * N * Count);
  benchutil::fillRandom(A.data(), A.size(), 51);
  benchutil::fillRandom(B.data(), B.size(), 52);
  for (int64_t I = 0; I != Count; ++I)
    ASSERT_FALSE(E.sgemm(M, N, K, 1.0f, A.data(), M, B.data(), K, 0.0f,
                         CSeq.data() + I * M * N, M));
  // A shared across the batch (stride 0), distinct C per item.
  ASSERT_FALSE(E.sgemmStridedBatched(Trans::None, Trans::None, M, N, K, 1.0f,
                                     A.data(), M, 0, B.data(), K, 0, 0.0f,
                                     C.data(), M, M * N, Count));
  EXPECT_EQ(0, std::memcmp(C.data(), CSeq.data(), C.size() * sizeof(float)));
}

TEST(Batched, TunedPriorsKeepBitwiseThreadCountInvariance) {
  // Tuned priors change *which* plan a batch's shape groups run under
  // (tile, blocking, unroll), and the batched layer changes *where* items
  // run — neither may change a single bit of C. With a tuned record
  // steering the shape and cross-item scheduling forced, team sizes 1 and
  // 4 must produce identical batches, and both must equal the sequential
  // reference.
  if (!exo::jitAvailable())
    GTEST_SKIP() << "no JIT toolchain";
  const int64_t M = 24, N = 36, K = 48;
  auto Model = pickTileForProblem(M, N, K);
  std::pair<int64_t, int64_t> Tile{0, 0};
  for (auto T : plannerTileCandidates())
    if (T != Model) {
      Tile = T;
      break;
    }
  if (Tile.first == 0)
    GTEST_SKIP() << "host has a single admissible tile";

  const char *SavedRoot = std::getenv("EXO_GEMM_PRIOR_DB");
  std::string Root = exotest::makeTempDir("exo-batchtune");
  PriorDb::setGlobalRoot(Root);
  PriorRecord R;
  R.M = M;
  R.N = N;
  R.K = K;
  R.MR = Tile.first;
  R.NR = Tile.second;
  R.MC = 2 * Tile.first;
  R.NC = 2 * Tile.second;
  R.KC = 16;
  R.UnrollCompute = true;
  R.TunedGflops = 60.0;
  std::tie(R.ModelMR, R.ModelNR) = Model;
  R.ModelGflops = 50.0;
  ASSERT_FALSE(static_cast<bool>(PriorDb::global().store(R)));

  // Huge crossover: every group a multi-threaded engine sees goes
  // cross-item (threads == 1 has no pool to spread over and stays
  // intra-item — the invariance must hold across that divide too).
  ScopedEnv Env("EXO_GEMM_BATCH_CROSSOVER", "1099511627776");

  std::vector<std::vector<float>> CByThreads;
  for (int64_t Threads : {int64_t(1), int64_t(4)}) {
    EngineConfig Cfg; // Auto series: the tuned stage is in play
    Cfg.Threads = Threads;
    Engine E(Cfg);
    BatchFixture F;
    for (size_t I = 0; I != 8; ++I)
      F.add(Trans::None, Trans::None, M, N, K, I);
    exo::Expected<PlanChoice> Plan =
        E.planFor(Trans::None, Trans::None, M, N, K);
    ASSERT_TRUE(static_cast<bool>(Plan)) << Plan.takeError().message();
    ASSERT_STREQ(Plan->Source, "tuned") << "record not in play; the test "
                                           "would prove nothing";
    F.runSequential(E);
    ASSERT_FALSE(E.sgemmBatched(F.Items));
    F.expectBitwise();
    EXPECT_GE(E.stats().PlansFromTuned, 1u);
    if (Threads > 1)
      EXPECT_EQ(E.stats().BatchedCrossItem, 8u)
          << "huge crossover must schedule every item cross-batch";
    // Snapshot item 0's C (identical fixtures across team sizes).
    CByThreads.emplace_back(F.Items[0].C,
                            F.Items[0].C + F.CSeq[0].size());
  }
  ASSERT_EQ(CByThreads.size(), 2u);
  EXPECT_EQ(0, std::memcmp(CByThreads[0].data(), CByThreads[1].data(),
                           CByThreads[0].size() * sizeof(float)))
      << "tuned priors broke thread-count invariance";

  PriorDb::setGlobalRoot(SavedRoot ? SavedRoot : "");
}

TEST(Batched, RejectsBadArguments) {
  Engine E = makeEngine(1);
  std::vector<float> Buf(64 * 64);
  GemmBatchItem It;
  It.M = 8;
  It.N = 8;
  It.K = 8;
  It.A = Buf.data();
  It.Lda = 8;
  It.B = Buf.data();
  It.Ldb = 8;
  It.C = Buf.data();
  It.Ldc = 8;

  EXPECT_TRUE(E.sgemmBatched(nullptr, 3)); // null items with count > 0
  GemmBatchItem Bad = It;
  Bad.M = -1;
  EXPECT_TRUE(E.sgemmBatched(&Bad, 1)); // negative dim
  EXPECT_TRUE(E.sgemmStridedBatched(Trans::None, Trans::None, 8, 8, 8, 1.0f,
                                    Buf.data(), 8, -1, Buf.data(), 8, 64,
                                    0.0f, Buf.data(), 8, 64,
                                    2)); // negative stride
  // Overlapping C panels: StrideC < Ldc * N with more than one item.
  EXPECT_TRUE(E.sgemmStridedBatched(Trans::None, Trans::None, 8, 8, 8, 1.0f,
                                    Buf.data(), 8, 64, Buf.data(), 8, 64,
                                    0.0f, Buf.data(), 8, 32, 2));
  // Valid single item and the empty batch both succeed.
  EXPECT_FALSE(E.sgemmBatched(&It, 1));
  EXPECT_FALSE(E.sgemmBatched(nullptr, 0));
}
