//===- TunerTest.cpp - Autotuner search + never-lose planner gate ---------===//
//
// The search half of the tuner and its contract with the planner:
// deterministic candidate enumeration under EXO_TUNE_SEED, env-knob
// parsing, and — the heart of the feature — the never-lose gate: a tuned
// database record steers the planner only when its tile is admissible and
// its stored margin over the measured model baseline is positive, and a
// tuned plan computes bitwise-identical results to the model plan on the
// same inputs.
//
//===----------------------------------------------------------------------===//

#include "gemm/Tuner.h"

#include "JitCacheTestEnv.h"
#include "exo/isa/IsaLib.h"
#include "exo/jit/Jit.h"
#include "gemm/Engine.h"
#include "gemm/Planner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

using namespace gemm;

namespace {

std::string makeTempDir() { return exotest::makeTempDir("exo-tunetest"); }

/// Deterministic integer-valued data: every product and partial sum is an
/// exactly representable small integer, so any two correct schedules must
/// agree bitwise — which is what lets the tests compare tuned vs model
/// plans with memcmp instead of a tolerance.
void fillInts(std::vector<float> &V, uint32_t Seed) {
  uint32_t X = Seed * 2654435761u + 12345u;
  for (float &F : V) {
    X = X * 1664525u + 1013904223u;
    F = static_cast<float>(static_cast<int>(X >> 28) - 8);
  }
}

/// An admissible tile that differs from the analytical pick for the shape
/// (so a test can prove the tuned record — not the model — chose it).
std::pair<int64_t, int64_t> nonModelTile(int64_t M, int64_t N, int64_t K) {
  auto Model = pickTileForProblem(M, N, K);
  for (auto T : plannerTileCandidates())
    if (T != Model)
      return T;
  return {0, 0}; // host with a single admissible tile: caller skips
}

/// A positive-margin record the planner should accept.
PriorRecord tunedRecord(int64_t M, int64_t N, int64_t K, int64_t Mr,
                        int64_t Nr) {
  PriorRecord R;
  R.M = M;
  R.N = N;
  R.K = K;
  R.MR = Mr;
  R.NR = Nr;
  R.TunedGflops = 60.0;
  std::tie(R.ModelMR, R.ModelNR) = pickTileForProblem(M, N, K);
  R.ModelGflops = 50.0;
  return R;
}

/// Scoped setenv/unsetenv with restore.
struct ScopedEnv {
  std::string Name, Old;
  bool HadOld;
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    const char *Prev = std::getenv(Name);
    HadOld = Prev != nullptr;
    Old = Prev ? Prev : "";
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~ScopedEnv() {
    if (HadOld)
      setenv(Name.c_str(), Old.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

} // namespace

TEST(TuneOptionsTest, EnvKnobsParseAndClamp) {
  ScopedEnv B("EXO_TUNE_BUDGET", "7");
  ScopedEnv S("EXO_TUNE_SECONDS", "0.25");
  ScopedEnv Sd("EXO_TUNE_SEED", "99");
  TuneOptions O = tuneOptionsFromEnv();
  EXPECT_EQ(O.Budget, 7);
  EXPECT_DOUBLE_EQ(O.Seconds, 0.25);
  EXPECT_EQ(O.Seed, 99u);
}

TEST(TuneOptionsTest, MalformedEnvFallsBackToDefaults) {
  const TuneOptions Def; // compiled-in defaults
  ScopedEnv B("EXO_TUNE_BUDGET", "banana");
  ScopedEnv S("EXO_TUNE_SECONDS", "-3");   // below range
  ScopedEnv Sd("EXO_TUNE_SEED", nullptr);  // unset
  TuneOptions O = tuneOptionsFromEnv();
  EXPECT_EQ(O.Budget, Def.Budget);
  EXPECT_DOUBLE_EQ(O.Seconds, Def.Seconds);
  EXPECT_EQ(O.Seed, Def.Seed);
}

TEST(TuneCandidatesTest, DeterministicPerSeedAndAllAdmissible) {
  TuneOptions O;
  O.Seed = 1;
  std::vector<TuneSample> C1 = tuneCandidates(128, 128, 128, O);
  std::vector<TuneSample> C2 = tuneCandidates(128, 128, 128, O);
  ASSERT_FALSE(C1.empty());
  ASSERT_EQ(C1.size(), C2.size());
  for (size_t I = 0; I < C1.size(); ++I) {
    EXPECT_EQ(C1[I].MR, C2[I].MR) << "at " << I;
    EXPECT_EQ(C1[I].NR, C2[I].NR) << "at " << I;
    EXPECT_EQ(C1[I].MC, C2[I].MC) << "at " << I;
    EXPECT_EQ(C1[I].NC, C2[I].NC) << "at " << I;
    EXPECT_EQ(C1[I].KC, C2[I].KC) << "at " << I;
    EXPECT_EQ(C1[I].UnrollCompute, C2[I].UnrollCompute) << "at " << I;
    // Every candidate the search would measure passes the same screen the
    // planner applies on the way back out of the database.
    EXPECT_TRUE(tileAdmissible(C1[I].MR, C1[I].NR, O.Isa))
        << C1[I].MR << "x" << C1[I].NR;
  }

  if (C1.size() > 3) {
    O.Seed = 2;
    std::vector<TuneSample> C3 = tuneCandidates(128, 128, 128, O);
    ASSERT_EQ(C1.size(), C3.size()); // seed permutes, never adds/drops
    bool Differs = false;
    for (size_t I = 0; I < C1.size() && !Differs; ++I)
      Differs = C1[I].MR != C3[I].MR || C1[I].NR != C3[I].NR ||
                C1[I].MC != C3[I].MC || C1[I].KC != C3[I].KC ||
                C1[I].UnrollCompute != C3[I].UnrollCompute;
    EXPECT_TRUE(Differs) << "seed does not influence the search order";
  }
}

TEST(TuneCandidatesTest, ShapeMixesIntoSearchOrder) {
  // One budget across many shapes should not re-measure the same prefix
  // of the space for every shape: the shape is mixed into the seed.
  TuneOptions O;
  std::vector<TuneSample> A = tuneCandidates(128, 128, 128, O);
  std::vector<TuneSample> B = tuneCandidates(256, 256, 256, O);
  ASSERT_EQ(A.size(), B.size());
  if (A.size() <= 3)
    GTEST_SKIP() << "too few admissible tiles on this host";
  bool Differs = false;
  for (size_t I = 0; I < A.size() && !Differs; ++I)
    Differs = A[I].MR != B[I].MR || A[I].NR != B[I].NR ||
              A[I].MC != B[I].MC || A[I].KC != B[I].KC ||
              A[I].UnrollCompute != B[I].UnrollCompute;
  EXPECT_TRUE(Differs);
}

TEST(TuneShapeTest, DegenerateShapeFails) {
  TuneOptions O;
  O.Budget = 1;
  O.Seconds = 0.001;
  exo::Expected<TuneResult> R = tuneShape(0, 8, 8, O);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("degenerate"), std::string::npos)
      << R.message();
}

TEST(NeverLoseGateTest, PositiveMarginAdmissibleRecordWins) {
  auto [Mr, Nr] = nonModelTile(96, 96, 96);
  if (Mr == 0)
    GTEST_SKIP() << "host has a single admissible tile";
  PriorDb Db(makeTempDir());
  ASSERT_TRUE(Db.enabled());
  PriorRecord R = tunedRecord(96, 96, 96, Mr, Nr);
  R.MC = 192;
  R.NC = 960;
  R.KC = 96;
  R.UnrollCompute = true;
  ASSERT_FALSE(static_cast<bool>(Db.store(R)));

  PlanOutcome Out;
  PlanChoice C = choosePlanWithDb(96, 96, 96, nullptr, "", &Db, &Out);
  EXPECT_EQ(C.Src, PlanSource::Tuned);
  EXPECT_STREQ(C.Source, "tuned");
  EXPECT_EQ(C.MR, Mr);
  EXPECT_EQ(C.NR, Nr);
  // The tuned execution overrides ride along into the plan.
  ASSERT_TRUE(C.Blocks.has_value());
  EXPECT_EQ(C.Blocks->MC, 192);
  EXPECT_EQ(C.Blocks->NC, 960);
  EXPECT_EQ(C.Blocks->KC, 96);
  EXPECT_TRUE(C.UnrollCompute);
  EXPECT_EQ(Out.TunedRejected, 0u);

  // Zero blocking fields mean "analytical": no override is attached.
  PriorRecord R2 = tunedRecord(64, 64, 64, Mr, Nr);
  ASSERT_FALSE(static_cast<bool>(Db.store(R2)));
  PlanChoice C2 = choosePlanWithDb(64, 64, 64, nullptr, "", &Db, nullptr);
  EXPECT_EQ(C2.Src, PlanSource::Tuned);
  EXPECT_FALSE(C2.Blocks.has_value());
}

TEST(NeverLoseGateTest, NonPositiveMarginFallsBackToModel) {
  auto [Mr, Nr] = nonModelTile(96, 96, 96);
  if (Mr == 0)
    GTEST_SKIP() << "host has a single admissible tile";
  PriorDb Db(makeTempDir());
  PriorRecord R = tunedRecord(96, 96, 96, Mr, Nr);
  R.TunedGflops = R.ModelGflops; // aged badly: margin exactly zero
  ASSERT_FALSE(static_cast<bool>(Db.store(R)));

  PlanOutcome Out;
  PlanChoice C = choosePlanWithDb(96, 96, 96, nullptr, "", &Db, &Out);
  EXPECT_EQ(C.Src, PlanSource::Model);
  EXPECT_EQ(Out.TunedRejected, 1u);
  auto Model = pickTileForProblem(96, 96, 96);
  EXPECT_EQ(C.MR, Model.first);
  EXPECT_EQ(C.NR, Model.second);
}

TEST(NeverLoseGateTest, InadmissibleTileIsRejected) {
  // 7x5 passes store() validation (it is a positive shape) but no vector
  // ISA divides 7, so the planner's screen must refuse it on every host.
  PriorDb Db(makeTempDir());
  PriorRecord R = tunedRecord(80, 80, 80, 7, 5);
  ASSERT_FALSE(static_cast<bool>(Db.store(R)));

  PlanOutcome Out;
  PlanChoice C = choosePlanWithDb(80, 80, 80, nullptr, "", &Db, &Out);
  EXPECT_EQ(C.Src, PlanSource::Model);
  EXPECT_EQ(Out.TunedRejected, 1u);
}

TEST(NeverLoseGateTest, NullDbSkipsTunedStage) {
  // The bench_tune "model" arm: EngineConfig::TunedPriors == false plans
  // as if the database did not exist, even with a winning record on disk.
  auto [Mr, Nr] = nonModelTile(96, 96, 96);
  if (Mr == 0)
    GTEST_SKIP() << "host has a single admissible tile";
  PriorDb Db(makeTempDir());
  ASSERT_FALSE(static_cast<bool>(Db.store(tunedRecord(96, 96, 96, Mr, Nr))));

  PlanOutcome Out;
  PlanChoice C = choosePlanWithDb(96, 96, 96, nullptr, "", nullptr, &Out);
  EXPECT_EQ(C.Src, PlanSource::Model);
  EXPECT_EQ(Out.TunedRejected, 0u);
}

TEST(PlannerBenchPriorTest, IsaMismatchedRowsAreCountedNotSilent) {
  // Regression for the silent-skip bug: a BENCH prior row whose tile is
  // not admissible under the chosen ISA used to be dropped without a
  // trace. It must now be counted (and warned once) while the best
  // *admissible* row still wins.
  std::string Path = testing::TempDir() + "/tuner_prior_isa.json";
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    // 8x12 measures best but 8 is not divisible by avx512's 16 f32 lanes;
    // 16x8 is the best admissible row under avx512.
    std::fputs(R"({
  "bench": "dispatch",
  "rows": [
    {"label": "64", "series": "hot_plan", "metric": "gflops",
     "better": "higher", "value": 99.0, "m": 64, "n": 48, "k": 32,
     "counters": {"mr": 8, "nr": 12}},
    {"label": "64", "series": "hot_plan", "metric": "gflops",
     "better": "higher", "value": 50.0, "m": 64, "n": 48, "k": 32,
     "counters": {"mr": 16, "nr": 8}}
  ]
})",
               F);
    std::fclose(F);
  }

  const exo::IsaLib &Avx512 = exo::avx512Isa();
  int64_t Mr = 0, Nr = 0;
  uint64_t Rejected = 0;
  ASSERT_TRUE(lookupPlanPrior(Path, 64, 48, 32, Mr, Nr, &Avx512, &Rejected));
  EXPECT_EQ(Mr, 16);
  EXPECT_EQ(Nr, 8);
  EXPECT_EQ(Rejected, 1u);

  // Without the ISA pin the 8x12 row is admissible (on any host: portable
  // covers Mr = 8) and wins on value — the rejection is ISA-specific.
  Rejected = 0;
  ASSERT_TRUE(lookupPlanPrior(Path, 64, 48, 32, Mr, Nr, nullptr, &Rejected));
  EXPECT_EQ(Mr, 8);
  EXPECT_EQ(Nr, 12);
  EXPECT_EQ(Rejected, 0u);

  // Same accounting through the full selection path.
  PlanOutcome Out;
  PlanChoice C = choosePlanWithDb(64, 48, 32, &Avx512, Path, nullptr, &Out);
  EXPECT_EQ(C.Src, PlanSource::Prior);
  EXPECT_EQ(C.MR, 16);
  EXPECT_EQ(C.NR, 8);
  EXPECT_EQ(Out.PriorRejected, 1u);

  // All rows inadmissible: fall through to the model, all counted.
  std::string Path2 = testing::TempDir() + "/tuner_prior_isa2.json";
  {
    std::FILE *F = std::fopen(Path2.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs(R"({
  "rows": [
    {"label": "64", "series": "s", "metric": "gflops",
     "better": "higher", "value": 99.0, "m": 64, "n": 48, "k": 32,
     "counters": {"mr": 8, "nr": 12}},
    {"label": "64", "series": "s", "metric": "gflops",
     "better": "higher", "value": 50.0, "m": 64, "n": 48, "k": 32,
     "counters": {"mr": 4, "nr": 8}}
  ]
})",
               F);
    std::fclose(F);
  }
  PlanOutcome Out2;
  PlanChoice C2 = choosePlanWithDb(64, 48, 32, &Avx512, Path2, nullptr,
                                   &Out2);
  EXPECT_EQ(C2.Src, PlanSource::Model);
  EXPECT_EQ(Out2.PriorRejected, 2u);
}

namespace {

/// Repoints PriorDb::global() at a fresh temp root for one test, restoring
/// the binary-wide isolated root (JitCacheTestEnv) on exit.
struct ScopedGlobalDb {
  std::string Saved;
  std::string Dir;
  ScopedGlobalDb() : Dir(makeTempDir()) {
    const char *Env = std::getenv("EXO_GEMM_PRIOR_DB");
    Saved = Env ? Env : "";
    PriorDb::setGlobalRoot(Dir);
  }
  ~ScopedGlobalDb() { PriorDb::setGlobalRoot(Saved); }
};

} // namespace

TEST(TunedEngineTest, PlanProvenanceReachesEngineStats) {
  if (!exo::jitAvailable())
    GTEST_SKIP() << "no JIT toolchain";
  auto [Mr, Nr] = nonModelTile(96, 80, 64);
  if (Mr == 0)
    GTEST_SKIP() << "host has a single admissible tile";
  ScopedGlobalDb G;
  ASSERT_FALSE(static_cast<bool>(
      PriorDb::global().store(tunedRecord(96, 80, 64, Mr, Nr))));

  Engine E{EngineConfig{}}; // Auto series, TunedPriors on by default
  exo::Expected<PlanChoice> Plan =
      E.planFor(Trans::None, Trans::None, 96, 80, 64);
  ASSERT_TRUE(static_cast<bool>(Plan)) << Plan.takeError().message();
  EXPECT_STREQ(Plan->Source, "tuned");
  EXPECT_EQ(Plan->MR, Mr);
  EXPECT_EQ(Plan->NR, Nr);
  EXPECT_EQ(E.stats().PlansFromTuned, 1u);
  EXPECT_EQ(E.stats().PlansFromModel, 0u);

  // A shape without a record still plans from the model; both counters
  // coexist in one Engine.
  exo::Expected<PlanChoice> Other =
      E.planFor(Trans::None, Trans::None, 33, 65, 17);
  ASSERT_TRUE(static_cast<bool>(Other)) << Other.takeError().message();
  EXPECT_STREQ(Other->Source, "model");
  EXPECT_EQ(E.stats().PlansFromTuned, 1u);
  EXPECT_EQ(E.stats().PlansFromModel, 1u);

  // The ablation arm ignores the same on-disk record.
  EngineConfig ModelCfg;
  ModelCfg.TunedPriors = false;
  Engine ME(ModelCfg);
  exo::Expected<PlanChoice> MPlan =
      ME.planFor(Trans::None, Trans::None, 96, 80, 64);
  ASSERT_TRUE(static_cast<bool>(MPlan)) << MPlan.takeError().message();
  EXPECT_STREQ(MPlan->Source, "model");
  EXPECT_EQ(ME.stats().PlansFromTuned, 0u);
}

TEST(TunedEngineTest, TunedPlanIsBitwiseIdenticalToModelPlan) {
  // The deterministic-seed search smoke's correctness half: whatever tile
  // and blocking a tuned record steers the planner to, the result must be
  // bitwise-identical to the model plan's on the same integer-valued
  // inputs — tuning may only change speed, never values.
  if (!exo::jitAvailable())
    GTEST_SKIP() << "no JIT toolchain";
  const int64_t M = 96, N = 80, K = 64;
  auto [Mr, Nr] = nonModelTile(M, N, K);
  if (Mr == 0)
    GTEST_SKIP() << "host has a single admissible tile";
  ScopedGlobalDb G;
  PriorRecord R = tunedRecord(M, N, K, Mr, Nr);
  R.MC = 2 * Mr; // non-default blocking + unroll: the full override path
  R.NC = 2 * Nr;
  R.KC = 32;
  R.UnrollCompute = true;
  ASSERT_FALSE(static_cast<bool>(PriorDb::global().store(R)));

  std::vector<float> A(M * K), B(K * N);
  fillInts(A, 0xA11CE);
  fillInts(B, 0xB0B);
  std::vector<float> CTuned(M * N, 0.f), CModel(M * N, 0.f);

  Engine Tuned{EngineConfig{}};
  exo::Expected<PlanChoice> Plan =
      Tuned.planFor(Trans::None, Trans::None, M, N, K);
  ASSERT_TRUE(static_cast<bool>(Plan)) << Plan.takeError().message();
  ASSERT_STREQ(Plan->Source, "tuned"); // the record really is in play
  ASSERT_FALSE(static_cast<bool>(Tuned.sgemm(M, N, K, 1.f, A.data(), M,
                                             B.data(), K, 0.f,
                                             CTuned.data(), M)));

  EngineConfig ModelCfg;
  ModelCfg.TunedPriors = false;
  Engine Model(ModelCfg);
  exo::Expected<PlanChoice> MPlan =
      Model.planFor(Trans::None, Trans::None, M, N, K);
  ASSERT_TRUE(static_cast<bool>(MPlan)) << MPlan.takeError().message();
  ASSERT_STREQ(MPlan->Source, "model");
  ASSERT_FALSE(static_cast<bool>(Model.sgemm(M, N, K, 1.f, A.data(), M,
                                             B.data(), K, 0.f,
                                             CModel.data(), M)));

  EXPECT_EQ(std::memcmp(CTuned.data(), CModel.data(),
                        CTuned.size() * sizeof(float)),
            0)
      << "tuned plan changed numerical results";
}

TEST(TunedSearchSmokeTest, SeededSearchIsReproducible) {
  // EXO_TUNE_SEED pins the search trajectory: two tuneShape runs with the
  // same seed and budget measure the same candidate sequence (GFLOPS
  // vary; the schedule list must not). Tiny budget keeps this a smoke.
  if (!exo::jitAvailable())
    GTEST_SKIP() << "no JIT toolchain";
  ScopedGlobalDb G;
  ScopedEnv Sd("EXO_TUNE_SEED", "424242");
  TuneOptions O = tuneOptionsFromEnv();
  O.Budget = 3;
  O.Seconds = 0.002;
  O.MinMargin = 1e9; // measurement smoke only: nothing can qualify
  PriorDb Db(makeTempDir());

  exo::Expected<TuneResult> R1 = tuneShape(64, 64, 64, O, &Db);
  ASSERT_TRUE(static_cast<bool>(R1)) << R1.message();
  exo::Expected<TuneResult> R2 = tuneShape(64, 64, 64, O, &Db);
  ASSERT_TRUE(static_cast<bool>(R2)) << R2.message();

  EXPECT_FALSE(R1->Stored); // the absurd margin gate held
  ASSERT_EQ(R1->Samples.size(), R2->Samples.size());
  ASSERT_FALSE(R1->Samples.empty());
  // Sample 0 is the model baseline, by contract.
  EXPECT_EQ(R1->Samples[0].MR, R1->ModelMR);
  EXPECT_EQ(R1->Samples[0].NR, R1->ModelNR);
  for (size_t I = 0; I < R1->Samples.size(); ++I) {
    EXPECT_EQ(R1->Samples[I].MR, R2->Samples[I].MR) << "at " << I;
    EXPECT_EQ(R1->Samples[I].NR, R2->Samples[I].NR) << "at " << I;
    EXPECT_EQ(R1->Samples[I].MC, R2->Samples[I].MC) << "at " << I;
    EXPECT_EQ(R1->Samples[I].KC, R2->Samples[I].KC) << "at " << I;
    EXPECT_EQ(R1->Samples[I].UnrollCompute, R2->Samples[I].UnrollCompute)
        << "at " << I;
  }
}
