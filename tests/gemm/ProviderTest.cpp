//===- ProviderTest.cpp - Kernel providers and shape selection ------------===//

#include "gemm/ExoProvider.h"

#include "gemm/Kernels.h"

#include <gtest/gtest.h>

using namespace gemm;

TEST(PickShapeTest, DividesWhenPossible) {
  // A problem that is an exact multiple of a big tile should pick a shape
  // with no edge waste.
  auto [Mr, Nr] = ExoProvider::pickShape(512, 504, &exo::avx2Isa());
  EXPECT_EQ(512 % Mr, 0);
  EXPECT_EQ(504 % Nr, 0);
}

TEST(PickShapeTest, RespectsForcedWidth) {
  // With AVX2 forced, MR must be a multiple of 8.
  for (int64_t M : {49, 196, 784, 3136, 1000})
    for (int64_t N : {64, 512, 2048}) {
      auto [Mr, Nr] = ExoProvider::pickShape(M, N, &exo::avx2Isa());
      EXPECT_EQ(Mr % 8, 0) << M << "x" << N;
      EXPECT_GT(Nr, 0);
    }
}

TEST(PickShapeTest, RegisterPressureRespected) {
  // Any returned shape must fit 16 vector registers at the chosen width:
  // nr*(mr/L) + mr/L + 1 <= 16.
  for (int64_t M : {64, 100, 4096})
    for (int64_t N : {12, 100, 4096}) {
      auto [Mr, Nr] = ExoProvider::pickShape(M, N);
      const exo::IsaLib *Isa = ukr::bestIsaForMr(Mr);
      ASSERT_NE(Isa, nullptr);
      int64_t Vecs = Mr / Isa->lanes(exo::ScalarKind::F32);
      EXPECT_LE(Nr * Vecs + Vecs + 1, 16) << Mr << "x" << Nr;
    }
}

TEST(PickShapeTest, TinyProblemsStillGetAShape) {
  auto [Mr, Nr] = ExoProvider::pickShape(1, 1);
  EXPECT_GE(Mr, 1);
  EXPECT_GE(Nr, 1);
}

TEST(ExoProviderTest, EdgeDisableFallsBackToNullopt) {
  ExoProvider P(8, 12, &exo::avx2Isa());
  EXPECT_TRUE(P.edge(3, 5).has_value());
  P.setSpecializeEdges(false);
  EXPECT_FALSE(P.edge(3, 5).has_value());
}

TEST(ExoProviderTest, MainKernelMatchesRequestedShape) {
  ExoProvider P(16, 6, &exo::avx2Isa());
  MicroKernel K = P.main();
  EXPECT_EQ(K.MR, 16);
  EXPECT_EQ(K.NR, 6);
  EXPECT_NE(K.Fn, nullptr);
}

TEST(FixedProviderTest, NeverSpecializes) {
  FixedProvider P(blisKernel(), "blis");
  EXPECT_FALSE(P.edge(4, 4).has_value());
  EXPECT_EQ(P.main().MR, 8);
  EXPECT_STREQ(P.name(), "blis");
}

TEST(ExoProviderTest, AsyncModeFallsBackThenPicksUpSpecialized) {
  // An unusual shape so the global service cannot already have it ready.
  ExoProvider P(8, 10, &exo::avx2Isa());
  P.setAsync(true);

  // Cold service: main() must answer instantly with the portable stand-in
  // while the background build runs.
  MicroKernel First = P.main();
  ASSERT_NE(First.Fn, nullptr);
  EXPECT_STREQ(First.Name, "exo fallback (compiling)");

  // Once the service has drained, the same provider hands out the
  // specialized kernel (the fallback answer is not memoized).
  ukr::KernelService::global().wait();
  MicroKernel Second = P.main();
  ASSERT_NE(Second.Fn, nullptr);
  EXPECT_STREQ(Second.Name, "exo generated");
  EXPECT_NE(Second.Fn, First.Fn);

  // Both answers compute the same (correct) tile update.
  const int64_t KC = 7, Ldc = 9;
  std::vector<float> Ac(KC * 8), Bc(KC * 10);
  for (size_t I = 0; I < Ac.size(); ++I)
    Ac[I] = static_cast<float>(I % 13) * 0.25f;
  for (size_t I = 0; I < Bc.size(); ++I)
    Bc[I] = static_cast<float>(I % 11) * 0.5f;
  std::vector<float> C1(9 * Ldc + 8, 1.0f), C2 = C1;
  First.Fn(KC, Ldc, Ac.data(), Bc.data(), C1.data());
  Second.Fn(KC, Ldc, Ac.data(), Bc.data(), C2.data());
  for (size_t I = 0; I != C1.size(); ++I)
    ASSERT_NEAR(C1[I], C2[I], 1e-4f) << I;
}
