//===- PackTest.cpp - Packing routines ------------------------------------===//

#include "gemm/Pack.h"

#include <gtest/gtest.h>

#include <vector>

using namespace gemm;

namespace {

/// Column-major matrix filled with value(r, c) = 100*r + c.
std::vector<float> colMajor(int64_t Rows, int64_t Cols, int64_t Ld) {
  std::vector<float> M(Ld * Cols);
  for (int64_t C = 0; C < Cols; ++C)
    for (int64_t R = 0; R < Rows; ++R)
      M[R + C * Ld] = static_cast<float>(100 * R + C);
  return M;
}

} // namespace

TEST(PackTest, PackAFullPanels) {
  const int64_t Mc = 8, Kc = 3, Mr = 4, Lda = 10;
  std::vector<float> A = colMajor(Mc, Kc, Lda);
  std::vector<float> Buf(2 * Kc * Mr, -1.0f);
  packA(A.data(), Lda, Mc, Kc, Mr, 1.0f, EdgePack::ZeroPad, Buf.data());

  // Panel 0 holds rows 0..3; element (k, i) at [k*Mr + i].
  for (int64_t K = 0; K < Kc; ++K)
    for (int64_t I = 0; I < Mr; ++I) {
      EXPECT_EQ(Buf[K * Mr + I], 100.0f * I + K);
      EXPECT_EQ(Buf[Kc * Mr + K * Mr + I], 100.0f * (I + 4) + K);
    }
}

TEST(PackTest, PackAAppliesAlpha) {
  const int64_t Mc = 4, Kc = 2, Mr = 4, Lda = 4;
  std::vector<float> A = colMajor(Mc, Kc, Lda);
  std::vector<float> Buf(Kc * Mr);
  packA(A.data(), Lda, Mc, Kc, Mr, 2.0f, EdgePack::ZeroPad, Buf.data());
  EXPECT_EQ(Buf[0], 0.0f);
  EXPECT_EQ(Buf[1], 200.0f);
  EXPECT_EQ(Buf[Mr + 1], 2.0f * 101.0f);
}

TEST(PackTest, PackAEdgeZeroPad) {
  // Mc = 6 with Mr = 4: second panel has 2 valid rows + 2 zero rows.
  const int64_t Mc = 6, Kc = 2, Mr = 4, Lda = 6;
  std::vector<float> A = colMajor(Mc, Kc, Lda);
  std::vector<float> Buf(2 * Kc * Mr, -1.0f);
  packA(A.data(), Lda, Mc, Kc, Mr, 1.0f, EdgePack::ZeroPad, Buf.data());
  float *Panel1 = Buf.data() + Kc * Mr;
  for (int64_t K = 0; K < Kc; ++K) {
    EXPECT_EQ(Panel1[K * Mr + 0], 100.0f * 4 + K);
    EXPECT_EQ(Panel1[K * Mr + 1], 100.0f * 5 + K);
    EXPECT_EQ(Panel1[K * Mr + 2], 0.0f);
    EXPECT_EQ(Panel1[K * Mr + 3], 0.0f);
  }
}

TEST(PackTest, PackAEdgeTight) {
  // Tight mode lays the short panel out as Kc x MrEff.
  const int64_t Mc = 6, Kc = 3, Mr = 4, Lda = 6;
  std::vector<float> A = colMajor(Mc, Kc, Lda);
  std::vector<float> Buf(2 * Kc * Mr, -1.0f);
  packA(A.data(), Lda, Mc, Kc, Mr, 1.0f, EdgePack::Tight, Buf.data());
  float *Panel1 = Buf.data() + Kc * Mr;
  for (int64_t K = 0; K < Kc; ++K)
    for (int64_t I = 0; I < 2; ++I)
      EXPECT_EQ(Panel1[K * 2 + I], 100.0f * (4 + I) + K);
}

TEST(PackTest, PackBFullAndEdge) {
  // B is Kc x Nc column-major (ldb >= Kc).
  const int64_t Kc = 3, Nc = 5, Nr = 4, Ldb = 8;
  std::vector<float> B = colMajor(Kc, Nc, Ldb);
  std::vector<float> Buf(2 * Kc * Nr, -1.0f);
  packB(B.data(), Ldb, Kc, Nc, Nr, 1.0f, EdgePack::ZeroPad, Buf.data());
  // Panel 0: element (k, j) = B[k + j*Ldb] = 100k + j.
  for (int64_t K = 0; K < Kc; ++K)
    for (int64_t J = 0; J < Nr; ++J)
      EXPECT_EQ(Buf[K * Nr + J], 100.0f * K + J);
  // Panel 1 zero-padded beyond column 4.
  float *Panel1 = Buf.data() + Kc * Nr;
  for (int64_t K = 0; K < Kc; ++K) {
    EXPECT_EQ(Panel1[K * Nr + 0], 100.0f * K + 4);
    EXPECT_EQ(Panel1[K * Nr + 1], 0.0f);
  }

  packB(B.data(), Ldb, Kc, Nc, Nr, 1.0f, EdgePack::Tight, Buf.data());
  Panel1 = Buf.data() + Kc * Nr;
  for (int64_t K = 0; K < Kc; ++K)
    EXPECT_EQ(Panel1[K * 1 + 0], 100.0f * K + 4);
}
