//===- TransposeTest.cpp - op(A) * op(B) handling --------------------------===//

#include "gemm/Gemm.h"

#include "benchutil/Bench.h"
#include "gemm/ExoProvider.h"
#include "gemm/Kernels.h"
#include "gemm/RefGemm.h"

#include <gtest/gtest.h>

#include <vector>

using namespace gemm;

namespace {

/// Materializes the transpose of a column-major Rows x Cols matrix.
std::vector<float> transposed(const std::vector<float> &M, int64_t Rows,
                              int64_t Cols, int64_t Ld) {
  std::vector<float> T(Cols * Rows);
  for (int64_t C = 0; C < Cols; ++C)
    for (int64_t R = 0; R < Rows; ++R)
      T[C + R * Cols] = M[R + C * Ld];
  return T;
}

void runCase(Trans TA, Trans TB) {
  if (!baselineKernelsUsable())
    GTEST_SKIP();
  const int64_t M = 61, N = 45, K = 38;
  // op(A) is M x K; storage depends on the transposition.
  int64_t ARows = TA == Trans::None ? M : K;
  int64_t ACols = TA == Trans::None ? K : M;
  int64_t BRows = TB == Trans::None ? K : N;
  int64_t BCols = TB == Trans::None ? N : K;
  std::vector<float> A(ARows * ACols), B(BRows * BCols), C(M * N);
  benchutil::fillRandom(A.data(), A.size(), 1);
  benchutil::fillRandom(B.data(), B.size(), 2);
  benchutil::fillRandom(C.data(), C.size(), 3);
  std::vector<float> Want = C;

  // Reference through explicit transposition.
  std::vector<float> AEff =
      TA == Trans::None ? A : transposed(A, K, M, K);
  std::vector<float> BEff =
      TB == Trans::None ? B : transposed(B, N, K, N);
  refSgemm(M, N, K, 1.25f, AEff.data(), M, BEff.data(), K, 0.75f,
           Want.data(), M);

  ExoProvider P(8, 12);
  GemmPlan Plan = GemmPlan::standard(P);
  exo::Error Err =
      blisGemmT(Plan, P, TA, TB, M, N, K, 1.25f, A.data(), ARows, B.data(),
                BRows, 0.75f, C.data(), M);
  ASSERT_FALSE(Err) << Err.message();
  float D = benchutil::maxAbsDiff(C.data(), Want.data(), C.size());
  EXPECT_LT(D, 1e-3f) << "TA=" << static_cast<int>(TA)
                      << " TB=" << static_cast<int>(TB);
}

} // namespace

TEST(TransposeTest, NN) { runCase(Trans::None, Trans::None); }
TEST(TransposeTest, TN) { runCase(Trans::Transpose, Trans::None); }
TEST(TransposeTest, NT) { runCase(Trans::None, Trans::Transpose); }
TEST(TransposeTest, TT) { runCase(Trans::Transpose, Trans::Transpose); }

TEST(TransposeTest, StridedPackingAgreesWithPlain) {
  // packA == packAStrided(1, lda) by definition; sanity-check the wrapper.
  const int64_t Mc = 7, Kc = 5, Mr = 4, Lda = 9;
  std::vector<float> A(Lda * Kc);
  benchutil::fillRandom(A.data(), A.size(), 4);
  std::vector<float> B1(2 * Kc * Mr, -1), B2(2 * Kc * Mr, -2);
  packA(A.data(), Lda, Mc, Kc, Mr, 1.5f, EdgePack::ZeroPad, B1.data());
  packAStrided(A.data(), 1, Lda, Mc, Kc, Mr, 1.5f, EdgePack::ZeroPad,
               B2.data());
  EXPECT_EQ(B1, B2);
}
