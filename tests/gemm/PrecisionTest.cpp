//===- PrecisionTest.cpp - The precision dimension end to end -------------===//
//
// Differential coverage for Engine::gemm's dtype axis (docs/PRECISION.md):
// every dtype, both transposes, team sizes {1, 4}, against the typed
// reference refGemmT. The comparison discipline follows the accumulation
// contract: I8I32 and F32 are exact (bitwise / same-rounding), f16 and
// bf16 are ULP-bounded because the engine rounds C to storage once per Kc
// depth block while the oracle rounds once at the end. The f32 door is
// additionally pinned bitwise against Engine::sgemm — the refactor's
// "nothing moved for f32" guarantee.
//
//===----------------------------------------------------------------------===//

#include "gemm/DType.h"
#include "gemm/Engine.h"
#include "gemm/RefGemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

using namespace gemm;

namespace {

//===----------------------------------------------------------------------===//
// Storage conversion (the single f16/bf16 <-> f32 definition)
//===----------------------------------------------------------------------===//

TEST(PrecisionTest, F16ConversionRoundTrips) {
  // Exactly representable values survive the round trip bit-for-bit.
  for (float F : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 1024.0f, 65504.0f,
                  -65504.0f, 6.103515625e-05f /* min normal */}) {
    EXPECT_EQ(f16ToF32(f32ToF16(F)), F) << F;
  }
  // Round-to-nearest-even at the halfway point: 1 + 2^-11 is exactly
  // between 1.0 and the next f16 (1 + 2^-10); ties go to the even
  // mantissa, i.e. down to 1.0.
  EXPECT_EQ(f16ToF32(f32ToF16(1.0f + 0x1p-11f)), 1.0f);
  // Just above the tie rounds up.
  EXPECT_EQ(f16ToF32(f32ToF16(1.0f + 0x1p-11f + 0x1p-20f)), 1.0f + 0x1p-10f);
  // Overflow saturates to infinity; NaN stays NaN.
  EXPECT_TRUE(std::isinf(f16ToF32(f32ToF16(1e6f))));
  EXPECT_TRUE(std::isnan(f16ToF32(f32ToF16(std::nanf("")))));
  // Subnormal f16: 2^-24 is the smallest positive value.
  EXPECT_EQ(f16ToF32(f32ToF16(0x1p-24f)), 0x1p-24f);
}

TEST(PrecisionTest, Bf16ConversionRoundTrips) {
  for (float F : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 3.0f, 1e30f, -1e-30f}) {
    // bf16 -> f32 is exact (top half of the f32 pattern), so anything with
    // <= 7 mantissa bits round-trips.
    if (F == 1e30f || F == -1e-30f)
      continue;
    EXPECT_EQ(bf16ToF32(f32ToBf16(F)), F) << F;
  }
  // RNE tie: 1 + 2^-8 sits between 1.0 and 1 + 2^-7; even goes down.
  EXPECT_EQ(bf16ToF32(f32ToBf16(1.0f + 0x1p-8f)), 1.0f);
  EXPECT_EQ(bf16ToF32(f32ToBf16(1.0f + 0x1p-8f + 0x1p-16f)), 1.0f + 0x1p-7f);
  EXPECT_TRUE(std::isnan(bf16ToF32(f32ToBf16(std::nanf("")))));
}

//===----------------------------------------------------------------------===//
// Differential suite
//===----------------------------------------------------------------------===//

/// Fills \p Bytes of \p Ty storage with values drawn in the dtype's
/// comfortable range: [-1, 1) rounded to storage for the float types,
/// [-128, 127] for i8.
void fillStorage(DType Ty, void *P, size_t Elems, unsigned Seed) {
  std::mt19937 Rng(Seed);
  if (Ty == DType::I8I32) {
    std::uniform_int_distribution<int> D(-128, 127);
    int8_t *I = static_cast<int8_t *>(P);
    for (size_t X = 0; X != Elems; ++X)
      I[X] = static_cast<int8_t>(D(Rng));
    return;
  }
  std::uniform_real_distribution<float> D(-1.0f, 1.0f);
  if (Ty == DType::F32) {
    float *F = static_cast<float *>(P);
    for (size_t X = 0; X != Elems; ++X)
      F[X] = D(Rng);
    return;
  }
  uint16_t *H = static_cast<uint16_t *>(P);
  for (size_t X = 0; X != Elems; ++X)
    H[X] = Ty == DType::F16 ? f32ToF16(D(Rng)) : f32ToBf16(D(Rng));
}

/// Seeds C storage (including the i32 output for I8I32).
void fillOut(DType Ty, void *P, size_t Elems, unsigned Seed) {
  if (Ty != DType::I8I32)
    return fillStorage(Ty, P, Elems, Seed);
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int> D(-1000, 1000);
  int32_t *I = static_cast<int32_t *>(P);
  for (size_t X = 0; X != Elems; ++X)
    I[X] = D(Rng);
}

/// Storage-rounding unit for the ULP-bounded comparisons.
float storageEps(DType Ty) { return Ty == DType::F16 ? 0x1p-10f : 0x1p-7f; }

/// Compares engine output against the typed oracle per the dtype contract.
void expectMatches(DType Ty, const void *Got, const void *Want,
                   int64_t Elems, int64_t K, const char *What) {
  if (Ty == DType::I8I32) {
    EXPECT_EQ(0, std::memcmp(Got, Want, Elems * sizeof(int32_t))) << What;
    return;
  }
  if (Ty == DType::F32) {
    // Same kernels, same blocking as sgemm: held to the f32 tolerance the
    // rest of the suite uses (double-accumulating oracle vs f32 FMAs).
    const float *G = static_cast<const float *>(Got);
    const float *W = static_cast<const float *>(Want);
    for (int64_t X = 0; X != Elems; ++X)
      ASSERT_NEAR(G[X], W[X], 1e-4f * static_cast<float>(K) + 1e-5f)
          << What << " elem " << X;
    return;
  }
  // f16/bf16: the engine rounds to storage once per Kc depth block, the
  // oracle once at the end; each rounding moves the value by at most half
  // a storage ULP, and the f32-vs-double accumulation adds K ulps of f32
  // noise (negligible at these K). A few storage ULPs of headroom covers
  // every legal blocking.
  const uint16_t *G = static_cast<const uint16_t *>(Got);
  const uint16_t *W = static_cast<const uint16_t *>(Want);
  const float Eps = storageEps(Ty);
  for (int64_t X = 0; X != Elems; ++X) {
    float Gf = Ty == DType::F16 ? f16ToF32(G[X]) : bf16ToF32(G[X]);
    float Wf = Ty == DType::F16 ? f16ToF32(W[X]) : bf16ToF32(W[X]);
    ASSERT_NEAR(Gf, Wf, 4.0f * Eps * (1.0f + std::fabs(Wf)))
        << What << " elem " << X;
  }
}

struct Shape {
  int64_t M, N, K;
};

void runDifferential(DType Ty) {
  const Shape Shapes[] = {{17, 13, 19}, {64, 48, 96}, {33, 130, 65}};
  for (int64_t Threads : {int64_t{1}, int64_t{4}}) {
    EngineConfig Cfg;
    Cfg.Threads = Threads;
    Engine E(Cfg);
    for (const Shape &S : Shapes)
      for (Trans TA : {Trans::None, Trans::Transpose})
        for (Trans TB : {Trans::None, Trans::Transpose}) {
          const int64_t ARows = TA == Trans::None ? S.M : S.K;
          const int64_t BRows = TB == Trans::None ? S.K : S.N;
          const unsigned InB = dtypeInBytes(Ty), OutB = dtypeOutBytes(Ty);
          std::vector<unsigned char> A(S.M * S.K * InB),
              B(S.K * S.N * InB), C0(S.M * S.N * OutB);
          fillStorage(Ty, A.data(), S.M * S.K, 101);
          fillStorage(Ty, B.data(), S.K * S.N, 202);
          fillOut(Ty, C0.data(), S.M * S.N, 303);
          // Integer scales so the same (alpha, beta) is legal for I8I32.
          const double Alpha = 1.0, Beta = Ty == DType::I8I32 ? 2.0 : 1.0;
          std::vector<unsigned char> CGot = C0, CWant = C0;
          exo::Error Err =
              E.gemm(Ty, TA, TB, S.M, S.N, S.K, Alpha, A.data(), ARows,
                     B.data(), BRows, Beta, CGot.data(), S.M);
          ASSERT_FALSE(Err) << Err.message();
          refGemmT(Ty, TA, TB, S.M, S.N, S.K, Alpha, A.data(), ARows,
                   B.data(), BRows, Beta, CWant.data(), S.M);
          std::string What = std::string(dtypeName(Ty)) + " " +
                             std::to_string(S.M) + "x" +
                             std::to_string(S.N) + "x" +
                             std::to_string(S.K) + " TA=" +
                             std::to_string(TA == Trans::Transpose) +
                             " TB=" +
                             std::to_string(TB == Trans::Transpose) +
                             " threads=" + std::to_string(Threads);
          expectMatches(Ty, CGot.data(), CWant.data(), S.M * S.N, S.K,
                        What.c_str());
        }
  }
}

TEST(PrecisionTest, DifferentialF32) { runDifferential(DType::F32); }
TEST(PrecisionTest, DifferentialF16) { runDifferential(DType::F16); }
TEST(PrecisionTest, DifferentialBf16) { runDifferential(DType::BF16); }
TEST(PrecisionTest, DifferentialI8) { runDifferential(DType::I8I32); }

//===----------------------------------------------------------------------===//
// The f32 door moved nothing
//===----------------------------------------------------------------------===//

TEST(PrecisionTest, F32DoorIsBitwiseSgemm) {
  Engine E;
  for (const Shape &S : {Shape{31, 29, 37}, Shape{128, 96, 64}}) {
    std::vector<float> A(S.M * S.K), B(S.K * S.N), C0(S.M * S.N);
    fillStorage(DType::F32, A.data(), A.size(), 7);
    fillStorage(DType::F32, B.data(), B.size(), 8);
    fillStorage(DType::F32, C0.data(), C0.size(), 9);
    std::vector<float> CTyped = C0, CF32 = C0;
    exo::Error E1 = E.gemm(DType::F32, Trans::None, Trans::None, S.M, S.N,
                           S.K, 1.25, A.data(), S.M, B.data(), S.K, 0.75,
                           CTyped.data(), S.M);
    ASSERT_FALSE(E1) << E1.message();
    exo::Error E2 = E.sgemm(S.M, S.N, S.K, 1.25f, A.data(), S.M, B.data(),
                            S.K, 0.75f, CF32.data(), S.M);
    ASSERT_FALSE(E2) << E2.message();
    EXPECT_EQ(0, std::memcmp(CTyped.data(), CF32.data(),
                             CTyped.size() * sizeof(float)));
  }
}

//===----------------------------------------------------------------------===//
// Int8 edges
//===----------------------------------------------------------------------===//

TEST(PrecisionTest, Int8WraparoundMatchesReference) {
  // 127 * 127 * 140000 = 2.258e9 > 2^31: the accumulator wraps. The
  // engine's contract is two's-complement wraparound, exactly what the
  // uint32-detour oracle computes.
  const int64_t M = 1, N = 1, K = 140000;
  std::vector<int8_t> A(K, 127), B(K, 127);
  int32_t CGot = 0, CWant = 0;
  Engine E;
  exo::Error Err = E.gemm(DType::I8I32, Trans::None, Trans::None, M, N, K,
                          1.0, A.data(), M, B.data(), K, 0.0, &CGot, M);
  ASSERT_FALSE(Err) << Err.message();
  refGemmT(DType::I8I32, Trans::None, Trans::None, M, N, K, 1.0, A.data(),
           M, B.data(), K, 0.0, &CWant, M);
  EXPECT_EQ(CGot, CWant);
  EXPECT_LT(CWant, 0) << "expected the accumulator to wrap negative";
}

TEST(PrecisionTest, Int8ExtremesExact) {
  // The full corner set, including -128 whose product with itself (16384)
  // stresses the widening multiply.
  const int64_t M = 8, N = 8, K = 64;
  std::vector<int8_t> A(M * K), B(K * N);
  const int8_t Vals[] = {-128, -127, -1, 0, 1, 127};
  for (size_t X = 0; X != A.size(); ++X)
    A[X] = Vals[X % 6];
  for (size_t X = 0; X != B.size(); ++X)
    B[X] = Vals[(X * 5 + 3) % 6];
  std::vector<int32_t> CGot(M * N, 11), CWant(M * N, 11);
  Engine E;
  exo::Error Err = E.gemm(DType::I8I32, Trans::None, Trans::None, M, N, K,
                          -3.0, A.data(), M, B.data(), K, 5.0, CGot.data(),
                          M);
  ASSERT_FALSE(Err) << Err.message();
  refGemmT(DType::I8I32, Trans::None, Trans::None, M, N, K, -3.0, A.data(),
           M, B.data(), K, 5.0, CWant.data(), M);
  EXPECT_EQ(0, std::memcmp(CGot.data(), CWant.data(),
                           CGot.size() * sizeof(int32_t)));
}

TEST(PrecisionTest, Int8RejectsFractionalScales) {
  const int64_t M = 4, N = 4, K = 4;
  std::vector<int8_t> A(M * K, 1), B(K * N, 1);
  std::vector<int32_t> C(M * N, 0);
  Engine E;
  EXPECT_TRUE(bool(E.gemm(DType::I8I32, Trans::None, Trans::None, M, N, K,
                          0.5, A.data(), M, B.data(), K, 0.0, C.data(), M)));
  EXPECT_TRUE(bool(E.gemm(DType::I8I32, Trans::None, Trans::None, M, N, K,
                          1.0, A.data(), M, B.data(), K, 0.25, C.data(),
                          M)));
  // Integer-valued doubles are fine.
  exo::Error Ok = E.gemm(DType::I8I32, Trans::None, Trans::None, M, N, K,
                         2.0, A.data(), M, B.data(), K, -1.0, C.data(), M);
  EXPECT_FALSE(Ok) << Ok.message();
}

//===----------------------------------------------------------------------===//
// Degenerate typed calls
//===----------------------------------------------------------------------===//

TEST(PrecisionTest, TypedBetaZeroOverwritesGarbage) {
  // Beta == 0 must not read C: storage full of NaN bit patterns comes out
  // as the clean product (BLAS semantics in storage type).
  const int64_t M = 6, N = 5, K = 0;
  for (DType Ty : {DType::F16, DType::BF16}) {
    std::vector<uint16_t> C(M * N, 0x7e00); // f16 NaN; also a bf16 NaN
    Engine E;
    exo::Error Err = E.gemm(Ty, Trans::None, Trans::None, M, N, K, 1.0,
                            nullptr, M, nullptr, 1, 0.0, C.data(), M);
    ASSERT_FALSE(Err) << Err.message();
    for (uint16_t V : C)
      EXPECT_EQ(V, 0);
  }
  std::vector<int32_t> Ci(M * N, -777);
  Engine E;
  exo::Error Err = E.gemm(DType::I8I32, Trans::None, Trans::None, M, N, K,
                          1.0, nullptr, M, nullptr, 1, 0.0, Ci.data(), M);
  ASSERT_FALSE(Err) << Err.message();
  for (int32_t V : Ci)
    EXPECT_EQ(V, 0);
}

} // namespace
