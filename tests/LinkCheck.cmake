# LinkCheck.cmake - markdown link checker (ctest docs_link_check)
#
# Scans README.md and docs/*.md for markdown links `[text](target)` and
# fails when a repo-relative target does not exist. External links
# (http/https/mailto) and in-page anchors are skipped — this gate is
# offline by design. Run directly with:
#
#   cmake -DREPO=/path/to/repo -P tests/LinkCheck.cmake
#
# Implementation note: string(REGEX MATCHALL) corrupts matches that
# contain `](` (CMake escapes the result into a single list element), so
# links are extracted one at a time with REGEX MATCH / CMAKE_MATCH_n.

if(NOT REPO)
  message(FATAL_ERROR "pass -DREPO=<repo root>")
endif()

file(GLOB DOC_FILES "${REPO}/README.md" "${REPO}/docs/*.md")
set(CHECKED 0)
set(NBROKEN 0)

foreach(F ${DOC_FILES})
  file(READ "${F}" REST)
  get_filename_component(DIR "${F}" DIRECTORY)
  file(RELATIVE_PATH REL "${REPO}" "${F}")
  while(REST MATCHES "\\]\\(([^()\n]+)\\)")
    set(TGT "${CMAKE_MATCH_1}")
    # Advance past this link so the next iteration finds the following one.
    string(FIND "${REST}" "](${TGT})" POS)
    string(LENGTH "](${TGT})" LNK_LEN)
    math(EXPR POS "${POS} + ${LNK_LEN}")
    string(SUBSTRING "${REST}" ${POS} -1 REST)
    if(TGT MATCHES "^(https?|mailto):" OR TGT MATCHES "^#")
      continue()
    endif()
    # Drop a section anchor riding on a file link.
    string(REGEX REPLACE "#[^#]*$" "" TGT "${TGT}")
    if(TGT STREQUAL "")
      continue()
    endif()
    math(EXPR CHECKED "${CHECKED} + 1")
    if(NOT EXISTS "${DIR}/${TGT}")
      message(SEND_ERROR "${REL}: broken link -> ${TGT}")
      math(EXPR NBROKEN "${NBROKEN} + 1")
    endif()
  endwhile()
endforeach()

if(NBROKEN GREATER 0)
  message(FATAL_ERROR "link-check: FAILED (${NBROKEN} broken links)")
endif()
list(LENGTH DOC_FILES NFILES)
message(STATUS
        "link-check: PASS (${CHECKED} links across ${NFILES} files)")
