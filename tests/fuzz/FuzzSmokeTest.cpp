//===- FuzzSmokeTest.cpp - Fixed-seed differential-fuzzing sweep ----------===//
//
// The tier-1 face of the fuzzing subsystem (ctest label: fuzz-smoke).
// Everything here is deterministic: the sweep runs the default campaign
// (EXO_FUZZ_SEED / EXO_FUZZ_ITERS override the seed and size), the fault
// campaign proves the oracle stack catches an injected rewrite bug and
// minimizes it, and the committed corpus under tests/fuzz/corpus/ replays.
//
//===----------------------------------------------------------------------===//

#include "exo/fuzz/Fuzz.h"

#include "JitCacheTestEnv.h"
#include "exo/jit/Jit.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

using namespace exo;
using namespace exo::fuzz;

namespace {

FuzzOptions smokeOptions() {
  FuzzOptions O;
  O.Seed = fuzzSeedFromEnv(O.Seed);
  O.Iterations = fuzzItersFromEnv(O.Iterations);
  return O;
}

} // namespace

TEST(FuzzEnvTest, KnobsParseAndDefault) {
  unsetenv("EXO_FUZZ_SEED");
  unsetenv("EXO_FUZZ_ITERS");
  EXPECT_EQ(fuzzSeedFromEnv(0xE40), 0xE40u);
  EXPECT_EQ(fuzzItersFromEnv(64), 64);
  setenv("EXO_FUZZ_SEED", "0x1234", 1);
  setenv("EXO_FUZZ_ITERS", "17", 1);
  EXPECT_EQ(fuzzSeedFromEnv(0xE40), 0x1234u);
  EXPECT_EQ(fuzzItersFromEnv(64), 17);
  unsetenv("EXO_FUZZ_SEED");
  unsetenv("EXO_FUZZ_ITERS");
}

TEST(FuzzDeterminismTest, EqualOptionsDrawEqualCampaigns) {
  FuzzOptions O;
  O.Seed = 0xFEED;
  ScheduleFuzzer A(O), B(O);
  for (int K = 0; K != 16; ++K) {
    FuzzSample SA = A.draw();
    FuzzSample SB = B.draw();
    EXPECT_EQ(serializeSample(SA), serializeSample(SB)) << "sample " << K;
  }
}

TEST(FuzzSerializationTest, DrawnSamplesRoundTrip) {
  FuzzOptions O;
  O.Seed = 0xC0FFEE;
  ScheduleFuzzer F(O);
  for (int K = 0; K != 32; ++K) {
    FuzzSample S = F.draw();
    std::string Text = serializeSample(S);
    Expected<FuzzSample> P = parseSample(Text);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message() << "\n" << Text;
    EXPECT_EQ(serializeSample(*P), Text) << "sample " << K;
  }
}

TEST(FuzzSerializationTest, RejectsMalformedFiles) {
  EXPECT_FALSE(static_cast<bool>(parseSample("")));
  EXPECT_FALSE(static_cast<bool>(parseSample("exo-fuzz-repro v2\n")));
  EXPECT_FALSE(static_cast<bool>(
      parseSample("exo-fuzz-repro v1\nshape 0 8 4 0\n")));
  EXPECT_FALSE(static_cast<bool>(
      parseSample("exo-fuzz-repro v1\nbogus-key 1\n")));
  EXPECT_FALSE(static_cast<bool>(
      parseSample("exo-fuzz-repro v1\nstep warp |for i in _: _|\n")));
}

// The headline sweep: a full deterministic campaign, every oracle green.
// With the default options this is >= 64 samples and compares at least
// three kernel families on a JIT-capable host.
TEST(FuzzSmokeTest, DefaultSweepIsCleanAndCoversIsas) {
  FuzzOptions O = smokeOptions();
  ScheduleFuzzer F(O);
  std::optional<FuzzFailure> Fail = F.run();
  if (Fail)
    FAIL() << Fail->Message << "\n  sample: " << Fail->Sample.summary()
           << "\n  repro:\n" << serializeSample(Fail->Sample);

  const FuzzStats &St = F.stats();
  EXPECT_EQ(St.Samples, O.Iterations);
  // Every non-rejected sample passed through the interpreter oracle.
  EXPECT_EQ(St.InterpChecks + St.Rejected, St.Samples);
  // Every PriorEvery-th sample must have drawn its tile from a synthetic
  // prior record that survived the PriorDb format round trip; a shortfall
  // means the record format broke under the fuzzer's tiles.
  if (O.PriorEvery > 0)
    EXPECT_EQ(St.PriorShaped, O.Iterations / O.PriorEvery);
  if (O.Seed == FuzzOptions().Seed && O.Iterations >= FuzzOptions().Iterations) {
    // Known coverage of the default campaign (deterministic by design).
    EXPECT_EQ(St.Rejected, 0);
    EXPECT_GE(St.IsasScheduled.size(), 4u);
    if (jitAvailable()) {
      EXPECT_GE(St.JitChecks, St.Samples / 2);
      EXPECT_GE(St.CrossChecks, St.Samples / 2);
      EXPECT_GE(St.DriverChecks, St.Samples / 8);
      EXPECT_GE(St.IsasCompared.size(), 3u);
    }
  }
}

// An injected rewrite bug (divide silently drops its last iteration) must
// be caught by the oracles and must shrink to a small standalone repro
// that still fails after a serialize/parse round trip.
TEST(FuzzFaultInjectionTest, InjectedFaultIsCaughtAndMinimizes) {
  FuzzOptions O;
  O.Seed = FuzzOptions().Seed;
  O.Iterations = 16;
  O.Fault = "divide";
  ScheduleFuzzer F(O);
  std::optional<FuzzFailure> Fail = F.run();
  ASSERT_TRUE(Fail.has_value())
      << "the injected fault escaped all oracles";
  EXPECT_NE(Fail->Sample.Fault, "");

  int Rounds = 0;
  FuzzSample Min = minimizeSample(Fail->Sample, Fail->Oracle, &Rounds);
  EXPECT_GT(Rounds, 0);
  EXPECT_LE(Min.Steps.size(), Fail->Sample.Steps.size());
  EXPECT_LE(Min.KC, Fail->Sample.KC);

  Expected<FuzzSample> Reloaded = parseSample(serializeSample(Min));
  ASSERT_TRUE(static_cast<bool>(Reloaded)) << Reloaded.message();
  Error E = runOracles(*Reloaded, Fail->Oracle);
  EXPECT_TRUE(static_cast<bool>(E))
      << "minimized repro no longer fails:\n" << serializeSample(Min);
}

// The committed corpus: fault_* entries must still fail (regression repros
// stay live), parse_* entries carry a deliberately malformed step that must
// degrade to a skipped parse error instead of crashing the replayer, and
// everything else must pass with no step skipped (a skipped step means the
// repro drifted from the rewrite engine and checks nothing).
TEST(FuzzCorpusTest, CommittedCorpusReplays) {
  namespace fs = std::filesystem;
  const fs::path Dir(EXO_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;
  int Seen = 0;
  for (const fs::directory_entry &Ent : fs::directory_iterator(Dir)) {
    if (Ent.path().extension() != ".repro")
      continue;
    ++Seen;
    const std::string Name = Ent.path().filename().string();
    Expected<FuzzSample> S = loadSampleFile(Ent.path().string());
    ASSERT_TRUE(static_cast<bool>(S)) << Name << ": " << S.message();
    OracleOutcome Res;
    Error E = runOracles(*S, OracleOptions(), &Res);
    EXPECT_FALSE(Res.Rejected) << Name;
    if (Name.rfind("fault_", 0) == 0) {
      EXPECT_TRUE(static_cast<bool>(E)) << Name << ": fault repro passes";
    } else if (Name.rfind("parse_", 0) == 0) {
      // Reaching this point at all is the regression check: the malformed
      // pattern used to throw out of the occurrence parser and abort.
      EXPECT_FALSE(static_cast<bool>(E)) << Name << ": " << E.message();
      EXPECT_GT(Res.StepsSkipped, 0)
          << Name << ": malformed step unexpectedly applied";
    } else {
      EXPECT_FALSE(static_cast<bool>(E)) << Name << ": " << E.message();
      EXPECT_EQ(Res.StepsSkipped, 0) << Name << ": vacuous corpus entry";
    }
  }
  EXPECT_GE(Seen, 4) << "committed corpus went missing";
}
