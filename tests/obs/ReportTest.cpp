//===- ReportTest.cpp - BENCH_*.json schema and the bench_check gate ------===//

#include "benchutil/Report.h"

#include <gtest/gtest.h>

#include <string>

using namespace benchutil;

namespace {

ReportRow row(const char *Label, const char *Series, double Value,
              const char *Metric = "gflops", const char *Better = "higher") {
  ReportRow R;
  R.Label = Label;
  R.Series = Series;
  R.Metric = Metric;
  R.Better = Better;
  R.Value = Value;
  return R;
}

Json report(std::initializer_list<ReportRow> Rows) {
  Reporter Rep("unit");
  for (const ReportRow &R : Rows)
    Rep.addRow(R);
  return Rep.toJson();
}

TEST(ReportTest, SchemaFields) {
  Reporter Rep("unit");
  Rep.setOption("seconds", 0.25);
  Rep.setField("gemm_threads", 2);
  ReportRow R = row("256", "ALG+EXO", 40.0);
  R.SecondsPerCall = 1e-3;
  R.Reps = 7;
  R.Threads = 2;
  R.M = R.N = R.K = 256;
  obs::StageStat S;
  S.Seconds = 5e-4;
  S.Count = 7;
  S.Counters = {1000, 500, 10};
  R.Stages["gemm.ukr"] = S;
  R.Extra["speedup"] = 1.5;
  Rep.addRow(std::move(R));

  Json J = Rep.toJson();
  EXPECT_EQ(J.num("schema_version"), ReportSchemaVersion);
  EXPECT_EQ(J.str("bench"), "unit");
  ASSERT_NE(J.get("machine"), nullptr);
  EXPECT_FALSE(J.get("machine")->str("arch").empty());
  EXPECT_GE(J.get("machine")->num("hw_threads"), 1);
  EXPECT_EQ(J.get("options")->num("seconds"), 0.25);
  EXPECT_EQ(J.num("gemm_threads"), 2);
  ASSERT_EQ(J.get("rows")->size(), 1u);
  const Json &Row = J.get("rows")->at(0);
  EXPECT_EQ(Row.str("label"), "256");
  EXPECT_EQ(Row.str("series"), "ALG+EXO");
  EXPECT_EQ(Row.str("metric"), "gflops");
  EXPECT_EQ(Row.str("better"), "higher");
  EXPECT_EQ(Row.num("value"), 40.0);
  EXPECT_EQ(Row.num("reps"), 7);
  const Json *Stages = Row.get("stages");
  ASSERT_NE(Stages, nullptr);
  const Json *Ukr = Stages->get("gemm.ukr");
  ASSERT_NE(Ukr, nullptr);
  EXPECT_EQ(Ukr->num("seconds"), 5e-4);
  EXPECT_EQ(Ukr->num("cycles"), 1000);
  EXPECT_EQ(Row.get("counters")->num("speedup"), 1.5);
}

TEST(ReportTest, RoundTripThroughText) {
  Json J = report({row("a", "s", 1.0), row("b", "s", 2.0)});
  auto Back = Json::parse(J.dump());
  ASSERT_TRUE(bool(Back));
  EXPECT_EQ(Back->dump(), J.dump());
}

TEST(ReportTest, IdenticalReportsPass) {
  Json A = report({row("a", "s", 10.0), row("b", "s", 0.5, "seconds",
                                            "lower")});
  auto R = compareReports(A, A, {});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->pass());
  EXPECT_EQ(R->Compared, 2);
  EXPECT_TRUE(R->Improvements.empty());
}

TEST(ReportTest, RegressionBeyondToleranceFails) {
  Json Base = report({row("a", "s", 100.0)});
  Json Fresh = report({row("a", "s", 85.0)});
  auto R = compareReports(Base, Fresh, {});
  ASSERT_TRUE(bool(R));
  EXPECT_FALSE(R->pass());
  ASSERT_EQ(R->Regressions.size(), 1u);
}

TEST(ReportTest, RegressionWithinTolerancePasses) {
  Json Base = report({row("a", "s", 100.0)});
  Json Fresh = report({row("a", "s", 95.0)});
  auto R = compareReports(Base, Fresh, {});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->pass());

  CompareOptions Loose;
  Loose.Tolerance = 0.5;
  Json Worse = report({row("a", "s", 60.0)});
  auto R2 = compareReports(Base, Worse, Loose);
  ASSERT_TRUE(bool(R2));
  EXPECT_TRUE(R2->pass());
}

TEST(ReportTest, LowerIsBetterDirection) {
  Json Base = report({row("pass", "s", 0.010, "seconds", "lower")});
  Json Slower = report({row("pass", "s", 0.013, "seconds", "lower")});
  Json Faster = report({row("pass", "s", 0.007, "seconds", "lower")});
  auto R1 = compareReports(Base, Slower, {});
  ASSERT_TRUE(bool(R1));
  EXPECT_FALSE(R1->pass());
  auto R2 = compareReports(Base, Faster, {});
  ASSERT_TRUE(bool(R2));
  EXPECT_TRUE(R2->pass());
  EXPECT_EQ(R2->Improvements.size(), 1u);
}

TEST(ReportTest, InfoRowsNeverGate) {
  Json Base = report({row("audit", "s", 96.0, "fma_ops", "info")});
  Json Fresh = report({row("audit", "s", 1.0, "fma_ops", "info")});
  auto R = compareReports(Base, Fresh, {});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->pass());
}

TEST(ReportTest, MissingRowsNoteOrFail) {
  Json Base = report({row("a", "s", 10.0), row("b", "s", 10.0)});
  Json Fresh = report({row("a", "s", 10.0), row("c", "s", 10.0)});
  auto R = compareReports(Base, Fresh, {});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->pass());
  EXPECT_FALSE(R->Notes.empty());

  CompareOptions Strict;
  Strict.RequireAllRows = true;
  auto R2 = compareReports(Base, Fresh, Strict);
  ASSERT_TRUE(bool(R2));
  EXPECT_FALSE(R2->pass());
}

TEST(ReportTest, SchemaOrBenchMismatchIsAnError) {
  Json A = report({row("a", "s", 1.0)});
  Json B = report({row("a", "s", 1.0)});
  B.set("schema_version", ReportSchemaVersion + 1);
  EXPECT_FALSE(bool(compareReports(A, B, {})));

  Json C = report({row("a", "s", 1.0)});
  C.set("bench", "other");
  EXPECT_FALSE(bool(compareReports(A, C, {})));
}

} // namespace
