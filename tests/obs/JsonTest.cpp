//===- JsonTest.cpp - benchutil::Json parse/print round trips -------------===//

#include "benchutil/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using benchutil::Json;

namespace {

TEST(JsonTest, ScalarRoundTrip) {
  auto J = Json::parse("{\"a\": 1, \"b\": -2.5, \"c\": true, \"d\": null, "
                       "\"e\": \"hi\"}");
  ASSERT_TRUE(bool(J));
  EXPECT_EQ(J->num("a"), 1);
  EXPECT_EQ(J->num("b"), -2.5);
  ASSERT_NE(J->get("c"), nullptr);
  EXPECT_TRUE(J->get("c")->asBool());
  EXPECT_TRUE(J->get("d")->isNull());
  EXPECT_EQ(J->str("e"), "hi");
  EXPECT_EQ(J->get("missing"), nullptr);
  EXPECT_EQ(J->num("missing", 42), 42);
}

TEST(JsonTest, DumpParsesBackIdentically) {
  Json Root = Json::object();
  Root.set("schema_version", 1);
  Root.set("name", "round \"trip\"\n\t");
  Json Arr = Json::array();
  Arr.push(1.5);
  Arr.push(false);
  Arr.push(Json());
  Json Inner = Json::object();
  Inner.set("k", "v");
  Arr.push(std::move(Inner));
  Root.set("rows", std::move(Arr));

  std::string Text = Root.dump();
  auto Back = Json::parse(Text);
  ASSERT_TRUE(bool(Back));
  // Re-dumping the parse must reproduce the text exactly (objects keep
  // insertion order).
  EXPECT_EQ(Back->dump(), Text);
  EXPECT_EQ(Back->num("schema_version"), 1);
  EXPECT_EQ(Back->str("name"), "round \"trip\"\n\t");
  ASSERT_EQ(Back->get("rows")->size(), 4u);
  EXPECT_EQ(Back->get("rows")->at(3).str("k"), "v");
}

TEST(JsonTest, IntegersPrintWithoutDecimalPoint) {
  Json J = Json::object();
  J.set("i", 1754000000);
  J.set("f", 0.25);
  std::string Text = J.dump();
  EXPECT_NE(Text.find("\"i\": 1754000000"), std::string::npos) << Text;
  EXPECT_NE(Text.find("\"f\": 0.25"), std::string::npos) << Text;
}

TEST(JsonTest, UnicodeEscapes) {
  auto J = Json::parse("{\"s\": \"a\\u0041\\n\"}");
  ASSERT_TRUE(bool(J));
  EXPECT_EQ(J->str("s"), "aA\n");
}

TEST(JsonTest, ParseErrorsAreErrors) {
  EXPECT_FALSE(bool(Json::parse("{")));
  EXPECT_FALSE(bool(Json::parse("{\"a\": }")));
  EXPECT_FALSE(bool(Json::parse("[1, 2,]")));
  EXPECT_FALSE(bool(Json::parse("")));
  EXPECT_FALSE(bool(Json::parse("{} trailing")));
}

TEST(JsonTest, StoreAndLoad) {
  std::string Path = ::testing::TempDir() + "/json_store_test.json";
  Json J = Json::object();
  J.set("x", 7);
  ASSERT_FALSE(bool(J.store(Path)));
  auto Back = Json::load(Path);
  ASSERT_TRUE(bool(Back));
  EXPECT_EQ(Back->num("x"), 7);
  std::remove(Path.c_str());
  EXPECT_FALSE(bool(Json::load(Path)));
}

} // namespace
