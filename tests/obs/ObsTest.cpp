//===- ObsTest.cpp - Trace spans, fake counters, chrome trace -------------===//

#include "obs/Obs.h"

#include "benchutil/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace {

/// Every test runs with a clean, enabled trace and the deterministic fake
/// counter backend, and leaves tracing disabled afterwards.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::setEnabled(true);
    obs::setCounterBackend(obs::CounterBackend::Fake);
    obs::clear();
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::setCounterBackend(obs::CounterBackend::Off);
    obs::clear();
  }
};

TEST_F(ObsTest, LeafSpanIsExactlyOneQuantum) {
  { obs::Span S("test.leaf"); }
  std::vector<obs::Event> Ev = obs::events();
  ASSERT_EQ(Ev.size(), 1u);
  EXPECT_STREQ(Ev[0].Name, "test.leaf");
  EXPECT_FALSE(Ev[0].IsMark);
  // Fake backend: +1000 cycles / +500 instructions / +10 cache misses per
  // read; a leaf span (one begin read, one end read) sees one quantum.
  EXPECT_EQ(Ev[0].Delta.Cycles, 1000u);
  EXPECT_EQ(Ev[0].Delta.Instructions, 500u);
  EXPECT_EQ(Ev[0].Delta.CacheMisses, 10u);
}

TEST_F(ObsTest, NestedSpansAccumulateQuanta) {
  {
    obs::Span Outer("test.outer");
    { obs::Span Inner("test.inner"); }
    { obs::Span Inner("test.inner"); }
  }
  std::map<std::string, obs::StageStat> Tot = obs::stageTotals();
  ASSERT_EQ(Tot.count("test.outer"), 1u);
  ASSERT_EQ(Tot.count("test.inner"), 1u);
  EXPECT_EQ(Tot["test.inner"].Count, 2u);
  EXPECT_EQ(Tot["test.inner"].Counters.Cycles, 2000u);
  // The outer span encloses 4 nested reads (2 inner begin/end pairs), so
  // its delta is exactly 4 + 1 quanta.
  EXPECT_EQ(Tot["test.outer"].Count, 1u);
  EXPECT_EQ(Tot["test.outer"].Counters.Cycles, 5000u);
  EXPECT_EQ(Tot["test.outer"].Counters.Instructions, 2500u);
  EXPECT_EQ(Tot["test.outer"].Counters.CacheMisses, 50u);
}

TEST_F(ObsTest, MarksAreInstant) {
  obs::mark("test.mark");
  obs::mark("test.mark");
  std::vector<obs::Event> Ev = obs::events();
  ASSERT_EQ(Ev.size(), 2u);
  EXPECT_TRUE(Ev[0].IsMark);
  EXPECT_EQ(Ev[0].DurNs, 0u);
  EXPECT_TRUE(Ev[0].Delta.isZero());
  EXPECT_EQ(obs::stageTotals()["test.mark"].Count, 2u);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  obs::setEnabled(false);
  {
    obs::Span S("test.off");
    obs::mark("test.off.mark");
  }
  obs::setEnabled(true);
  EXPECT_TRUE(obs::events().empty());
}

TEST_F(ObsTest, SpanActiveAtDisableStillRecords) {
  // A span constructed while tracing is on records even if tracing is
  // flipped off before it ends (Active is latched at construction).
  {
    obs::Span S("test.latched");
    obs::setEnabled(false);
  }
  obs::setEnabled(true);
  ASSERT_EQ(obs::events().size(), 1u);
}

TEST_F(ObsTest, ThreadsGetDistinctStableIds) {
  uint32_t MainTid = obs::threadId();
  { obs::Span S("test.main"); }
  uint32_t T1 = 0, T2 = 0;
  std::thread A([&] {
    T1 = obs::threadId();
    obs::Span S("test.worker");
  });
  A.join();
  std::thread B([&] {
    T2 = obs::threadId();
    obs::Span S("test.worker");
  });
  B.join();
  EXPECT_NE(T1, MainTid);
  EXPECT_NE(T2, MainTid);
  EXPECT_NE(T1, T2);

  // Events recorded by exited threads survive in the snapshot, attributed
  // to their recorder.
  std::set<uint32_t> Tids;
  for (const obs::Event &E : obs::events())
    Tids.insert(E.Tid);
  EXPECT_EQ(Tids.size(), 3u);
}

TEST_F(ObsTest, ClearDropsEventsKeepsIds) {
  uint32_t Before = obs::threadId();
  { obs::Span S("test.cleared"); }
  obs::clear();
  EXPECT_TRUE(obs::events().empty());
  EXPECT_EQ(obs::threadId(), Before);
}

TEST_F(ObsTest, ChromeTraceIsValidJsonWithThreadLanes) {
  { obs::Span S("test.lane.main"); }
  std::thread A([] { obs::Span S("test.lane.worker"); });
  A.join();
  obs::mark("test.lane.mark");

  std::string Path = ::testing::TempDir() + "/obs_chrome_trace.json";
  ASSERT_FALSE(bool(obs::writeChromeTrace(Path)));
  auto J = benchutil::Json::load(Path);
  ASSERT_TRUE(bool(J)) << J.takeError().message();
  const benchutil::Json *Ev = J->get("traceEvents");
  ASSERT_NE(Ev, nullptr);
  ASSERT_TRUE(Ev->isArray());

  std::set<double> SpanTids;
  int Metadata = 0, Complete = 0, Instant = 0;
  for (size_t I = 0; I != Ev->size(); ++I) {
    const benchutil::Json &E = Ev->at(I);
    std::string Ph = E.str("ph");
    if (Ph == "M") {
      ++Metadata;
      EXPECT_EQ(E.str("name"), "thread_name");
    } else if (Ph == "X") {
      ++Complete;
      SpanTids.insert(E.num("tid", -1));
    } else if (Ph == "i") {
      ++Instant;
    }
  }
  EXPECT_GE(Metadata, 2);
  EXPECT_EQ(Complete, 2);
  EXPECT_EQ(Instant, 1);
  EXPECT_EQ(SpanTids.size(), 2u) << "one lane per recording thread";
  std::remove(Path.c_str());
}

TEST_F(ObsTest, CounterBackendNames) {
  EXPECT_STREQ(obs::counterBackendName(), "fake");
  obs::setCounterBackend(obs::CounterBackend::Off);
  EXPECT_STREQ(obs::counterBackendName(), "off");
  obs::CounterValues V;
  EXPECT_FALSE(obs::readCounters(V));
  EXPECT_TRUE(V.isZero());
}

TEST_F(ObsTest, DisabledModeIsCheap) {
  obs::setEnabled(false);
  // Not a benchmark: a generous ceiling that only trips if disabled spans
  // start doing real work (allocation, locking, counter reads).
  constexpr int N = 1000000;
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I != N; ++I)
    obs::Span S("test.disabled");
  double Ns = std::chrono::duration<double, std::nano>(
                  std::chrono::steady_clock::now() - Start)
                  .count() /
              N;
  obs::setEnabled(true);
  EXPECT_LT(Ns, 250.0) << "disabled span costs " << Ns << " ns";
  EXPECT_TRUE(obs::events().empty());
}

} // namespace
