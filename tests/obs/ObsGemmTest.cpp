//===- ObsGemmTest.cpp - Observability of the GEMM hot path ---------------===//
//
// Stage attribution of blisGemm (packA / packB / micro-kernel / barrier),
// bitwise identity of results with tracing on vs off, and one trace lane
// per worker on the threaded path.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "benchutil/Bench.h"
#include "benchutil/Json.h"
#include "gemm/Gemm.h"
#include "gemm/Kernels.h"
#include "gemm/MicroKernel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

using namespace gemm;

namespace {

class ObsGemmTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!baselineKernelsUsable())
      GTEST_SKIP() << "no AVX2 baseline kernels on this host";
    obs::setCounterBackend(obs::CounterBackend::Fake);
    obs::setEnabled(true);
    obs::clear();
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::setCounterBackend(obs::CounterBackend::Off);
    obs::clear();
  }

  /// Runs one M x N x K SGEMM with the BLIS-style baseline kernel.
  void runGemm(int64_t M, int64_t N, int64_t K, float *C, int Threads = 1) {
    std::vector<float> A(M * K), B(K * N);
    benchutil::fillRandom(A.data(), A.size(), 5);
    benchutil::fillRandom(B.data(), B.size(), 6);
    FixedProvider P(blisKernel(), "BLIS");
    GemmPlan Plan = GemmPlan::standard(P);
    Plan.Threads = Threads;
    exo::Error E = blisGemm(Plan, P, M, N, K, 1.0f, A.data(), M, B.data(), K,
                            1.0f, C, M);
    ASSERT_FALSE(bool(E)) << E.message();
  }
};

TEST_F(ObsGemmTest, StagesAttributeTimeAndCounters) {
  std::vector<float> C(128 * 128, 0.f);
  runGemm(128, 128, 128, C.data());

  std::map<std::string, obs::StageStat> Tot = obs::stageTotals();
  for (const char *Stage :
       {"gemm.call", "gemm.packA", "gemm.packB", "gemm.ukr"}) {
    ASSERT_EQ(Tot.count(Stage), 1u) << Stage << " missing from trace";
    EXPECT_GT(Tot[Stage].Count, 0u) << Stage;
    EXPECT_GT(Tot[Stage].Seconds, 0.0) << Stage;
    // Fake backend quanta prove the counter plumbing reached every stage.
    EXPECT_GT(Tot[Stage].Counters.Cycles, 0u) << Stage;
  }
  // The whole-call span must dominate its own stages' wall time.
  EXPECT_GE(Tot["gemm.call"].Seconds, Tot["gemm.ukr"].Seconds);
}

TEST_F(ObsGemmTest, ResultsBitwiseIdenticalWithTracingOff) {
  const int64_t M = 96, N = 96, K = 96;
  std::vector<float> COn(M * N, 0.25f), COff(M * N, 0.25f);

  runGemm(M, N, K, COn.data());
  obs::setEnabled(false);
  runGemm(M, N, K, COff.data());
  obs::setEnabled(true);

  EXPECT_EQ(std::memcmp(COn.data(), COff.data(), COn.size() * sizeof(float)),
            0)
      << "tracing must only observe, never change results";
}

TEST_F(ObsGemmTest, ThreadedRunTracesOneLanePerWorker) {
  const int Threads = 4;
  std::vector<float> C(256 * 256, 0.f);
  runGemm(256, 256, 256, C.data(), Threads);

  std::set<uint32_t> Tids;
  uint64_t Barriers = 0;
  for (const obs::Event &E : obs::events()) {
    if (std::strncmp(E.Name, "gemm.", 5) == 0)
      Tids.insert(E.Tid);
    if (std::strcmp(E.Name, "gemm.barrier") == 0)
      ++Barriers;
  }
  // Every worker in the team records spans under its own thread id.
  EXPECT_GE(Tids.size(), static_cast<size_t>(Threads));
  EXPECT_GT(Barriers, 0u) << "threaded path must trace its barriers";

  // And the chrome trace renders them as distinct lanes.
  std::string Path = ::testing::TempDir() + "/obs_gemm_trace.json";
  ASSERT_FALSE(bool(obs::writeChromeTrace(Path)));
  auto J = benchutil::Json::load(Path);
  ASSERT_TRUE(bool(J));
  std::set<double> LaneTids;
  const benchutil::Json *Ev = J->get("traceEvents");
  ASSERT_NE(Ev, nullptr);
  for (size_t I = 0; I != Ev->size(); ++I)
    if (Ev->at(I).str("ph") == "X")
      LaneTids.insert(Ev->at(I).num("tid", -1));
  EXPECT_GE(LaneTids.size(), static_cast<size_t>(Threads));
  std::remove(Path.c_str());
}

TEST_F(ObsGemmTest, MeasureAttributesStagesPerCall) {
  const int64_t M = 64, N = 64, K = 64;
  std::vector<float> A(M * K), B(K * N), C(M * N, 0.f);
  benchutil::fillRandom(A.data(), A.size(), 5);
  benchutil::fillRandom(B.data(), B.size(), 6);
  FixedProvider P(blisKernel(), "BLIS");
  GemmPlan Plan = GemmPlan::standard(P);

  benchutil::Measurement Meas = benchutil::measure(
      [&] {
        blisGemm(Plan, P, M, N, K, 1.0f, A.data(), M, B.data(), K, 1.0f,
                 C.data(), M);
      },
      0.01);
  ASSERT_GT(Meas.Reps, 0);
  ASSERT_EQ(Meas.Stages.count("gemm.ukr"), 1u);
  // Per-call stage time can never exceed the measured per-call wall time.
  EXPECT_LE(Meas.Stages["gemm.ukr"].Seconds, Meas.SecondsPerCall);
  // One gemm.call span per rep (the warm-up call is excluded).
  ASSERT_EQ(Meas.Stages.count("gemm.call"), 1u);
  EXPECT_EQ(Meas.Stages["gemm.call"].Count,
            static_cast<uint64_t>(Meas.Reps));
}

} // namespace
