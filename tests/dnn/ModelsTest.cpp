//===- ModelsTest.cpp - DNN workload tables -------------------------------===//

#include "dnn/Models.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace dnn;

TEST(ModelsTest, ResNetTableShape) {
  const auto &L = resnet50Layers();
  ASSERT_EQ(L.size(), 20u);
  // Spot-check against the paper's Table I.
  EXPECT_EQ(L[0].M, 12544);
  EXPECT_EQ(L[0].N, 64);
  EXPECT_EQ(L[0].K, 147);
  EXPECT_EQ(L[16].Id, 17);
  EXPECT_EQ(L[16].M, 49);
  EXPECT_EQ(L[16].N, 512);
  EXPECT_EQ(L[16].K, 4608);
  // Total layer instances in one inference pass.
  int Total = 0;
  for (const LayerGemm &G : L)
    Total += G.Count;
  EXPECT_EQ(Total, 53);
}

TEST(ModelsTest, VggTableShape) {
  const auto &L = vgg16Layers();
  ASSERT_EQ(L.size(), 9u);
  EXPECT_EQ(L[0].M, 50176);
  EXPECT_EQ(L[0].K, 27);
  EXPECT_EQ(L[8].M, 196);
  EXPECT_EQ(L[8].N, 512);
  EXPECT_EQ(L[8].K, 4608);
  int Total = 0;
  for (const LayerGemm &G : L)
    Total += G.Count;
  EXPECT_EQ(Total, 13);
}

TEST(ModelsTest, Im2RowDerivesResNetLayer1) {
  // ResNet50 conv1: 7x7, stride 2, pad 3, 3 -> 64 channels on 224x224.
  LayerGemm G = im2rowGemm(1, 3, 64, 224, 224, 7, 7, 2, 3);
  EXPECT_EQ(G.M, 112 * 112);
  EXPECT_EQ(G.M, resnet50Layers()[0].M);
  EXPECT_EQ(G.N, 64);
  EXPECT_EQ(G.K, 147);
}

TEST(ModelsTest, Im2RowDerivesVggLayer1) {
  // VGG16 conv1_1: 3x3, stride 1, pad 1, 3 -> 64 channels on 224x224.
  LayerGemm G = im2rowGemm(1, 3, 64, 224, 224, 3, 3, 1, 1);
  EXPECT_EQ(G.M, 224 * 224);
  EXPECT_EQ(G.M, vgg16Layers()[0].M);
  EXPECT_EQ(G.K, 27);
}

TEST(ModelsTest, FlopCounts) {
  const LayerGemm &G = resnet50Layers()[0];
  EXPECT_DOUBLE_EQ(G.flops(), 2.0 * 12544 * 64 * 147);
}

TEST(ModelsTest, QuantizedScenarioRunsEndToEnd) {
  // The --int8 serving scenario on a trimmed table (real ragged shapes,
  // sizes kept test-friendly): every layer must flow through
  // Engine::gemm(I8I32) and dequantize to within quantization noise of
  // the f32 result. A large error here means the i8 pack/kernel path is
  // broken — with inputs in [-1, 1) the noise itself is well under 5e-2.
  const std::vector<LayerGemm> Small = {
      {1, "t1", 1, 49, 64, 147},
      {2, "t2", 1, 31, 33, 129},
      {3, "t3", 2, 196, 256, 64},
  };
  gemm::Engine E;
  exo::Expected<QuantModelResult> R = runModelQuantized(E, Small, 7);
  ASSERT_TRUE(static_cast<bool>(R)) << R.takeError().message();
  ASSERT_EQ(R->Layers.size(), 3u);
  for (const QuantLayerResult &L : R->Layers)
    EXPECT_LT(L.RelErr, 0.05) << "layer " << L.Id;
  EXPECT_GT(R->Ops, 0);
}

TEST(ModelsTest, ShapesAreEdgeRich) {
  // The point of §IV-C: most DL shapes are not multiples of the 8x12
  // flagship tile — count them to document the premise.
  int Ragged = 0;
  for (const LayerGemm &G : resnet50Layers())
    if (G.M % 8 != 0 || G.N % 12 != 0)
      ++Ragged;
  EXPECT_GE(Ragged, 10);
}
