//===- ConvTest.cpp - IM2ROW convolution lowering --------------------------===//

#include "dnn/Conv.h"

#include "benchutil/Bench.h"
#include "exo/support/Str.h"
#include "gemm/ExoProvider.h"
#include "gemm/Kernels.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dnn;

namespace {

class ConvTest : public testing::TestWithParam<ConvParams> {};

std::string convName(const testing::TestParamInfo<ConvParams> &Info) {
  const ConvParams &P = Info.param;
  return exo::strf("c%lldto%lld_%lldx%lld_k%lldx%lld_s%lld_p%lld",
                   static_cast<long long>(P.InC),
                   static_cast<long long>(P.OutC),
                   static_cast<long long>(P.InH),
                   static_cast<long long>(P.InW),
                   static_cast<long long>(P.Kh),
                   static_cast<long long>(P.Kw),
                   static_cast<long long>(P.Stride),
                   static_cast<long long>(P.Pad));
}

} // namespace

TEST_P(ConvTest, GemmLoweringMatchesDirectConvolution) {
  const ConvParams &P = GetParam();
  std::vector<float> In(P.InH * P.InW * P.InC);
  std::vector<float> W(P.Kh * P.Kw * P.InC * P.OutC);
  benchutil::fillRandom(In.data(), In.size(), 5);
  benchutil::fillRandom(W.data(), W.size(), 6);

  std::vector<float> Direct(P.gemmM() * P.OutC), ViaGemm(Direct.size());
  convDirect(P, In.data(), W.data(), Direct.data());

  gemm::ExoProvider Provider(8, 12);
  exo::Error Err = convViaGemm(P, Provider, In.data(), W.data(),
                               ViaGemm.data());
  ASSERT_FALSE(Err) << Err.message();
  float Tol = 1e-4f * static_cast<float>(P.gemmK());
  for (size_t I = 0; I != Direct.size(); ++I)
    ASSERT_NEAR(ViaGemm[I], Direct[I], Tol) << I;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvTest,
    testing::Values(
        // 1x1 convolution (a pure GEMM).
        ConvParams{16, 32, 14, 14, 1, 1, 1, 0},
        // 3x3 stride 1, same padding (VGG-style).
        ConvParams{8, 16, 12, 12, 3, 3, 1, 1},
        // 7x7 stride 2 pad 3 (the ResNet50 stem, scaled down).
        ConvParams{3, 16, 28, 28, 7, 7, 2, 3},
        // 3x3 stride 2 (downsampling).
        ConvParams{8, 8, 15, 15, 3, 3, 2, 1},
        // Non-square image, asymmetric kernel.
        ConvParams{4, 12, 9, 17, 1, 3, 1, 1},
        // Single channel in and out.
        ConvParams{1, 1, 8, 8, 3, 3, 1, 0}),
    convName);

TEST(ConvShapeTest, GemmDimsMatchTableEntries) {
  // ResNet50 stem at full size reproduces Table I layer 1.
  ConvParams Stem{3, 64, 224, 224, 7, 7, 2, 3};
  EXPECT_EQ(Stem.gemmM(), resnet50Layers()[0].M);
  EXPECT_EQ(Stem.gemmN(), resnet50Layers()[0].N);
  EXPECT_EQ(Stem.gemmK(), resnet50Layers()[0].K);
  // VGG16 conv1_1 reproduces Table II layer 1.
  ConvParams Vgg{3, 64, 224, 224, 3, 3, 1, 1};
  EXPECT_EQ(Vgg.gemmM(), vgg16Layers()[0].M);
  EXPECT_EQ(Vgg.gemmK(), vgg16Layers()[0].K);
}

TEST(Im2RowTest, PaddingProducesZeroRows) {
  // A 1x1 image with a 3x3 same-padded kernel: the patch is mostly pad.
  ConvParams P{1, 1, 1, 1, 3, 3, 1, 1};
  std::vector<float> In{42.0f};
  std::vector<float> A(P.gemmM() * P.gemmK(), -1.0f);
  im2row(P, In.data(), A.data());
  ASSERT_EQ(P.gemmM(), 1);
  ASSERT_EQ(P.gemmK(), 9);
  for (int64_t Col = 0; Col != 9; ++Col)
    EXPECT_EQ(A[Col], Col == 4 ? 42.0f : 0.0f) << Col;
}

TEST(Im2RowTest, StrideSkipsPixels) {
  // 4x4 single-channel image, 1x1 kernel, stride 2: picks 4 corners of the
  // even grid.
  ConvParams P{1, 1, 4, 4, 1, 1, 2, 0};
  std::vector<float> In(16);
  for (int I = 0; I != 16; ++I)
    In[I] = static_cast<float>(I);
  std::vector<float> A(P.gemmM() * P.gemmK());
  im2row(P, In.data(), A.data());
  ASSERT_EQ(P.gemmM(), 4);
  EXPECT_EQ(A[0], 0.0f);
  EXPECT_EQ(A[1], 2.0f);
  EXPECT_EQ(A[2], 8.0f);
  EXPECT_EQ(A[3], 10.0f);
}
