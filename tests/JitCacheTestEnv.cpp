//===- JitCacheTestEnv.cpp - Ephemeral JIT-cache isolation for tests ------===//

#include "JitCacheTestEnv.h"

#include "exo/jit/DiskCache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace exotest {

std::string makeTempDir(const char *Prefix) {
  const char *Tmp = std::getenv("TMPDIR");
  std::string Templ = std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/" + Prefix +
                      "-XXXXXX";
  std::vector<char> Buf(Templ.begin(), Templ.end());
  Buf.push_back('\0');
  const char *Dir = mkdtemp(Buf.data());
  EXPECT_NE(Dir, nullptr) << Templ;
  return Dir ? Dir : "";
}

namespace {

std::string &rootStorage() {
  static std::string Root;
  return Root;
}

/// Runs before any test: every JIT artifact this process (or a subprocess
/// it spawns) produces lands in a throwaway directory.
class JitCacheEnv : public ::testing::Environment {
public:
  void SetUp() override {
    std::string Dir = makeTempDir("exo-jit-cache");
    ASSERT_FALSE(Dir.empty());
    rootStorage() = Dir;
    // Both halves matter: setenv covers subprocesses and a global() that
    // has not been constructed yet; setGlobalRoot repoints one that has.
    ASSERT_EQ(setenv("EXO_JIT_CACHE_DIR", Dir.c_str(), 1), 0);
    exo::JitDiskCache::setGlobalRoot(Dir);
    // Same isolation for the planner's tuning-prior database: a stale
    // developer DB under ~/.cache must never steer test plans. setenv is
    // enough — gemm::PriorDb::global() reads it lazily — and keeps this
    // file linkable from binaries that do not link gemm.
    std::string PriorDir = makeTempDir("exo-prior-db");
    ASSERT_FALSE(PriorDir.empty());
    ASSERT_EQ(setenv("EXO_GEMM_PRIOR_DB", PriorDir.c_str(), 1), 0);
  }
};

const ::testing::Environment *Registered =
    ::testing::AddGlobalTestEnvironment(new JitCacheEnv);

} // namespace

const std::string &jitCacheTestRoot() { return rootStorage(); }

} // namespace exotest
