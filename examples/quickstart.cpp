//===- quickstart.cpp - Build a micro-kernel step by step -----------------===//
//
// The repository's "hello world": reproduces the paper's §III walkthrough.
// Starting from the naive micro-kernel specification (Fig. 5), it applies
// the schedule one step at a time, printing the intermediate program after
// the milestones shown in the paper's Figs. 6-11, emits the final C, and —
// because this machine can run the portable instruction library — JIT
// compiles the kernel and verifies it against a naive loop.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "exo/ir/Printer.h"
#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <vector>

using namespace exo;

int main() {
  // Configure the paper's flagship: an 8x12 f32 kernel, lane-FMA schedule.
  // Swap `portableIsa()` for `neonIsa()` to emit the paper's exact ARM code
  // (which this x86 host cannot execute but any aarch64 compiler accepts).
  ukr::UkrConfig Cfg;
  Cfg.MR = 8;
  Cfg.NR = 12;
  Cfg.Isa = &portableIsa();
  Cfg.Style = ukr::FmaStyle::Lane;

  auto R = ukr::generateUkernel(Cfg);
  if (!R) {
    std::fprintf(stderr, "schedule failed: %s\n", R.message().c_str());
    return 1;
  }

  // Print the milestones of the §III walkthrough.
  const char *Milestones[] = {
      "partial_eval",     // v1, Fig. 6
      "divide_loop j",    // v2, Fig. 7
      "set_memory C_reg", // v3, Fig. 8
      "set_memory B_reg", // v4, Fig. 9
      "replace fmla",     // v5, Fig. 10
      "unroll B load",    // v6, Fig. 11
  };
  int V = 1;
  for (const char *M : Milestones) {
    for (const ukr::UkrStep &S : R->Steps) {
      if (S.Label != M)
        continue;
      std::printf("=== v%d (after %s) ===\n%s\n", V++, M,
                  printProc(S.P).c_str());
    }
  }

  std::printf("=== generated C ===\n%s\n", R->CSource.c_str());

  // Compile and verify.
  auto K = ukr::buildKernel(Cfg);
  if (!K || !K->Fn) {
    std::fprintf(stderr, "kernel unavailable: %s\n",
                 K ? "not executable on this host" : K.message().c_str());
    return 1;
  }
  const int64_t KC = 64, Ldc = 8;
  std::vector<float> Ac(KC * 8), Bc(KC * 12), C(12 * 8, 0.f),
      Want(12 * 8, 0.f);
  for (size_t I = 0; I != Ac.size(); ++I)
    Ac[I] = static_cast<float>(I % 7) - 3;
  for (size_t I = 0; I != Bc.size(); ++I)
    Bc[I] = static_cast<float>(I % 5) - 2;
  for (int64_t J = 0; J < 12; ++J)
    for (int64_t I = 0; I < 8; ++I)
      for (int64_t P = 0; P < KC; ++P)
        Want[J * Ldc + I] += Ac[P * 8 + I] * Bc[P * 12 + J];
  K->Fn(KC, Ldc, Ac.data(), Bc.data(), C.data());
  for (size_t I = 0; I != C.size(); ++I)
    if (C[I] != Want[I]) {
      std::fprintf(stderr, "MISMATCH at %zu\n", I);
      return 1;
    }
  std::printf("JIT-compiled kernel verified against the naive loop. All "
              "good.\n");
  return 0;
}
