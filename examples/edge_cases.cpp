//===- edge_cases.cpp - The §III-B edge-case kernel family ----------------===//
//
// Shows how the generator treats edge cases: "all we need to do is change
// the values for MR and NR". Builds the micro-kernel family the paper uses
// for ResNet50 and reports, per shape, the chosen instruction library,
// schedule style, generated-code size, and solo-mode throughput.
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "exo/support/Str.h"
#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <vector>

using namespace exo;

int main() {
  const std::vector<std::pair<int64_t, int64_t>> Family = {
      {8, 12}, {8, 4}, {4, 4}, {4, 8}, {4, 12}, {1, 8}, {1, 12}};
  std::printf("The paper's ResNet50 micro-kernel family (§IV-C), "
              "regenerated:\n\n");
  std::printf("%-10s %-10s %-8s %-26s %s\n", "shape", "isa", "style",
              "kernel", "solo GFLOPS (kc=512)");

  for (auto [MR, NR] : Family) {
    ukr::UkrConfig Cfg;
    Cfg.MR = MR;
    Cfg.NR = NR;
    Cfg.Isa = ukr::bestIsaForMr(MR);
    if (!Cfg.Isa)
      Cfg.Style = ukr::FmaStyle::Scalar;
    auto K = ukr::KernelCache::global().get(Cfg);
    if (!K) {
      std::fprintf(stderr, "%lldx%lld: %s\n", static_cast<long long>(MR),
                   static_cast<long long>(NR), K.message().c_str());
      return 1;
    }
    double Gf = 0;
    if ((*K)->Fn) {
      const int64_t Kc = 512;
      std::vector<float> Ac(Kc * MR), Bc(Kc * NR), C(NR * MR, 0.f);
      benchutil::fillRandom(Ac.data(), Ac.size(), 1);
      benchutil::fillRandom(Bc.data(), Bc.size(), 2);
      ukr::MicroKernelF32 Fn = (*K)->Fn;
      double Secs = benchutil::timeIt(
          [&] { Fn(Kc, MR, Ac.data(), Bc.data(), C.data()); }, 0.1);
      Gf = benchutil::gflops(2.0 * MR * NR * Kc, Secs);
    }
    std::printf("%-10s %-10s %-8s %-26s %.2f\n",
                strf("%lldx%lld", static_cast<long long>(MR),
                     static_cast<long long>(NR))
                    .c_str(),
                (*K)->Style == ukr::FmaStyle::Scalar
                    ? "-"
                    : (*K)->Cfg.Isa->name().c_str(),
                ukr::fmaStyleName((*K)->Style),
                (*K)->Cfg.kernelName().c_str(), Gf);
  }

  std::printf("\nGenerated C for the 4x4 edge kernel:\n\n");
  ukr::UkrConfig Cfg;
  Cfg.MR = 4;
  Cfg.NR = 4;
  Cfg.Isa = ukr::bestIsaForMr(4);
  auto K = ukr::KernelCache::global().get(Cfg);
  if (K)
    std::printf("%s\n", (*K)->CSource.c_str());
  return 0;
}
