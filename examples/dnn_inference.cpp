//===- dnn_inference.cpp - DL inference GEMMs with generated kernels ------===//
//
// The workload that motivates the paper's edge-case story: the im2row GEMM
// sequence of a ResNet50 v1.5 (batch 1) forward pass, run through the
// gemm::Engine front door — each layer's shape is planned once (planner
// picks the micro-kernel tile, §IV-B), cached, and re-executed for the
// timed reps — with correctness checked per layer and the per-layer plan
// reported.
//
// Usage: dnn_inference [resnet50|vgg16]
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "dnn/Models.h"
#include "exo/support/Str.h"
#include "gemm/Engine.h"
#include "gemm/RefGemm.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace gemm;

int main(int Argc, char **Argv) {
  bool Vgg = Argc > 1 && !std::strcmp(Argv[1], "vgg16");
  const auto &Layers = Vgg ? dnn::vgg16Layers() : dnn::resnet50Layers();
  std::printf("Running the %s im2row GEMM sequence (batch 1) through the "
              "Engine front door (plan-once/execute-many).\n\n",
              Vgg ? "VGG16" : "ResNet50 v1.5");

  // One Engine serves every layer: distinct shapes get distinct cached
  // plans, repeated calls hit the cache.
  Engine E;

  double TotalSecs = 0, TotalFlops = 0;
  for (const dnn::LayerGemm &L : Layers) {
    std::vector<float> A(L.M * L.K), B(L.K * L.N), C(L.M * L.N, 0.f);
    benchutil::fillRandom(A.data(), A.size(), L.Id);
    benchutil::fillRandom(B.data(), B.size(), L.Id + 100);

    // Correctness check on a thin slice (full reference would dominate).
    {
      int64_t MChk = std::min<int64_t>(L.M, 64);
      std::vector<float> CRef(MChk * L.N, 0.f), CChk(MChk * L.N, 0.f);
      refSgemm(MChk, L.N, L.K, 1.f, A.data(), L.M, B.data(), L.K, 1.f,
               CRef.data(), MChk);
      exo::Error Err = E.sgemm(MChk, L.N, L.K, 1.f, A.data(), L.M, B.data(),
                               L.K, 1.f, CChk.data(), MChk);
      if (Err) {
        std::fprintf(stderr, "layer %d failed: %s\n", L.Id,
                     Err.message().c_str());
        return 1;
      }
      float D = benchutil::maxAbsDiff(CRef.data(), CChk.data(), CRef.size());
      if (D > 1e-3f * static_cast<float>(L.K)) {
        std::fprintf(stderr, "layer %d WRONG (maxdiff %g)\n", L.Id, D);
        return 1;
      }
    }

    // The plan the layer's timed calls will reuse (built on first use).
    exo::Expected<PlanChoice> Choice =
        E.planFor(Trans::None, Trans::None, L.M, L.N, L.K);
    if (!Choice) {
      std::fprintf(stderr, "layer %d planning failed: %s\n", L.Id,
                   Choice.takeError().message().c_str());
      return 1;
    }

    double Secs = benchutil::timeIt(
        [&] {
          E.sgemm(L.M, L.N, L.K, 1.f, A.data(), L.M, B.data(), L.K, 1.f,
                  C.data(), L.M);
        },
        0.05);
    TotalSecs += Secs * L.Count;
    TotalFlops += L.flops() * L.Count;
    std::printf("layer %2d (%5lldx%4lldx%4lld, x%d): kernel %2lldx%-2lld "
                "(%s)  %7.2f GFLOPS  %8.3f ms\n",
                L.Id, static_cast<long long>(L.M),
                static_cast<long long>(L.N), static_cast<long long>(L.K),
                L.Count, static_cast<long long>(Choice->MR),
                static_cast<long long>(Choice->NR), Choice->Source,
                benchutil::gflops(L.flops(), Secs), Secs * 1e3);
  }
  EngineStats St = E.stats();
  std::printf("\nAggregated GEMM time for one inference pass: %.2f ms "
              "(%.2f GFLOPS average)\n",
              TotalSecs * 1e3, benchutil::gflops(TotalFlops, TotalSecs));
  std::printf("plan cache: %llu plans built for %llu calls (%llu hits)\n",
              static_cast<unsigned long long>(St.Builds),
              static_cast<unsigned long long>(St.Hits + St.Misses),
              static_cast<unsigned long long>(St.Hits));
  return 0;
}
