//===- dnn_inference.cpp - DL inference GEMMs with generated kernels ------===//
//
// The workload that motivates the paper's edge-case story: the im2row GEMM
// sequence of a ResNet50 v1.5 (batch 1) forward pass, run through the
// BLIS-like algorithm with Exo-generated kernels, with correctness checked
// per layer and the per-layer kernel choice reported.
//
// Usage: dnn_inference [resnet50|vgg16]
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "dnn/Models.h"
#include "exo/support/Str.h"
#include "gemm/ExoProvider.h"
#include "gemm/Gemm.h"
#include "gemm/RefGemm.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace gemm;

int main(int Argc, char **Argv) {
  bool Vgg = Argc > 1 && !std::strcmp(Argv[1], "vgg16");
  const auto &Layers = Vgg ? dnn::vgg16Layers() : dnn::resnet50Layers();
  std::printf("Running the %s im2row GEMM sequence (batch 1) with "
              "Exo-generated kernels.\n\n",
              Vgg ? "VGG16" : "ResNet50 v1.5");

  double TotalSecs = 0, TotalFlops = 0;
  for (const dnn::LayerGemm &L : Layers) {
    auto [Mr, Nr] = ExoProvider::pickShape(L.M, L.N);
    ExoProvider P(Mr, Nr);
    GemmPlan Plan = GemmPlan::standard(P);

    std::vector<float> A(L.M * L.K), B(L.K * L.N), C(L.M * L.N, 0.f);
    benchutil::fillRandom(A.data(), A.size(), L.Id);
    benchutil::fillRandom(B.data(), B.size(), L.Id + 100);

    // Correctness check on a thin slice (full reference would dominate).
    {
      int64_t MChk = std::min<int64_t>(L.M, 64);
      std::vector<float> CRef(MChk * L.N, 0.f), CChk(MChk * L.N, 0.f);
      refSgemm(MChk, L.N, L.K, 1.f, A.data(), L.M, B.data(), L.K, 1.f,
               CRef.data(), MChk);
      exo::Error Err = blisGemm(Plan, P, MChk, L.N, L.K, 1.f, A.data(), L.M,
                                B.data(), L.K, 1.f, CChk.data(), MChk);
      if (Err) {
        std::fprintf(stderr, "layer %d failed: %s\n", L.Id,
                     Err.message().c_str());
        return 1;
      }
      float D = benchutil::maxAbsDiff(CRef.data(), CChk.data(), CRef.size());
      if (D > 1e-3f * static_cast<float>(L.K)) {
        std::fprintf(stderr, "layer %d WRONG (maxdiff %g)\n", L.Id, D);
        return 1;
      }
    }

    double Secs = benchutil::timeIt(
        [&] {
          blisGemm(Plan, P, L.M, L.N, L.K, 1.f, A.data(), L.M, B.data(),
                   L.K, 1.f, C.data(), L.M);
        },
        0.05);
    TotalSecs += Secs * L.Count;
    TotalFlops += L.flops() * L.Count;
    std::printf("layer %2d (%5lldx%4lldx%4lld, x%d): kernel %2lldx%-2lld  "
                "%7.2f GFLOPS  %8.3f ms\n",
                L.Id, static_cast<long long>(L.M),
                static_cast<long long>(L.N), static_cast<long long>(L.K),
                L.Count, static_cast<long long>(Mr),
                static_cast<long long>(Nr),
                benchutil::gflops(L.flops(), Secs), Secs * 1e3);
  }
  std::printf("\nAggregated GEMM time for one inference pass: %.2f ms "
              "(%.2f GFLOPS average)\n",
              TotalSecs * 1e3, benchutil::gflops(TotalFlops, TotalSecs));
  return 0;
}
