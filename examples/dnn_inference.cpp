//===- dnn_inference.cpp - DL inference GEMMs with generated kernels ------===//
//
// The workload that motivates the paper's edge-case story: the im2row GEMM
// sequence of a ResNet50 v1.5 (batch 1) forward pass, run through the
// gemm::Engine front door — each layer's shape is planned once (planner
// picks the micro-kernel tile, §IV-B), cached, and re-executed for the
// timed reps — with correctness checked per layer and the per-layer plan
// reported.
//
// With --remote [SOCKET] the same sequence travels through gemm::Client to
// a running gemmd daemon (docs/GEMMD.md): the plans and JIT kernels live
// in the daemon's shared caches, so a second process running this example
// starts warm. Start one with `gemmd --foreground &` first.
//
// With --int8 the same layer table runs the post-training-quantization
// scenario instead: operands are quantized to int8 (symmetric per-tensor
// scales), multiplied through Engine::gemm(DType::I8I32) with exact i32
// accumulation, and dequantized — the printed per-layer error is pure
// quantization noise, so a blow-up indicates an engine bug, not a hard
// model (docs/PRECISION.md).
//
// Usage: dnn_inference [resnet50|vgg16] [--remote [SOCKET]] [--int8]
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "dnn/Models.h"
#include "exo/support/Str.h"
#include "gemm/Engine.h"
#include "gemm/RefGemm.h"
#include "ipc/Client.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

using namespace gemm;

int main(int Argc, char **Argv) {
  bool Vgg = false, Remote = false, Int8 = false;
  std::string Socket;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "vgg16"))
      Vgg = true;
    else if (!std::strcmp(Argv[I], "resnet50"))
      Vgg = false;
    else if (!std::strcmp(Argv[I], "--int8"))
      Int8 = true;
    else if (!std::strcmp(Argv[I], "--remote")) {
      Remote = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        Socket = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: dnn_inference [resnet50|vgg16] "
                           "[--remote [SOCKET]] [--int8]\n");
      return 2;
    }
  }
  if (Int8 && Remote) {
    std::fprintf(stderr, "--int8 runs locally (the quantized scenario "
                         "exercises Engine::gemm directly)\n");
    return 2;
  }
  if (Int8) {
    const auto &Layers = Vgg ? dnn::vgg16Layers() : dnn::resnet50Layers();
    std::printf("Running the %s im2row sequence quantized to int8 "
                "(symmetric per-tensor, i32 accumulate).\n\n",
                Vgg ? "VGG16" : "ResNet50 v1.5");
    Engine E;
    exo::Expected<dnn::QuantModelResult> R =
        dnn::runModelQuantized(E, Layers, /*Seed=*/7);
    if (!R) {
      std::fprintf(stderr, "quantized run failed: %s\n",
                   R.takeError().message().c_str());
      return 1;
    }
    for (const dnn::QuantLayerResult &L : R->Layers)
      std::printf("layer %2d (%5lldx%4lldx%4lld): dequant rel err %.3e\n",
                  L.Id, static_cast<long long>(L.M),
                  static_cast<long long>(L.N), static_cast<long long>(L.K),
                  L.RelErr);
    std::printf("\n%.2f GOP of int8 MACs, max dequant rel err %.3e\n",
                R->Ops / 1e9, R->MaxRelErr);
    return R->MaxRelErr < 0.05 ? 0 : 1;
  }
  const auto &Layers = Vgg ? dnn::vgg16Layers() : dnn::resnet50Layers();
  std::printf("Running the %s im2row GEMM sequence (batch 1) through %s "
              "(plan-once/execute-many).\n\n",
              Vgg ? "VGG16" : "ResNet50 v1.5",
              Remote ? "a gemmd daemon (gemm::Client)"
                     : "the Engine front door");

  // One Engine serves every layer: distinct shapes get distinct cached
  // plans, repeated calls hit the cache. In remote mode the Engine (and
  // its caches) lives in the daemon and one Client session replaces it.
  Engine E;
  Client::Options CO;
  CO.SocketPath = Socket;
  Client Cl(CO);
  if (Remote) {
    if (exo::Error Err = Cl.connect()) {
      std::fprintf(stderr,
                   "cannot reach gemmd (%s) — start one with "
                   "`gemmd --foreground &` or pass --remote SOCKET\n",
                   Err.message().c_str());
      return 1;
    }
  }
  auto Sgemm = [&](int64_t M, int64_t N, int64_t K, const float *A,
                   int64_t Lda, const float *B, int64_t Ldb, float *C,
                   int64_t Ldc) {
    return Remote ? Cl.sgemm(M, N, K, 1.f, A, Lda, B, Ldb, 1.f, C, Ldc)
                  : E.sgemm(M, N, K, 1.f, A, Lda, B, Ldb, 1.f, C, Ldc);
  };

  double TotalSecs = 0, TotalFlops = 0;
  for (const dnn::LayerGemm &L : Layers) {
    std::vector<float> A(L.M * L.K), B(L.K * L.N), C(L.M * L.N, 0.f);
    benchutil::fillRandom(A.data(), A.size(), L.Id);
    benchutil::fillRandom(B.data(), B.size(), L.Id + 100);

    // Correctness check on a thin slice (full reference would dominate).
    {
      int64_t MChk = std::min<int64_t>(L.M, 64);
      std::vector<float> CRef(MChk * L.N, 0.f), CChk(MChk * L.N, 0.f);
      refSgemm(MChk, L.N, L.K, 1.f, A.data(), L.M, B.data(), L.K, 1.f,
               CRef.data(), MChk);
      exo::Error Err = Sgemm(MChk, L.N, L.K, A.data(), L.M, B.data(), L.K,
                             CChk.data(), MChk);
      if (Err) {
        std::fprintf(stderr, "layer %d failed: %s\n", L.Id,
                     Err.message().c_str());
        return 1;
      }
      float D = benchutil::maxAbsDiff(CRef.data(), CChk.data(), CRef.size());
      if (D > 1e-3f * static_cast<float>(L.K)) {
        std::fprintf(stderr, "layer %d WRONG (maxdiff %g)\n", L.Id, D);
        return 1;
      }
    }

    // The plan the layer's timed calls will reuse (built on first use).
    // Remotely the choice lives in the daemon; the reply flags say whether
    // this session's first call on the shape found the plan cache warm.
    char PlanDesc[64];
    if (Remote) {
      exo::Error Err = Sgemm(L.M, L.N, L.K, A.data(), L.M, B.data(), L.K,
                             C.data(), L.M);
      if (Err) {
        std::fprintf(stderr, "layer %d failed: %s\n", L.Id,
                     Err.message().c_str());
        return 1;
      }
      uint32_t F = Cl.lastFlags();
      std::snprintf(PlanDesc, sizeof(PlanDesc), "daemon plan %s%s",
                    F & ipc::ReplyPlanHit ? "warm" : "built",
                    F & ipc::ReplyJitCompiled ? "+jit" : "");
    } else {
      exo::Expected<PlanChoice> Choice =
          E.planFor(Trans::None, Trans::None, L.M, L.N, L.K);
      if (!Choice) {
        std::fprintf(stderr, "layer %d planning failed: %s\n", L.Id,
                     Choice.takeError().message().c_str());
        return 1;
      }
      std::snprintf(PlanDesc, sizeof(PlanDesc), "kernel %2lldx%-2lld (%s)",
                    static_cast<long long>(Choice->MR),
                    static_cast<long long>(Choice->NR), Choice->Source);
    }

    double Secs = benchutil::timeIt(
        [&] {
          Sgemm(L.M, L.N, L.K, A.data(), L.M, B.data(), L.K, C.data(), L.M);
        },
        0.05);
    TotalSecs += Secs * L.Count;
    TotalFlops += L.flops() * L.Count;
    std::printf("layer %2d (%5lldx%4lldx%4lld, x%d): %-22s  %7.2f GFLOPS  "
                "%8.3f ms\n",
                L.Id, static_cast<long long>(L.M),
                static_cast<long long>(L.N), static_cast<long long>(L.K),
                L.Count, PlanDesc, benchutil::gflops(L.flops(), Secs),
                Secs * 1e3);
  }
  std::printf("\nAggregated GEMM time for one inference pass: %.2f ms "
              "(%.2f GFLOPS average)\n",
              TotalSecs * 1e3, benchutil::gflops(TotalFlops, TotalSecs));
  if (Remote) {
    ipc::StatsReplyMsg St;
    if (!Cl.serverStats(St))
      std::printf("daemon plan cache: %llu plans built for %llu calls "
                  "(%llu hits) across %llu client(s)\n",
                  static_cast<unsigned long long>(St.PlanBuilds),
                  static_cast<unsigned long long>(St.Requests),
                  static_cast<unsigned long long>(St.PlanHits),
                  static_cast<unsigned long long>(St.TotalClients));
  } else {
    EngineStats St = E.stats();
    std::printf("plan cache: %llu plans built for %llu calls (%llu hits)\n",
                static_cast<unsigned long long>(St.Builds),
                static_cast<unsigned long long>(St.Hits + St.Misses),
                static_cast<unsigned long long>(St.Hits));
  }
  return 0;
}
