//===- portability.cpp - One schedule, four architectures (§III-C) --------===//
//
// The paper's portability claim: retargeting a micro-kernel means swapping
// the instruction library passed to the schedule. This example emits the
// same logical 8x12-class kernel through all four libraries and prints the
// generated C side by side; host-executable ones are also JIT-verified.
//
//===----------------------------------------------------------------------===//

#include "benchutil/Bench.h"
#include "ukr/KernelRegistry.h"

#include <cstdio>
#include <vector>

using namespace exo;

namespace {

bool verify(const ukr::Kernel &K) {
  if (!K.Fn)
    return true; // Not executable here; textual output only.
  const int64_t MR = K.mr(), NR = K.nr(), KC = 32, Ldc = MR;
  std::vector<float> Ac(KC * MR), Bc(KC * NR), C(NR * MR, 0.f),
      Want(NR * MR, 0.f);
  benchutil::fillRandom(Ac.data(), Ac.size(), 1);
  benchutil::fillRandom(Bc.data(), Bc.size(), 2);
  for (int64_t J = 0; J < NR; ++J)
    for (int64_t I = 0; I < MR; ++I)
      for (int64_t P = 0; P < KC; ++P)
        Want[J * Ldc + I] += Ac[P * MR + I] * Bc[P * NR + J];
  K.Fn(KC, Ldc, Ac.data(), Bc.data(), C.data());
  return benchutil::maxAbsDiff(C.data(), Want.data(), C.size()) < 1e-3f;
}

} // namespace

int main() {
  struct Target {
    const char *Comment;
    const IsaLib *Isa;
    int64_t MR, NR;
  };
  const Target Targets[] = {
      {"ARM Neon (the paper's target; cross-compiles on aarch64)",
       &neonIsa(), 8, 12},
      {"GCC vector extensions (Neon-shaped schedule, runs anywhere)",
       &portableIsa(), 8, 12},
      {"Intel AVX2 (broadcast-FMA schedule)", &avx2Isa(), 8, 12},
      {"Intel AVX-512 (16-lane rows)", &avx512Isa(), 16, 12},
  };

  for (const Target &T : Targets) {
    ukr::UkrConfig Cfg;
    Cfg.MR = T.MR;
    Cfg.NR = T.NR;
    Cfg.Isa = T.Isa;
    auto K = ukr::buildKernel(Cfg);
    if (!K) {
      std::fprintf(stderr, "%s: %s\n", T.Isa->name().c_str(),
                   K.message().c_str());
      return 1;
    }
    std::printf("//===== %s =====\n// %s\n%s\n", T.Isa->name().c_str(),
                T.Comment, K->CSource.c_str());
    if (!verify(*K)) {
      std::fprintf(stderr, "%s: verification FAILED\n",
                   T.Isa->name().c_str());
      return 1;
    }
    std::printf("// %s\n\n", K->Fn
                                 ? "JIT-compiled and verified on this host."
                                 : "Emitted textually (not executable on "
                                   "this host).");
  }
  return 0;
}
