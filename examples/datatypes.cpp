//===- datatypes.cpp - Generating kernels for other precisions (§III-D) ---===//
//
// "Generating micro-kernels for different data types is as easy as" passing
// another element type: this example emits the f16 Neon kernel (using the
// Neon8f register space, as the paper describes) and an f64 portable kernel,
// and checks the f16 kernel's semantics with the interpreter since the host
// has no Neon.
//
//===----------------------------------------------------------------------===//

#include "exo/interp/Interp.h"
#include "exo/ir/Printer.h"
#include "ukr/UkrSchedule.h"

#include <cstdio>
#include <vector>

using namespace exo;

int main() {
  // f16 on Neon: 8 lanes per 128-bit register, so the natural flagship
  // grows to 8x16.
  ukr::UkrConfig F16;
  F16.MR = 8;
  F16.NR = 16;
  F16.Ty = ScalarKind::F16;
  F16.Isa = &neonIsa();
  F16.Style = ukr::FmaStyle::Lane;
  auto R16 = ukr::generateUkernel(F16);
  if (!R16) {
    std::fprintf(stderr, "f16 generation failed: %s\n",
                 R16.message().c_str());
    return 1;
  }
  std::printf("=== f16 Neon kernel (scheduled IR) ===\n%s\n",
              printProc(R16->Final).c_str());
  std::printf("=== f16 Neon kernel (generated C) ===\n%s\n",
              R16->CSource.c_str());

  // Verify its semantics through the interpreter (exact for small ints).
  {
    const int64_t KC = 4, Ldc = 8;
    std::vector<double> Ac(KC * 8), Bc(KC * 16), C(16 * 8, 0.0),
        Want(16 * 8, 0.0);
    for (size_t I = 0; I != Ac.size(); ++I)
      Ac[I] = static_cast<double>(I % 3) - 1;
    for (size_t I = 0; I != Bc.size(); ++I)
      Bc[I] = static_cast<double>(I % 5) - 2;
    for (int64_t J = 0; J < 16; ++J)
      for (int64_t I = 0; I < 8; ++I)
        for (int64_t K = 0; K < KC; ++K)
          Want[J * Ldc + I] += Ac[K * 8 + I] * Bc[K * 16 + J];
    Error Err = interpret(R16->Final, {{"KC", KC}, {"ldc", Ldc}},
                          {{"Ac", {Ac.data(), {KC, 8}}},
                           {"Bc", {Bc.data(), {KC, 16}}},
                           {"C", {C.data(), {16, 8}}}});
    if (Err || C != Want) {
      std::fprintf(stderr, "f16 interpretation failed%s%s\n",
                   Err ? ": " : "", Err ? Err.message().c_str() : "");
      return 1;
    }
    std::printf("f16 kernel semantics verified with the interpreter.\n\n");
  }

  // f64 with the portable library: 2 lanes per 128-bit vector.
  ukr::UkrConfig F64;
  F64.MR = 4;
  F64.NR = 4;
  F64.Ty = ScalarKind::F64;
  F64.Isa = &portableIsa();
  F64.Style = ukr::FmaStyle::Lane;
  auto R64 = ukr::generateUkernel(F64);
  if (!R64) {
    std::fprintf(stderr, "f64 generation failed: %s\n",
                 R64.message().c_str());
    return 1;
  }
  std::printf("=== f64 portable kernel (generated C) ===\n%s\n",
              R64->CSource.c_str());
  return 0;
}
