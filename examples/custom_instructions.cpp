//===- custom_instructions.cpp - A user-defined instruction library -------===//
//
// The paper's §II-B point: hardware descriptions are *user input*, not
// compiler internals. This example defines a brand-new 4-lane "ISA" whose
// intrinsics belong to an imaginary `mylib_*` C API, registers its memory
// space and instructions at runtime, runs the standard schedule against it,
// and prints the generated C — no changes to the compiler required.
//
//===----------------------------------------------------------------------===//

#include "exo/ir/Builder.h"
#include "exo/ir/Printer.h"
#include "exo/sched/Schedule.h"
#include "ukr/UkrSpec.h"

#include <cstdio>

using namespace exo;

namespace {

/// Builds `dst[i] = src[i]` over 4 lanes — the semantic definition the
/// `replace` directive verifies against (compare the paper's Fig. 3).
InstrPtr makeMyLoad(const MemSpace *Reg) {
  ProcBuilder B("mylib_load4");
  B.tensorParam("dst", ScalarKind::F32, {idx(4)}, Reg, /*Mutable=*/true);
  B.tensorParam("src", ScalarKind::F32, {idx(4)}, MemSpace::dram(), false);
  ExprPtr I = B.beginFor("i", idx(0), idx(4));
  B.assign("dst", {I}, B.readOf("src", {I}));
  B.endFor();
  return Instr::make(B.build(), "{dst_data} = mylib_load4(&{src_data});");
}

InstrPtr makeMyStore(const MemSpace *Reg) {
  ProcBuilder B("mylib_store4");
  B.tensorParam("dst", ScalarKind::F32, {idx(4)}, MemSpace::dram(), true);
  B.tensorParam("src", ScalarKind::F32, {idx(4)}, Reg, /*Mutable=*/false);
  ExprPtr I = B.beginFor("i", idx(0), idx(4));
  B.assign("dst", {I}, B.readOf("src", {I}));
  B.endFor();
  return Instr::make(B.build(), "mylib_store4(&{dst_data}, {src_data});");
}

InstrPtr makeMyFma(const MemSpace *Reg) {
  ProcBuilder B("mylib_fma_lane4");
  B.tensorParam("dst", ScalarKind::F32, {idx(4)}, Reg, true);
  B.tensorParam("lhs", ScalarKind::F32, {idx(4)}, Reg, false);
  B.tensorParam("rhs", ScalarKind::F32, {idx(4)}, Reg, false);
  ExprPtr L = B.indexParam("l");
  B.precond(BinOpExpr::make(BinOpExpr::Op::Ge, L, idx(0)));
  B.precond(BinOpExpr::make(BinOpExpr::Op::Lt, L, idx(4)));
  ExprPtr I = B.beginFor("i", idx(0), idx(4));
  B.reduce("dst", {I}, B.readOf("lhs", {I}) * B.readOf("rhs", {L}));
  B.endFor();
  return Instr::make(B.build(),
                     "{dst_data} = mylib_fma_lane4({dst_data}, {lhs_data}, "
                     "{rhs_data}, {l});");
}

} // namespace

int main() {
  // 1. Register a 128-bit register file for the imaginary hardware.
  const MemSpace *Reg = MemSpace::makeRegisterFile(
      "MyVec", {{ScalarKind::F32, {"mylib_v4f", 4}}});
  InstrPtr Vld = makeMyLoad(Reg);
  InstrPtr Vst = makeMyStore(Reg);
  InstrPtr Fma = makeMyFma(Reg);

  // 2. Run the paper's schedule with the new instructions (a condensed
  //    4x4 variant to keep the output short).
  auto Step = [](Expected<Proc> P) {
    if (!P) {
      std::fprintf(stderr, "schedule failed: %s\n", P.message().c_str());
      std::exit(1);
    }
    return P.take();
  };
  Proc P = renameProc(ukr::makeUkernelRef(), "uk_4x4_mylib");
  P = Step(partialEval(P, {{"MR", 4}, {"NR", 4}}));
  P = Step(stageMem(P, "C[_] += _", "C", "C_reg"));
  P = Step(expandDim(P, "C_reg", idx(4), var("i")));
  P = Step(expandDim(P, "C_reg", idx(4), var("j")));
  P = Step(liftAlloc(P, "C_reg", 3));
  P = Step(autofission(P, "C_reg[_] = _", /*After=*/true, 3));
  P = Step(autofission(P, "C[_] = _", /*After=*/false, 3));
  P = Step(replaceWithInstr(P, "for i in _: _ #0", Vld));
  P = Step(replaceWithInstr(P, "for i in _: _ #1", Vst));
  P = Step(setMemory(P, "C_reg", Reg));
  P = Step(bindExpr(P, "Ac[_]", "A_reg"));
  P = Step(expandDim(P, "A_reg", idx(4), var("i")));
  P = Step(liftAlloc(P, "A_reg", 3));
  P = Step(autofission(P, "A_reg[_] = _", /*After=*/true, 2));
  P = Step(replaceWithInstr(P, "for i in _: _ #0", Vld));
  P = Step(setMemory(P, "A_reg", Reg));
  P = Step(bindExpr(P, "Bc[_]", "B_reg"));
  P = Step(expandDim(P, "B_reg", idx(4), var("j")));
  P = Step(liftAlloc(P, "B_reg", 3));
  P = Step(autofission(P, "B_reg[_] = _", /*After=*/true, 2));
  P = Step(replaceWithInstr(P, "for j in _: _ #1", Vld));
  P = Step(setMemory(P, "B_reg", Reg));
  P = Step(replaceWithInstr(P, "for i in _: _ #0", Fma));

  std::printf("=== scheduled against the user-defined library ===\n%s\n",
              printProc(P).c_str());
  std::printf("The `replace` directives above were *verified*: an\n"
              "instruction only substitutes a loop that matches its\n"
              "semantic definition, so a wrong mylib_* description would\n"
              "have been rejected.\n");
  return 0;
}
