//===- gemmd.cpp - the GEMM-as-a-service daemon entry point ---------------===//
//
// Runs one gemmd::Server until SIGINT/SIGTERM:
//
//   gemmd [--socket PATH] [--max-clients N] [--workers N] [--queue-max N]
//         [--foreground]
//
// By default the process detaches (fork + setsid) and prints the child pid;
// --foreground keeps it attached, which is what tests, bench_gemmd and
// anything under a supervisor want. On shutdown the server drains accepted
// work, replies, closes every session and dumps its final stats.
//
// Knobs: every flag has an EXO_GEMMD_* environment twin (docs/KNOBS.md);
// flags win.
//
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unistd.h>

namespace {

std::atomic<bool> StopRequested{false};

void onSignal(int) { StopRequested.store(true, std::memory_order_relaxed); }

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--max-clients N] [--workers N] "
               "[--queue-max N] [--foreground]\n",
               Argv0);
}

void dumpStats(const gemmd::ServerStats &St) {
  const ipc::StatsReplyMsg &W = St.Wire;
  std::fprintf(stderr,
               "gemmd: served %llu request(s) (%llu ok, %llu error, %llu "
               "busy) for %llu client(s), %llu reaped\n"
               "gemmd: plan cache %llu hit / %llu miss / %llu built / %llu "
               "evicted; jit %llu compile(s), %llu disk hit(s)\n",
               static_cast<unsigned long long>(W.Requests),
               static_cast<unsigned long long>(W.Ok),
               static_cast<unsigned long long>(W.Errors),
               static_cast<unsigned long long>(W.Busy),
               static_cast<unsigned long long>(W.TotalClients),
               static_cast<unsigned long long>(W.Reaped),
               static_cast<unsigned long long>(W.PlanHits),
               static_cast<unsigned long long>(W.PlanMisses),
               static_cast<unsigned long long>(W.PlanBuilds),
               static_cast<unsigned long long>(W.PlanEvictions),
               static_cast<unsigned long long>(W.UkrCompiles),
               static_cast<unsigned long long>(W.UkrDiskHits));
}

} // namespace

int main(int Argc, char **Argv) {
  gemmd::ServerOptions Opts;
  bool Foreground = false;

  for (int I = 1; I < Argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = Value("--socket")) {
      Opts.SocketPath = V;
    } else if (const char *V = Value("--max-clients")) {
      Opts.MaxClients = std::atoi(V);
      if (Opts.MaxClients < 1) {
        std::fprintf(stderr, "--max-clients: '%s' is not a positive count\n",
                     V);
        return 2;
      }
    } else if (const char *V = Value("--workers")) {
      int W = std::atoi(V);
      if (W < 1) {
        std::fprintf(stderr, "--workers: '%s' is not a positive count\n", V);
        return 2;
      }
      Opts.Workers = static_cast<unsigned>(W);
    } else if (const char *V = Value("--queue-max")) {
      int Q = std::atoi(V);
      if (Q < 1) {
        std::fprintf(stderr, "--queue-max: '%s' is not a positive depth\n", V);
        return 2;
      }
      Opts.QueueMax = static_cast<size_t>(Q);
    } else if (!std::strcmp(Argv[I], "--foreground")) {
      Foreground = true;
    } else if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    }
  }

  if (!Foreground) {
    // Classic detach. The child reports readiness by outliving the bind;
    // supervisors that need synchronous startup should use --foreground.
    pid_t Pid = ::fork();
    if (Pid < 0) {
      std::perror("gemmd: fork");
      return 1;
    }
    if (Pid > 0) {
      std::printf("gemmd: started pid %ld\n", static_cast<long>(Pid));
      return 0;
    }
    ::setsid();
  }

  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  gemmd::Server Server(Opts);
  if (exo::Error E = Server.start()) {
    std::fprintf(stderr, "gemmd: %s\n", E.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "gemmd: listening on %s\n",
               Server.socketPath().c_str());

  while (!StopRequested.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::fprintf(stderr, "gemmd: shutting down\n");
  gemmd::ServerStats Final = Server.stats();
  Server.stop();
  dumpStats(Final);
  return 0;
}
