//===- bench_check.cpp - BENCH_*.json regression gate ---------------------===//
//
// Part of the exo-ukr project. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Compares a fresh bench report against a committed baseline:
//
//   bench_check [--tolerance F] [--require-rows] baseline.json fresh.json
//
// Rows match on (series, label, metric); a relative regression beyond the
// tolerance (default 0.10 = 10%) in the row's declared "better" direction
// fails the gate. Exit codes: 0 pass, 1 regression, 2 usage/parse error.
// This is the gate future perf PRs cite: regenerate the BENCH_*.json in
// question, run bench_check against the committed baseline, and paste the
// summary (see EXPERIMENTS.md for the workflow).
//
//===----------------------------------------------------------------------===//

#include "benchutil/Report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace benchutil;

static int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--tolerance F] [--require-rows] "
               "baseline.json fresh.json\n"
               "  --tolerance F    tolerated relative regression "
               "(default 0.10)\n"
               "  --require-rows   baseline rows missing from the fresh "
               "report fail the gate\n",
               Argv0);
  return 2;
}

int main(int Argc, char **Argv) {
  CompareOptions Opts;
  std::vector<std::string> Paths;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--tolerance") && I + 1 < Argc) {
      Opts.Tolerance = std::atof(Argv[++I]);
      if (Opts.Tolerance < 0)
        return usage(Argv[0]);
    } else if (!std::strcmp(Argv[I], "--require-rows")) {
      Opts.RequireAllRows = true;
    } else if (Argv[I][0] == '-') {
      return usage(Argv[0]);
    } else {
      Paths.push_back(Argv[I]);
    }
  }
  if (Paths.size() != 2)
    return usage(Argv[0]);

  exo::Expected<Json> Baseline = Json::load(Paths[0]);
  if (!Baseline) {
    std::fprintf(stderr, "bench_check: %s\n",
                 Baseline.takeError().message().c_str());
    return 2;
  }
  exo::Expected<Json> Fresh = Json::load(Paths[1]);
  if (!Fresh) {
    std::fprintf(stderr, "bench_check: %s\n",
                 Fresh.takeError().message().c_str());
    return 2;
  }

  exo::Expected<CompareResult> Res =
      compareReports(*Baseline, *Fresh, Opts);
  if (!Res) {
    std::fprintf(stderr, "bench_check: %s\n",
                 Res.takeError().message().c_str());
    return 2;
  }

  std::printf("bench_check: %s vs %s (tolerance %.0f%%)\n", Paths[0].c_str(),
              Paths[1].c_str(), Opts.Tolerance * 100.0);
  std::printf("  rows compared: %d\n", Res->Compared);
  for (const std::string &S : Res->Improvements)
    std::printf("  improved:  %s\n", S.c_str());
  for (const std::string &S : Res->Notes)
    std::printf("  note:      %s\n", S.c_str());
  for (const std::string &S : Res->Regressions)
    std::printf("  REGRESSED: %s\n", S.c_str());
  if (!Res->pass()) {
    std::printf("bench_check: FAIL (%zu regression(s))\n",
                Res->Regressions.size());
    return 1;
  }
  std::printf("bench_check: PASS\n");
  return 0;
}
