//===- ukr_gen.cpp - Command-line micro-kernel generator ------------------===//
//
// The repository's analogue of the paper artifact's generator script: emit
// a micro-kernel for a given (MR, NR, type, ISA) from the command line,
// optionally printing every intermediate scheduling step (the paper's
// `microkernel_generator.sh` walkthrough).
//
// Usage:
//   ukr_gen [--mr N] [--nr N] [--isa neon|avx2|avx512|portable]
//           [--type f32|f16|f64] [--style auto|lane|bcst|scalar]
//           [--emit c|ir|steps|all] [--axpby] [--no-unroll]
//           [--unroll-compute]
//
//===----------------------------------------------------------------------===//

#include "exo/ir/Printer.h"
#include "ukr/UkrSchedule.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace exo;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mr N] [--nr N] [--isa neon|avx2|avx512|portable]\n"
      "          [--type f32|f16|f64] [--style auto|lane|bcst|scalar]\n"
      "          [--emit c|ir|steps|all] [--axpby] [--no-unroll]\n"
      "          [--unroll-compute]\n",
      Argv0);
}

} // namespace

int main(int Argc, char **Argv) {
  ukr::UkrConfig Cfg;
  Cfg.Isa = &neonIsa(); // The paper's default target.
  std::string Emit = "c";

  for (int I = 1; I < Argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = Value("--mr")) {
      Cfg.MR = std::atoll(V);
    } else if (const char *V = Value("--nr")) {
      Cfg.NR = std::atoll(V);
    } else if (const char *V = Value("--isa")) {
      Cfg.Isa = findIsa(V);
      if (!Cfg.Isa) {
        std::fprintf(stderr, "unknown ISA '%s'\n", V);
        return 2;
      }
    } else if (const char *V = Value("--type")) {
      if (!parseScalarKind(V, Cfg.Ty)) {
        std::fprintf(stderr, "unknown type '%s'\n", V);
        return 2;
      }
    } else if (const char *V = Value("--style")) {
      if (!std::strcmp(V, "auto"))
        Cfg.Style = ukr::FmaStyle::Auto;
      else if (!std::strcmp(V, "lane"))
        Cfg.Style = ukr::FmaStyle::Lane;
      else if (!std::strcmp(V, "bcst"))
        Cfg.Style = ukr::FmaStyle::Broadcast;
      else if (!std::strcmp(V, "scalar"))
        Cfg.Style = ukr::FmaStyle::Scalar;
      else {
        std::fprintf(stderr, "unknown style '%s'\n", V);
        return 2;
      }
    } else if (const char *V = Value("--emit")) {
      Emit = V;
    } else if (!std::strcmp(Argv[I], "--axpby")) {
      Cfg.GeneralAlphaBeta = true;
    } else if (!std::strcmp(Argv[I], "--no-unroll")) {
      Cfg.UnrollLoads = false;
    } else if (!std::strcmp(Argv[I], "--unroll-compute")) {
      Cfg.UnrollCompute = true;
    } else if (!std::strcmp(Argv[I], "--help") ||
               !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    }
  }

  auto R = ukr::generateUkernel(Cfg);
  if (!R) {
    std::fprintf(stderr, "generation failed: %s\n", R.message().c_str());
    return 1;
  }

  if (Emit == "steps" || Emit == "all") {
    int N = 0;
    for (const ukr::UkrStep &S : R->Steps)
      std::printf("# ---- step %d: %s ----\n%s\n", ++N, S.Label.c_str(),
                  printProc(S.P).c_str());
  }
  if (Emit == "ir" || Emit == "all")
    std::printf("%s\n", printProc(R->Final).c_str());
  if (Emit == "c" || Emit == "all")
    std::printf("%s", R->CSource.c_str());
  if (Emit != "c" && Emit != "ir" && Emit != "steps" && Emit != "all") {
    std::fprintf(stderr, "unknown --emit mode '%s'\n", Emit.c_str());
    return 2;
  }
  return 0;
}
