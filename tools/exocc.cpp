//===- exocc.cpp - Compile a textual proc to C ----------------------------===//
//
// A minimal compiler driver over the front-end: reads a proc in the
// surface syntax (see exo/front/Parse.h), optionally checks bounds, and
// emits the C translation unit — the "Exo generates plain C" contract as a
// standalone tool.
//
// Usage: exocc [--isa neon|avx2|avx512|portable] [--check] [--print-ir]
//              [--schedule script.sched] [file]   (stdin when no file)
//
// With --schedule, the directives in the script (see
// exo/front/ScheduleScript.h) are applied to the parsed proc before
// emission — proc in, schedule in, optimized C out.
//
//===----------------------------------------------------------------------===//

#include "exo/check/Bounds.h"
#include "exo/codegen/CEmit.h"
#include "exo/front/Parse.h"
#include "exo/front/ScheduleScript.h"
#include "exo/ir/Printer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

using namespace exo;

int main(int Argc, char **Argv) {
  const IsaLib *Isa = nullptr;
  bool Check = false, PrintIr = false;
  const char *Path = nullptr;
  const char *SchedPath = nullptr;

  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--isa") && I + 1 < Argc) {
      Isa = findIsa(Argv[++I]);
      if (!Isa) {
        std::fprintf(stderr, "unknown ISA '%s'\n", Argv[I]);
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--schedule") && I + 1 < Argc) {
      SchedPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--check")) {
      Check = true;
    } else if (!std::strcmp(Argv[I], "--print-ir")) {
      PrintIr = true;
    } else if (!std::strcmp(Argv[I], "--help")) {
      std::fprintf(stderr,
                   "usage: %s [--isa name] [--check] [--print-ir] [file]\n",
                   Argv[0]);
      return 0;
    } else if (Argv[I][0] != '-') {
      Path = Argv[I];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Argv[I]);
      return 2;
    }
  }

  std::string Text;
  if (Path) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Path);
      return 1;
    }
    Text.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  } else {
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), stdin)) > 0)
      Text.append(Buf, N);
  }

  auto P = parseProc(Text, isaInstrResolver());
  if (!P) {
    std::fprintf(stderr, "parse error: %s\n", P.message().c_str());
    return 1;
  }
  if (SchedPath) {
    std::ifstream In(SchedPath);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", SchedPath);
      return 1;
    }
    std::string Sched{std::istreambuf_iterator<char>(In),
                      std::istreambuf_iterator<char>()};
    auto R = runScheduleScript(*P, Sched);
    if (!R) {
      std::fprintf(stderr, "schedule error: %s\n", R.message().c_str());
      return 1;
    }
    *P = std::move(R->Final);
  }
  if (Check) {
    if (Error Err = checkBounds(*P)) {
      std::fprintf(stderr, "bounds check failed: %s\n",
                   Err.message().c_str());
      return 1;
    }
  }
  if (PrintIr)
    std::printf("%s\n", printProc(*P).c_str());

  CodegenOptions Opts;
  Opts.Isa = Isa;
  auto Src = emitCModule(*P, Opts);
  if (!Src) {
    std::fprintf(stderr, "codegen error: %s\n", Src.message().c_str());
    return 1;
  }
  std::printf("%s", Src->c_str());
  return 0;
}
