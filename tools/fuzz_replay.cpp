//===- fuzz_replay.cpp - Replay, minimize, and sweep fuzz repro files -----===//
//
// Replays serialized fuzz samples against the full oracle battery:
//
//   fuzz_replay FILE...                 re-run each repro; exit 1 on the
//                                       first oracle failure (regression
//                                       corpus mode)
//   fuzz_replay --expect-fail FILE...   invert: every file must still fail
//                                       (committed fault repros)
//   fuzz_replay --minimize FILE         shrink a failing repro and print
//                                       (or --out PATH, write) the result
//   fuzz_replay --fuzz                  run a fresh campaign (EXO_FUZZ_SEED /
//                                       EXO_FUZZ_ITERS / EXO_FUZZ_FAULT or
//                                       --seed/--iters/--fault); on failure,
//                                       minimize and write the repro to
//                                       --out PATH (default fuzz_fail.repro)
//
// Common flags:
//   --no-jit / --no-cross / --driver    narrow or widen the oracle set
//   --trials N                          interpreter trials per sample
//
//===----------------------------------------------------------------------===//

#include "exo/fuzz/Fuzz.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace exo;
using namespace exo::fuzz;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [oracle flags] FILE...\n"
      "       %s [oracle flags] --expect-fail FILE...\n"
      "       %s [oracle flags] --minimize FILE [--out PATH]\n"
      "       %s [oracle flags] --fuzz [--seed N] [--iters N] "
      "[--fault STR] [--out PATH]\n"
      "oracle flags: --no-jit --no-cross --driver --trials N\n",
      Argv0, Argv0, Argv0, Argv0);
}

int replayOne(const std::string &Path, const OracleOptions &O,
              bool ExpectFail) {
  Expected<FuzzSample> S = loadSampleFile(Path);
  if (!S) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), S.message().c_str());
    return 2;
  }
  OracleOutcome Res;
  Error E = runOracles(*S, O, &Res);
  if (Res.Rejected) {
    std::fprintf(stderr, "%s: sample rejected by the scheduler\n",
                 Path.c_str());
    return 2;
  }
  if (ExpectFail) {
    if (!E) {
      std::fprintf(stderr, "%s: PASSES but was expected to fail (%s)\n",
                   Path.c_str(), S->summary().c_str());
      return 1;
    }
    std::printf("%s: still fails as expected: %s\n", Path.c_str(),
                E.message().c_str());
    return 0;
  }
  if (E) {
    std::fprintf(stderr, "%s: FAIL (%s): %s\n", Path.c_str(),
                 S->summary().c_str(), E.message().c_str());
    return 1;
  }
  if (Res.StepsSkipped != 0) {
    // A corpus entry whose steps the scheduler skipped tests nothing — the
    // repro has drifted from the rewrite engine and must be refreshed.
    std::fprintf(stderr, "%s: VACUOUS: %d of %d steps skipped\n", Path.c_str(),
                 Res.StepsSkipped, Res.StepsSkipped + Res.StepsApplied);
    return 1;
  }
  std::printf("%s: ok (%s)\n", Path.c_str(), S->summary().c_str());
  return 0;
}

int minimizeFile(const std::string &Path, const std::string &OutPath,
                 const OracleOptions &O) {
  Expected<FuzzSample> S = loadSampleFile(Path);
  if (!S) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), S.message().c_str());
    return 2;
  }
  int Rounds = 0;
  FuzzSample Min = minimizeSample(*S, O, &Rounds);
  std::fprintf(stderr, "minimized in %d oracle runs: %s\n", Rounds,
               Min.summary().c_str());
  if (OutPath.empty()) {
    std::fputs(serializeSample(Min).c_str(), stdout);
    return 0;
  }
  if (Error E = saveSampleFile(Min, OutPath)) {
    std::fprintf(stderr, "%s\n", E.message().c_str());
    return 2;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}

void printStats(const FuzzStats &St) {
  std::string Sched, Cmp;
  for (const std::string &S : St.IsasScheduled)
    Sched += (Sched.empty() ? "" : ",") + S;
  for (const std::string &S : St.IsasCompared)
    Cmp += (Cmp.empty() ? "" : ",") + S;
  std::printf("samples=%d rejected=%d interp=%d jit=%d cross=%d driver=%d\n"
              "isas scheduled: %s\nisas compared:  %s\n",
              St.Samples, St.Rejected, St.InterpChecks, St.JitChecks,
              St.CrossChecks, St.DriverChecks, Sched.c_str(), Cmp.c_str());
}

int runCampaign(const FuzzOptions &FO, const std::string &OutPath) {
  ScheduleFuzzer F(FO);
  std::optional<FuzzFailure> Fail = F.run();
  printStats(F.stats());
  if (!Fail) {
    std::printf("campaign clean (seed=0x%llx, %d iterations)\n",
                static_cast<unsigned long long>(FO.Seed), FO.Iterations);
    return 0;
  }
  std::fprintf(stderr, "FAIL: %s\n  sample: %s\n", Fail->Message.c_str(),
               Fail->Sample.summary().c_str());
  int Rounds = 0;
  FuzzSample Min = minimizeSample(Fail->Sample, Fail->Oracle, &Rounds);
  std::fprintf(stderr, "minimized in %d oracle runs: %s\n", Rounds,
               Min.summary().c_str());
  std::string Path = OutPath.empty() ? "fuzz_fail.repro" : OutPath;
  if (Error E = saveSampleFile(Min, Path))
    std::fprintf(stderr, "%s\n", E.message().c_str());
  else
    std::fprintf(stderr, "repro written to %s\n", Path.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  OracleOptions O;
  bool ExpectFail = false, Minimize = false, Fuzz = false;
  std::string OutPath;
  FuzzOptions FO;
  FO.Seed = fuzzSeedFromEnv(FO.Seed);
  FO.Iterations = fuzzItersFromEnv(FO.Iterations);
  FO.Fault = fuzzFaultFromEnv();
  std::vector<std::string> Files;

  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    auto NextArg = [&]() -> const char * {
      if (K + 1 >= Argc) {
        usage(Argv[0]);
        std::exit(2);
      }
      return Argv[++K];
    };
    if (A == "--expect-fail")
      ExpectFail = true;
    else if (A == "--minimize")
      Minimize = true;
    else if (A == "--fuzz")
      Fuzz = true;
    else if (A == "--out")
      OutPath = NextArg();
    else if (A == "--seed")
      FO.Seed = std::strtoull(NextArg(), nullptr, 0);
    else if (A == "--iters")
      FO.Iterations = std::atoi(NextArg());
    else if (A == "--fault")
      FO.Fault = NextArg();
    else if (A == "--no-jit")
      O.CheckJit = false;
    else if (A == "--no-cross")
      O.CheckCross = false;
    else if (A == "--driver")
      O.CheckDriver = true;
    else if (A == "--trials")
      O.InterpTrials = std::atoi(NextArg());
    else if (A == "--help" || A == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", A.c_str());
      usage(Argv[0]);
      return 2;
    } else {
      Files.push_back(A);
    }
  }

  if (Fuzz) {
    if (!Files.empty() || Minimize || ExpectFail) {
      usage(Argv[0]);
      return 2;
    }
    FO.Oracle = O;
    return runCampaign(FO, OutPath);
  }
  if (Minimize) {
    if (Files.size() != 1 || ExpectFail) {
      usage(Argv[0]);
      return 2;
    }
    return minimizeFile(Files[0], OutPath, O);
  }
  if (Files.empty()) {
    usage(Argv[0]);
    return 2;
  }
  int Rc = 0;
  for (const std::string &F : Files) {
    int R = replayOne(F, O, ExpectFail);
    if (R != 0 && Rc == 0)
      Rc = R;
  }
  return Rc;
}
