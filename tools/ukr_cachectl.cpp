//===- ukr_cachectl.cpp - Persistent kernel-cache administration ----------===//
//
// Operator CLI over the persistent JIT artifact cache:
//
//   ukr_cachectl list                 show cached artifacts (key, symbol,
//                                     size, age)
//   ukr_cachectl warm                 precompile the standard shape family
//                                     (full tile + edge family) into the
//                                     cache — the AOT warmup path; run it
//                                     once before benching so timed runs
//                                     never invoke the compiler. With
//                                     --shape/--model, warms the kernels the
//                                     Engine planner selects per problem
//                                     instead of the fixed family.
//   ukr_cachectl prune                evict LRU entries over the size bound
//   ukr_cachectl verify               dlopen-check every artifact; --fix
//                                     removes corrupt ones
//   ukr_cachectl stats                one-shot counter dump: the global
//                                     Engine plan cache (hits, misses,
//                                     builds, evictions, sticky errors),
//                                     the KernelService JIT cache, and the
//                                     disk cache footprint; --json emits a
//                                     machine-readable object
//   ukr_cachectl tune                 search the schedule space for each
//                                     --shape/--model problem and persist
//                                     winners into the tuning-prior
//                                     database (see docs/TUNING.md)
//   ukr_cachectl priors ACTION        administer the prior database:
//                                     list, verify (quarantine corrupt
//                                     records), prune (drop quarantined /
//                                     foreign / overflow records)
//   ukr_cachectl plan                 print the planner's decision and its
//                                     provenance (model/prior/tuned) for
//                                     each --shape problem
//
// Common flags:
//   --dir PATH        operate on this cache root (default:
//                     $EXO_JIT_CACHE_DIR, else ~/.cache/exo-ukr)
//   --db PATH         operate on this prior-database root (default:
//                     $EXO_GEMM_PRIOR_DB, else ~/.cache/exo-ukr/priors)
//   warm:  --mr N --nr N (family base tile, default 8x12), --full (every
//          pickShape candidate tile), --jobs N (compile workers),
//          --shape MxNxK (repeatable: warm the planner's kernel family for
//          that GEMM problem), --model resnet|vgg (every layer shape of
//          the model's table, the §IV-C workloads)
//   prune: --max-bytes N (default $EXO_JIT_CACHE_MAX_BYTES or 256 MiB)
//   tune:  --shape/--model as warm, --budget N (candidates per shape),
//          --seconds S (per-candidate time), --threads N, --min-margin F
//          (relative improvement required to store a winner)
//   plan/tune/warm: --dtype f32|f16|bf16|i8 (default f32) — plan and warm
//          the typed engine path / store dtype-keyed tuning records
//          (docs/PRECISION.md). i8 tune is rejected (fixed scalar tile);
//          non-f32 family warm needs --shape/--model (the fixed family is
//          an f32 notion).
//   priors prune: --keep-foreign (keep other machines' records),
//          --max-records N (cap record count)
//
//===----------------------------------------------------------------------===//

#include "benchutil/Json.h"
#include "dnn/Models.h"
#include "exo/jit/DiskCache.h"
#include "gemm/Engine.h"
#include "gemm/Governor.h"
#include "gemm/Planner.h"
#include "gemm/PriorDb.h"
#include "gemm/Tuner.h"
#include "ukr/KernelService.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <dlfcn.h>
#include <set>
#include <string>
#include <vector>

using namespace exo;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir PATH] list\n"
               "       %s [--dir PATH] warm [--mr N] [--nr N] [--full] "
               "[--jobs N] [--shape MxNxK]... [--model resnet|vgg] "
               "[--dtype f32|f16|bf16|i8]\n"
               "       %s [--dir PATH] prune [--max-bytes N]\n"
               "       %s [--dir PATH] verify [--fix]\n"
               "       %s [--dir PATH] stats [--json]\n"
               "       %s [--db PATH] tune [--shape MxNxK]... "
               "[--model resnet|vgg] [--budget N] [--seconds S] "
               "[--threads N] [--min-margin F] [--dtype f32|f16|bf16]\n"
               "       %s [--db PATH] priors list|verify|prune "
               "[--keep-foreign] [--max-records N]\n"
               "       %s [--db PATH] plan [--shape MxNxK]... "
               "[--dtype f32|f16|bf16|i8]\n",
               Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0);
}

int cmdList() {
  JitDiskCache &DC = JitDiskCache::global();
  if (!DC.enabled()) {
    std::fprintf(stderr, "cache disabled (root: %s)\n", DC.root().c_str());
    return 1;
  }
  std::vector<JitDiskCache::Entry> Entries = DC.list();
  uint64_t Total = 0;
  std::printf("%-18s %-40s %10s %8s  %s\n", "key", "symbol", "bytes",
              "age(s)", "flags");
  time_t Now = time(nullptr);
  for (const auto &E : Entries) {
    Total += E.Bytes;
    std::printf("k%016llx %-40s %10llu %8lld  %s\n",
                static_cast<unsigned long long>(E.Key),
                E.Meta.Symbol.empty() ? "?" : E.Meta.Symbol.c_str(),
                static_cast<unsigned long long>(E.Bytes),
                static_cast<long long>(Now - E.Mtime),
                E.Meta.Flags.c_str());
  }
  std::printf("%zu artifact(s), %llu bytes, root %s\n", Entries.size(),
              static_cast<unsigned long long>(Total), DC.root().c_str());
  return 0;
}

/// One GEMM problem named on the command line (--shape) or drawn from a
/// model's layer table (--model).
struct Problem {
  int64_t M = 0, N = 0, K = 0;
};

int cmdWarm(int64_t MR, int64_t NR, bool Full, unsigned Jobs,
            const std::vector<Problem> &Problems, gemm::DType Ty) {
  if (MR < 1 || NR < 1) {
    std::fprintf(stderr, "warm: --mr/--nr must be positive (got %lldx%lld)\n",
                 static_cast<long long>(MR), static_cast<long long>(NR));
    return 2;
  }
  if (Ty != gemm::DType::F32 && Problems.empty()) {
    std::fprintf(stderr, "warm: --dtype %s needs --shape/--model (the fixed "
                         "shape family is an f32 notion)\n",
                 gemm::dtypeName(Ty));
    return 2;
  }
  JitDiskCache &DC = JitDiskCache::global();
  if (!DC.enabled()) {
    std::fprintf(stderr, "cache disabled (root: %s)\n", DC.root().c_str());
    return 1;
  }
  if (!jitAvailable()) {
    std::fprintf(stderr, "no working C compiler (EXO_CC/cc)\n");
    return 1;
  }
  std::vector<ukr::UkrConfig> Family;
  if (Problems.empty()) {
    Family = ukr::standardShapeFamily(MR, NR, Full);
  } else {
    // Planner-driven warm-up: the kernels Engine::sgemm would select for
    // each problem, deduplicated across problems that share tiles.
    std::set<std::string> Seen;
    for (const Problem &P : Problems) {
      std::printf("plan %lldx%lldx%lld:", static_cast<long long>(P.M),
                  static_cast<long long>(P.N), static_cast<long long>(P.K));
      for (const ukr::UkrConfig &Cfg :
           gemm::planKernelFamily(P.M, P.N, P.K, Ty)) {
        std::printf(" %lldx%lld", static_cast<long long>(Cfg.MR),
                    static_cast<long long>(Cfg.NR));
        if (Seen.insert(Cfg.kernelName()).second)
          Family.push_back(Cfg);
      }
      std::printf("\n");
    }
  }
  std::printf("warming %zu kernel(s) into %s with %u worker(s)...\n",
              Family.size(), DC.root().c_str(), Jobs ? Jobs : 2u);
  ukr::KernelService::Options Opts;
  Opts.Workers = Jobs;
  ukr::KernelService Service(Opts);
  Error Err = Service.warm(Family);
  ukr::printCacheStats(Service.stats(), stdout);
  if (Err) {
    std::fprintf(stderr, "%s\n", Err.message().c_str());
    return 1;
  }
  std::printf("warm ok: %zu kernel(s) ready\n", Service.size());
  return 0;
}

int cmdPrune(uint64_t MaxBytes) {
  JitDiskCache &DC = JitDiskCache::global();
  size_t Evicted = DC.prune(MaxBytes);
  std::printf("evicted %zu artifact(s); %zu remain under %s\n", Evicted,
              DC.list().size(), DC.root().c_str());
  return 0;
}

int cmdVerify(bool Fix) {
  JitDiskCache &DC = JitDiskCache::global();
  size_t Bad = 0;
  for (const auto &E : DC.list()) {
    bool Ok = false;
    // An unparsable sidecar is corruption in its own right (the recorded
    // ABI cannot be trusted), even when the .so itself still loads.
    if (!E.MetaCorrupt) {
      if (void *H = dlopen(E.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL)) {
        Ok = E.Meta.Symbol.empty() ||
             dlsym(H, E.Meta.Symbol.c_str()) != nullptr;
        dlclose(H);
      }
    }
    if (Ok)
      continue;
    ++Bad;
    std::printf("corrupt: k%016llx (%s)%s\n",
                static_cast<unsigned long long>(E.Key),
                E.MetaCorrupt ? "unparsable meta" : E.Meta.Symbol.c_str(),
                Fix ? " — removed" : "");
    if (Fix)
      DC.remove(E.Key);
  }
  std::printf("%zu corrupt artifact(s)%s\n", Bad,
              Bad && !Fix ? " (re-run with --fix to remove)" : "");
  return Bad && !Fix ? 1 : 0;
}

int cmdStats(bool JsonOut) {
  // The process-global caches this CLI can observe directly: the shared
  // Engine plan cache, the shared KernelService JIT counters, and the
  // on-disk artifact store. (A running gemmd's live counters travel over
  // the wire instead — see docs/GEMMD.md.)
  gemm::EngineStats ES = gemm::Engine::global().stats();
  ukr::CacheStats US = ukr::globalCacheStats();
  JitDiskCache &DC = JitDiskCache::global();
  std::vector<JitDiskCache::Entry> Entries = DC.list();
  uint64_t DiskBytes = 0;
  for (const auto &E : Entries)
    DiskBytes += E.Bytes;

  if (JsonOut) {
    benchutil::Json Plan = benchutil::Json::object();
    Plan.set("hits", static_cast<int64_t>(ES.Hits));
    Plan.set("misses", static_cast<int64_t>(ES.Misses));
    Plan.set("builds", static_cast<int64_t>(ES.Builds));
    Plan.set("rebuilds", static_cast<int64_t>(ES.Rebuilds));
    Plan.set("evictions", static_cast<int64_t>(ES.Evictions));
    Plan.set("degenerate", static_cast<int64_t>(ES.Degenerate));
    Plan.set("sticky_errors", static_cast<int64_t>(ES.StickyErrors));
    Plan.set("plans_model", static_cast<int64_t>(ES.PlansFromModel));
    Plan.set("plans_prior", static_cast<int64_t>(ES.PlansFromPrior));
    Plan.set("plans_tuned", static_cast<int64_t>(ES.PlansFromTuned));
    Plan.set("prior_rejected", static_cast<int64_t>(ES.PriorRejected));
    // Live cache composition by dtype (a gauge, not a counter): how many
    // of the currently cached plans belong to each precision.
    benchutil::Json ByDtype = benchutil::Json::object();
    for (unsigned D = 0; D != gemm::DTypeCount; ++D)
      ByDtype.set(gemm::dtypeName(static_cast<gemm::DType>(D)),
                  static_cast<int64_t>(ES.PlansByDtype[D]));
    Plan.set("plans_by_dtype", std::move(ByDtype));
    benchutil::Json Jit = benchutil::Json::object();
    Jit.set("hits", static_cast<int64_t>(US.Hits));
    Jit.set("misses", static_cast<int64_t>(US.Misses));
    Jit.set("fallbacks", static_cast<int64_t>(US.Fallbacks));
    Jit.set("builds", static_cast<int64_t>(US.Builds));
    Jit.set("failures", static_cast<int64_t>(US.Failures));
    Jit.set("disk_hits", static_cast<int64_t>(US.DiskHits));
    Jit.set("compiles", static_cast<int64_t>(US.Compiles));
    Jit.set("compile_ms", US.CompileMs);
    benchutil::Json Disk = benchutil::Json::object();
    Disk.set("enabled", DC.enabled());
    Disk.set("root", DC.root());
    Disk.set("artifacts", static_cast<int64_t>(Entries.size()));
    Disk.set("bytes", static_cast<int64_t>(DiskBytes));
    gemm::PriorDb::Stats PS = gemm::PriorDb::stats();
    benchutil::Json Priors = benchutil::Json::object();
    Priors.set("enabled", gemm::PriorDb::global().enabled());
    Priors.set("root", gemm::PriorDb::global().root());
    Priors.set("lookups", static_cast<int64_t>(PS.Lookups));
    Priors.set("hits", static_cast<int64_t>(PS.Hits));
    Priors.set("class_hits", static_cast<int64_t>(PS.ClassHits));
    Priors.set("machine_mismatch", static_cast<int64_t>(PS.MachineMismatch));
    Priors.set("corrupt_seen", static_cast<int64_t>(PS.CorruptSeen));
    Priors.set("quarantined", static_cast<int64_t>(PS.Quarantined));
    gemm::Governor &Gov = gemm::Governor::global();
    gemm::GovernorStats GS = Gov.stats();
    benchutil::Json Governor = benchutil::Json::object();
    Governor.set("enabled", gemm::Governor::enabledByEnv());
    Governor.set("ceiling", Gov.ceiling());
    Governor.set("min_work_flops", Gov.minWorkFlops());
    Governor.set("curve_stored",
                 gemm::PriorDb::global().lookupCurve().has_value());
    Governor.set("grants", static_cast<int64_t>(GS.Grants));
    Governor.set("shape_clamped", static_cast<int64_t>(GS.ShapeClamped));
    Governor.set("occupancy_clamped",
                 static_cast<int64_t>(GS.OccupancyClamped));
    Governor.set("full_width", static_cast<int64_t>(GS.FullWidth));
    Governor.set("width_sum", static_cast<int64_t>(GS.WidthSum));
    benchutil::Json Root = benchutil::Json::object();
    Root.set("schema", "ukr_cachectl.stats/v1");
    Root.set("plan_cache", std::move(Plan));
    Root.set("jit_cache", std::move(Jit));
    Root.set("disk_cache", std::move(Disk));
    Root.set("prior_db", std::move(Priors));
    Root.set("governor", std::move(Governor));
    std::printf("%s\n", Root.dump().c_str());
    return 0;
  }

  std::printf("plan cache:  %llu hit / %llu miss, %llu built (%llu rebuilt), "
              "%llu evicted, %llu degenerate, %llu sticky error(s)\n",
              static_cast<unsigned long long>(ES.Hits),
              static_cast<unsigned long long>(ES.Misses),
              static_cast<unsigned long long>(ES.Builds),
              static_cast<unsigned long long>(ES.Rebuilds),
              static_cast<unsigned long long>(ES.Evictions),
              static_cast<unsigned long long>(ES.Degenerate),
              static_cast<unsigned long long>(ES.StickyErrors));
  std::printf("jit cache:   %llu hit / %llu miss, %llu fallback(s), %llu "
              "build(s) (%llu failed), %llu disk hit(s), %llu compile(s) "
              "(%.1f ms)\n",
              static_cast<unsigned long long>(US.Hits),
              static_cast<unsigned long long>(US.Misses),
              static_cast<unsigned long long>(US.Fallbacks),
              static_cast<unsigned long long>(US.Builds),
              static_cast<unsigned long long>(US.Failures),
              static_cast<unsigned long long>(US.DiskHits),
              static_cast<unsigned long long>(US.Compiles), US.CompileMs);
  std::printf("disk cache:  %zu artifact(s), %llu bytes, root %s%s\n",
              Entries.size(), static_cast<unsigned long long>(DiskBytes),
              DC.root().c_str(), DC.enabled() ? "" : " (disabled)");
  std::printf("plan source: %llu model, %llu prior, %llu tuned, %llu "
              "rejected prior row(s)/record(s)\n",
              static_cast<unsigned long long>(ES.PlansFromModel),
              static_cast<unsigned long long>(ES.PlansFromPrior),
              static_cast<unsigned long long>(ES.PlansFromTuned),
              static_cast<unsigned long long>(ES.PriorRejected));
  std::printf("plans live:  ");
  for (unsigned D = 0; D != gemm::DTypeCount; ++D)
    std::printf("%s%llu %s", D ? ", " : "",
                static_cast<unsigned long long>(ES.PlansByDtype[D]),
                gemm::dtypeName(static_cast<gemm::DType>(D)));
  std::printf("\n");
  gemm::PriorDb::Stats PS = gemm::PriorDb::stats();
  std::printf("prior db:    %llu lookup(s), %llu exact / %llu class hit(s), "
              "%llu machine mismatch(es), %llu corrupt seen, root %s%s\n",
              static_cast<unsigned long long>(PS.Lookups),
              static_cast<unsigned long long>(PS.Hits),
              static_cast<unsigned long long>(PS.ClassHits),
              static_cast<unsigned long long>(PS.MachineMismatch),
              static_cast<unsigned long long>(PS.CorruptSeen),
              gemm::PriorDb::global().root().c_str(),
              gemm::PriorDb::global().enabled() ? "" : " (disabled)");
  // Why a call got fewer threads than EXO_GEMM_GOVERNOR_MAX: shape-clamped
  // grants hit the work floor / scaling curve, occupancy-clamped grants
  // found the budget or pool already claimed by concurrent callers.
  gemm::Governor &Gov = gemm::Governor::global();
  gemm::GovernorStats GS = Gov.stats();
  std::printf("governor:    %s, ceiling %lld, min work %lld flops, curve %s; "
              "%llu grant(s), %llu shape-clamped, %llu occupancy-clamped, "
              "%llu full-width, avg width %.2f\n",
              gemm::Governor::enabledByEnv() ? "on (EXO_GEMM_GOVERNOR)"
                                             : "off by default",
              static_cast<long long>(Gov.ceiling()),
              static_cast<long long>(Gov.minWorkFlops()),
              gemm::PriorDb::global().lookupCurve() ? "stored" : "none",
              static_cast<unsigned long long>(GS.Grants),
              static_cast<unsigned long long>(GS.ShapeClamped),
              static_cast<unsigned long long>(GS.OccupancyClamped),
              static_cast<unsigned long long>(GS.FullWidth),
              GS.Grants ? static_cast<double>(GS.WidthSum) /
                              static_cast<double>(GS.Grants)
                        : 0.0);
  return 0;
}

int cmdTune(const std::vector<Problem> &Problems, const gemm::TuneOptions &O) {
  if (Problems.empty()) {
    std::fprintf(stderr, "tune: name at least one --shape or --model\n");
    return 2;
  }
  gemm::PriorDb &Db = gemm::PriorDb::global();
  if (!Db.enabled()) {
    std::fprintf(stderr, "prior db disabled (root: %s)\n", Db.root().c_str());
    return 1;
  }
  std::printf("tuning %zu shape(s), budget %lld, %.3gs per candidate, into "
              "%s\n",
              Problems.size(), static_cast<long long>(O.Budget), O.Seconds,
              Db.root().c_str());
  int Failures = 0;
  size_t Stored = 0;
  for (const Problem &P : Problems) {
    Expected<gemm::TuneResult> R = gemm::tuneShape(P.M, P.N, P.K, O, &Db);
    if (!R) {
      std::fprintf(stderr, "tune %lldx%lldx%lld: %s\n",
                   static_cast<long long>(P.M), static_cast<long long>(P.N),
                   static_cast<long long>(P.K), R.message().c_str());
      ++Failures;
      continue;
    }
    if (R->Stored) {
      ++Stored;
      std::printf("tune %lldx%lldx%lld: stored %lldx%lld (%.2f GFLOPS, "
                  "model %lldx%lld %.2f, +%.1f%%), %zu candidate(s)\n",
                  static_cast<long long>(P.M), static_cast<long long>(P.N),
                  static_cast<long long>(P.K),
                  static_cast<long long>(R->Best.MR),
                  static_cast<long long>(R->Best.NR), R->Best.Gflops,
                  static_cast<long long>(R->ModelMR),
                  static_cast<long long>(R->ModelNR), R->ModelGflops,
                  100.0 * (R->Best.Gflops / R->ModelGflops - 1.0),
                  R->Samples.size());
    } else {
      std::printf("tune %lldx%lldx%lld: model %lldx%lld holds (%.2f GFLOPS, "
                  "best candidate %.2f), nothing stored, %zu candidate(s)\n",
                  static_cast<long long>(P.M), static_cast<long long>(P.N),
                  static_cast<long long>(P.K),
                  static_cast<long long>(R->ModelMR),
                  static_cast<long long>(R->ModelNR), R->ModelGflops,
                  R->Best.Gflops, R->Samples.size());
    }
  }
  std::printf("tune done: %zu record(s) stored, %d failure(s)\n", Stored,
              Failures);
  return Failures ? 1 : 0;
}

int cmdPriors(const std::string &Action, bool KeepForeign,
              int64_t MaxRecords) {
  gemm::PriorDb &Db = gemm::PriorDb::global();
  if (!Db.enabled()) {
    std::fprintf(stderr, "prior db disabled (root: %s)\n", Db.root().c_str());
    return 1;
  }
  if (Action == "list") {
    std::vector<gemm::PriorDb::Entry> Entries = Db.list();
    std::printf("%-20s %-7s %-9s %9s %9s  %s\n", "shape", "tile", "gflops",
                "margin", "bytes", "flags");
    for (const auto &E : Entries) {
      if (E.Corrupt) {
        std::printf("%-20s corrupt: %s\n", "?", E.Path.c_str());
        continue;
      }
      std::printf("%5lldx%-5lldx%-7lld %lldx%-5lld %-9.2f %+9.2f %9llu  "
                  "%s%s%s\n",
                  static_cast<long long>(E.Rec.M),
                  static_cast<long long>(E.Rec.N),
                  static_cast<long long>(E.Rec.K),
                  static_cast<long long>(E.Rec.MR),
                  static_cast<long long>(E.Rec.NR), E.Rec.TunedGflops,
                  E.Rec.margin(), static_cast<unsigned long long>(E.Bytes),
                  E.ClassEntry ? "class " : "exact ",
                  E.MachineMatch ? "" : "foreign ",
                  E.Rec.UnrollCompute ? "unroll" : "");
    }
    std::printf("%zu record(s), root %s\n", Entries.size(),
                Db.root().c_str());
    return 0;
  }
  if (Action == "verify") {
    size_t Corrupt = 0;
    for (const auto &E : Db.list())
      if (E.Corrupt) {
        ++Corrupt;
        std::printf("corrupt: %s\n", E.Path.c_str());
      }
    size_t Quarantined = Db.quarantine();
    std::printf("%zu corrupt record(s), %zu quarantined\n", Corrupt,
                Quarantined);
    return 0;
  }
  if (Action == "prune") {
    size_t Removed = Db.prune(!KeepForeign, MaxRecords);
    std::printf("pruned %zu file(s); %zu record(s) remain under %s\n",
                Removed, Db.list().size(), Db.root().c_str());
    return 0;
  }
  std::fprintf(stderr, "priors: '%s' is not list|verify|prune\n",
               Action.c_str());
  return 2;
}

int cmdPlan(const std::vector<Problem> &Problems, gemm::DType Ty) {
  if (Problems.empty()) {
    std::fprintf(stderr, "plan: name at least one --shape\n");
    return 2;
  }
  for (const Problem &P : Problems) {
    gemm::PlanOutcome Out;
    gemm::PlanChoice C =
        gemm::choosePlan(P.M, P.N, P.K, nullptr, "", &Out, Ty);
    std::printf("plan %lldx%lldx%lld (%s): tile %lldx%lld source %s",
                static_cast<long long>(P.M), static_cast<long long>(P.N),
                static_cast<long long>(P.K), gemm::dtypeName(Ty),
                static_cast<long long>(C.MR), static_cast<long long>(C.NR),
                C.Source);
    if (C.Blocks)
      std::printf(" blocks %s", C.Blocks->describe().c_str());
    if (C.UnrollCompute)
      std::printf(" unroll");
    if (Out.PriorRejected + Out.TunedRejected)
      std::printf(" (%llu prior row(s)/record(s) rejected)",
                  static_cast<unsigned long long>(Out.PriorRejected +
                                                  Out.TunedRejected));
    std::printf("\n");
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Cmd, Sub;
  int64_t MR = 8, NR = 12;
  bool Full = false, Fix = false, JsonOut = false, KeepForeign = false;
  unsigned Jobs = 0;
  uint64_t MaxBytes = JitDiskCache::configuredMaxBytes();
  int64_t MaxRecords = 0;
  std::vector<Problem> Problems;
  gemm::DType Dtype = gemm::DType::F32;
  gemm::TuneOptions Tune = gemm::tuneOptionsFromEnv();

  for (int I = 1; I < Argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = Value("--dir")) {
      JitDiskCache::setGlobalRoot(V);
    } else if (const char *V = Value("--db")) {
      gemm::PriorDb::setGlobalRoot(V);
    } else if (const char *V = Value("--budget")) {
      Tune.Budget = std::atoll(V);
      if (Tune.Budget < 1) {
        std::fprintf(stderr, "--budget: '%s' is not a positive count\n", V);
        return 2;
      }
    } else if (const char *V = Value("--seconds")) {
      Tune.Seconds = std::atof(V);
      if (!(Tune.Seconds > 0)) {
        std::fprintf(stderr, "--seconds: '%s' is not a positive number\n", V);
        return 2;
      }
    } else if (const char *V = Value("--threads")) {
      Tune.Threads = std::atoll(V);
      if (Tune.Threads < 1) {
        std::fprintf(stderr, "--threads: '%s' is not a positive count\n", V);
        return 2;
      }
    } else if (const char *V = Value("--min-margin")) {
      Tune.MinMargin = std::atof(V);
    } else if (const char *V = Value("--dtype")) {
      if (!gemm::parseDType(V, Dtype)) {
        std::fprintf(stderr, "--dtype: '%s' is not f32|f16|bf16|i8\n", V);
        return 2;
      }
    } else if (const char *V = Value("--max-records")) {
      MaxRecords = std::atoll(V);
      if (MaxRecords < 0) {
        std::fprintf(stderr, "--max-records: '%s' is not a count\n", V);
        return 2;
      }
    } else if (const char *V = Value("--mr")) {
      MR = std::atoll(V);
    } else if (const char *V = Value("--nr")) {
      NR = std::atoll(V);
    } else if (const char *V = Value("--jobs")) {
      Jobs = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--shape")) {
      Problem P;
      long long M = 0, N = 0, K = 0;
      char Trail = 0;
      if (std::sscanf(V, "%lldx%lldx%lld%c", &M, &N, &K, &Trail) != 3 ||
          M < 1 || N < 1 || K < 1) {
        std::fprintf(stderr, "--shape: '%s' is not MxNxK\n", V);
        return 2;
      }
      P.M = M;
      P.N = N;
      P.K = K;
      Problems.push_back(P);
    } else if (const char *V = Value("--model")) {
      const std::vector<dnn::LayerGemm> *Layers = nullptr;
      if (!std::strcmp(V, "resnet"))
        Layers = &dnn::resnet50Layers();
      else if (!std::strcmp(V, "vgg"))
        Layers = &dnn::vgg16Layers();
      else {
        std::fprintf(stderr, "--model: '%s' is not resnet|vgg\n", V);
        return 2;
      }
      for (const dnn::LayerGemm &L : *Layers)
        Problems.push_back(Problem{L.M, L.N, L.K});
    } else if (const char *V = Value("--max-bytes")) {
      char *End = nullptr;
      MaxBytes = std::strtoull(V, &End, 10);
      if (End == V || *End) {
        // A typo must not parse as 0 and evict the whole cache.
        std::fprintf(stderr, "--max-bytes: '%s' is not a byte count\n", V);
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--full")) {
      Full = true;
    } else if (!std::strcmp(Argv[I], "--fix")) {
      Fix = true;
    } else if (!std::strcmp(Argv[I], "--json")) {
      JsonOut = true;
    } else if (!std::strcmp(Argv[I], "--keep-foreign")) {
      KeepForeign = true;
    } else if (!std::strcmp(Argv[I], "--help") ||
               !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    } else if (Argv[I][0] != '-' && Cmd.empty()) {
      Cmd = Argv[I];
    } else if (Argv[I][0] != '-' && Cmd == "priors" && Sub.empty()) {
      Sub = Argv[I];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    }
  }

  Tune.Dtype = Dtype;
  if (Cmd == "list")
    return cmdList();
  if (Cmd == "warm")
    return cmdWarm(MR, NR, Full, Jobs, Problems, Dtype);
  if (Cmd == "prune")
    return cmdPrune(MaxBytes);
  if (Cmd == "verify")
    return cmdVerify(Fix);
  if (Cmd == "stats")
    return cmdStats(JsonOut);
  if (Cmd == "tune")
    return cmdTune(Problems, Tune);
  if (Cmd == "priors")
    return cmdPriors(Sub, KeepForeign, MaxRecords);
  if (Cmd == "plan")
    return cmdPlan(Problems, Dtype);
  usage(Argv[0]);
  return 2;
}
