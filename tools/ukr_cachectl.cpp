//===- ukr_cachectl.cpp - Persistent kernel-cache administration ----------===//
//
// Operator CLI over the persistent JIT artifact cache:
//
//   ukr_cachectl list                 show cached artifacts (key, symbol,
//                                     size, age)
//   ukr_cachectl warm                 precompile the standard shape family
//                                     (full tile + edge family) into the
//                                     cache — the AOT warmup path; run it
//                                     once before benching so timed runs
//                                     never invoke the compiler. With
//                                     --shape/--model, warms the kernels the
//                                     Engine planner selects per problem
//                                     instead of the fixed family.
//   ukr_cachectl prune                evict LRU entries over the size bound
//   ukr_cachectl verify               dlopen-check every artifact; --fix
//                                     removes corrupt ones
//
// Common flags:
//   --dir PATH        operate on this cache root (default:
//                     $EXO_JIT_CACHE_DIR, else ~/.cache/exo-ukr)
//   warm:  --mr N --nr N (family base tile, default 8x12), --full (every
//          pickShape candidate tile), --jobs N (compile workers),
//          --shape MxNxK (repeatable: warm the planner's kernel family for
//          that GEMM problem), --model resnet|vgg (every layer shape of
//          the model's table, the §IV-C workloads)
//   prune: --max-bytes N (default $EXO_JIT_CACHE_MAX_BYTES or 256 MiB)
//
//===----------------------------------------------------------------------===//

#include "dnn/Models.h"
#include "exo/jit/DiskCache.h"
#include "gemm/Planner.h"
#include "ukr/KernelService.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <dlfcn.h>
#include <set>
#include <string>
#include <vector>

using namespace exo;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir PATH] list\n"
               "       %s [--dir PATH] warm [--mr N] [--nr N] [--full] "
               "[--jobs N] [--shape MxNxK]... [--model resnet|vgg]\n"
               "       %s [--dir PATH] prune [--max-bytes N]\n"
               "       %s [--dir PATH] verify [--fix]\n",
               Argv0, Argv0, Argv0, Argv0);
}

int cmdList() {
  JitDiskCache &DC = JitDiskCache::global();
  if (!DC.enabled()) {
    std::fprintf(stderr, "cache disabled (root: %s)\n", DC.root().c_str());
    return 1;
  }
  std::vector<JitDiskCache::Entry> Entries = DC.list();
  uint64_t Total = 0;
  std::printf("%-18s %-40s %10s %8s  %s\n", "key", "symbol", "bytes",
              "age(s)", "flags");
  time_t Now = time(nullptr);
  for (const auto &E : Entries) {
    Total += E.Bytes;
    std::printf("k%016llx %-40s %10llu %8lld  %s\n",
                static_cast<unsigned long long>(E.Key),
                E.Meta.Symbol.empty() ? "?" : E.Meta.Symbol.c_str(),
                static_cast<unsigned long long>(E.Bytes),
                static_cast<long long>(Now - E.Mtime),
                E.Meta.Flags.c_str());
  }
  std::printf("%zu artifact(s), %llu bytes, root %s\n", Entries.size(),
              static_cast<unsigned long long>(Total), DC.root().c_str());
  return 0;
}

/// One GEMM problem named on the command line (--shape) or drawn from a
/// model's layer table (--model).
struct Problem {
  int64_t M = 0, N = 0, K = 0;
};

int cmdWarm(int64_t MR, int64_t NR, bool Full, unsigned Jobs,
            const std::vector<Problem> &Problems) {
  if (MR < 1 || NR < 1) {
    std::fprintf(stderr, "warm: --mr/--nr must be positive (got %lldx%lld)\n",
                 static_cast<long long>(MR), static_cast<long long>(NR));
    return 2;
  }
  JitDiskCache &DC = JitDiskCache::global();
  if (!DC.enabled()) {
    std::fprintf(stderr, "cache disabled (root: %s)\n", DC.root().c_str());
    return 1;
  }
  if (!jitAvailable()) {
    std::fprintf(stderr, "no working C compiler (EXO_CC/cc)\n");
    return 1;
  }
  std::vector<ukr::UkrConfig> Family;
  if (Problems.empty()) {
    Family = ukr::standardShapeFamily(MR, NR, Full);
  } else {
    // Planner-driven warm-up: the kernels Engine::sgemm would select for
    // each problem, deduplicated across problems that share tiles.
    std::set<std::string> Seen;
    for (const Problem &P : Problems) {
      std::printf("plan %lldx%lldx%lld:", static_cast<long long>(P.M),
                  static_cast<long long>(P.N), static_cast<long long>(P.K));
      for (const ukr::UkrConfig &Cfg : gemm::planKernelFamily(P.M, P.N, P.K)) {
        std::printf(" %lldx%lld", static_cast<long long>(Cfg.MR),
                    static_cast<long long>(Cfg.NR));
        if (Seen.insert(Cfg.kernelName()).second)
          Family.push_back(Cfg);
      }
      std::printf("\n");
    }
  }
  std::printf("warming %zu kernel(s) into %s with %u worker(s)...\n",
              Family.size(), DC.root().c_str(), Jobs ? Jobs : 2u);
  ukr::KernelService::Options Opts;
  Opts.Workers = Jobs;
  ukr::KernelService Service(Opts);
  Error Err = Service.warm(Family);
  ukr::printCacheStats(Service.stats(), stdout);
  if (Err) {
    std::fprintf(stderr, "%s\n", Err.message().c_str());
    return 1;
  }
  std::printf("warm ok: %zu kernel(s) ready\n", Service.size());
  return 0;
}

int cmdPrune(uint64_t MaxBytes) {
  JitDiskCache &DC = JitDiskCache::global();
  size_t Evicted = DC.prune(MaxBytes);
  std::printf("evicted %zu artifact(s); %zu remain under %s\n", Evicted,
              DC.list().size(), DC.root().c_str());
  return 0;
}

int cmdVerify(bool Fix) {
  JitDiskCache &DC = JitDiskCache::global();
  size_t Bad = 0;
  for (const auto &E : DC.list()) {
    bool Ok = false;
    if (void *H = dlopen(E.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL)) {
      Ok = E.Meta.Symbol.empty() ||
           dlsym(H, E.Meta.Symbol.c_str()) != nullptr;
      dlclose(H);
    }
    if (Ok)
      continue;
    ++Bad;
    std::printf("corrupt: k%016llx (%s)%s\n",
                static_cast<unsigned long long>(E.Key),
                E.Meta.Symbol.c_str(), Fix ? " — removed" : "");
    if (Fix)
      DC.remove(E.Key);
  }
  std::printf("%zu corrupt artifact(s)%s\n", Bad,
              Bad && !Fix ? " (re-run with --fix to remove)" : "");
  return Bad && !Fix ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Cmd;
  int64_t MR = 8, NR = 12;
  bool Full = false, Fix = false;
  unsigned Jobs = 0;
  uint64_t MaxBytes = JitDiskCache::configuredMaxBytes();
  std::vector<Problem> Problems;

  for (int I = 1; I < Argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = Value("--dir")) {
      JitDiskCache::setGlobalRoot(V);
    } else if (const char *V = Value("--mr")) {
      MR = std::atoll(V);
    } else if (const char *V = Value("--nr")) {
      NR = std::atoll(V);
    } else if (const char *V = Value("--jobs")) {
      Jobs = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--shape")) {
      Problem P;
      long long M = 0, N = 0, K = 0;
      char Trail = 0;
      if (std::sscanf(V, "%lldx%lldx%lld%c", &M, &N, &K, &Trail) != 3 ||
          M < 1 || N < 1 || K < 1) {
        std::fprintf(stderr, "--shape: '%s' is not MxNxK\n", V);
        return 2;
      }
      P.M = M;
      P.N = N;
      P.K = K;
      Problems.push_back(P);
    } else if (const char *V = Value("--model")) {
      const std::vector<dnn::LayerGemm> *Layers = nullptr;
      if (!std::strcmp(V, "resnet"))
        Layers = &dnn::resnet50Layers();
      else if (!std::strcmp(V, "vgg"))
        Layers = &dnn::vgg16Layers();
      else {
        std::fprintf(stderr, "--model: '%s' is not resnet|vgg\n", V);
        return 2;
      }
      for (const dnn::LayerGemm &L : *Layers)
        Problems.push_back(Problem{L.M, L.N, L.K});
    } else if (const char *V = Value("--max-bytes")) {
      char *End = nullptr;
      MaxBytes = std::strtoull(V, &End, 10);
      if (End == V || *End) {
        // A typo must not parse as 0 and evict the whole cache.
        std::fprintf(stderr, "--max-bytes: '%s' is not a byte count\n", V);
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--full")) {
      Full = true;
    } else if (!std::strcmp(Argv[I], "--fix")) {
      Fix = true;
    } else if (!std::strcmp(Argv[I], "--help") ||
               !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    } else if (Argv[I][0] != '-' && Cmd.empty()) {
      Cmd = Argv[I];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    }
  }

  if (Cmd == "list")
    return cmdList();
  if (Cmd == "warm")
    return cmdWarm(MR, NR, Full, Jobs, Problems);
  if (Cmd == "prune")
    return cmdPrune(MaxBytes);
  if (Cmd == "verify")
    return cmdVerify(Fix);
  usage(Argv[0]);
  return 2;
}
