//===- ukr_cachectl.cpp - Persistent kernel-cache administration ----------===//
//
// Operator CLI over the persistent JIT artifact cache:
//
//   ukr_cachectl list                 show cached artifacts (key, symbol,
//                                     size, age)
//   ukr_cachectl warm                 precompile the standard shape family
//                                     (full tile + edge family) into the
//                                     cache — the AOT warmup path; run it
//                                     once before benching so timed runs
//                                     never invoke the compiler. With
//                                     --shape/--model, warms the kernels the
//                                     Engine planner selects per problem
//                                     instead of the fixed family.
//   ukr_cachectl prune                evict LRU entries over the size bound
//   ukr_cachectl verify               dlopen-check every artifact; --fix
//                                     removes corrupt ones
//   ukr_cachectl stats                one-shot counter dump: the global
//                                     Engine plan cache (hits, misses,
//                                     builds, evictions, sticky errors),
//                                     the KernelService JIT cache, and the
//                                     disk cache footprint; --json emits a
//                                     machine-readable object
//
// Common flags:
//   --dir PATH        operate on this cache root (default:
//                     $EXO_JIT_CACHE_DIR, else ~/.cache/exo-ukr)
//   warm:  --mr N --nr N (family base tile, default 8x12), --full (every
//          pickShape candidate tile), --jobs N (compile workers),
//          --shape MxNxK (repeatable: warm the planner's kernel family for
//          that GEMM problem), --model resnet|vgg (every layer shape of
//          the model's table, the §IV-C workloads)
//   prune: --max-bytes N (default $EXO_JIT_CACHE_MAX_BYTES or 256 MiB)
//
//===----------------------------------------------------------------------===//

#include "benchutil/Json.h"
#include "dnn/Models.h"
#include "exo/jit/DiskCache.h"
#include "gemm/Engine.h"
#include "gemm/Planner.h"
#include "ukr/KernelService.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <dlfcn.h>
#include <set>
#include <string>
#include <vector>

using namespace exo;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir PATH] list\n"
               "       %s [--dir PATH] warm [--mr N] [--nr N] [--full] "
               "[--jobs N] [--shape MxNxK]... [--model resnet|vgg]\n"
               "       %s [--dir PATH] prune [--max-bytes N]\n"
               "       %s [--dir PATH] verify [--fix]\n"
               "       %s [--dir PATH] stats [--json]\n",
               Argv0, Argv0, Argv0, Argv0, Argv0);
}

int cmdList() {
  JitDiskCache &DC = JitDiskCache::global();
  if (!DC.enabled()) {
    std::fprintf(stderr, "cache disabled (root: %s)\n", DC.root().c_str());
    return 1;
  }
  std::vector<JitDiskCache::Entry> Entries = DC.list();
  uint64_t Total = 0;
  std::printf("%-18s %-40s %10s %8s  %s\n", "key", "symbol", "bytes",
              "age(s)", "flags");
  time_t Now = time(nullptr);
  for (const auto &E : Entries) {
    Total += E.Bytes;
    std::printf("k%016llx %-40s %10llu %8lld  %s\n",
                static_cast<unsigned long long>(E.Key),
                E.Meta.Symbol.empty() ? "?" : E.Meta.Symbol.c_str(),
                static_cast<unsigned long long>(E.Bytes),
                static_cast<long long>(Now - E.Mtime),
                E.Meta.Flags.c_str());
  }
  std::printf("%zu artifact(s), %llu bytes, root %s\n", Entries.size(),
              static_cast<unsigned long long>(Total), DC.root().c_str());
  return 0;
}

/// One GEMM problem named on the command line (--shape) or drawn from a
/// model's layer table (--model).
struct Problem {
  int64_t M = 0, N = 0, K = 0;
};

int cmdWarm(int64_t MR, int64_t NR, bool Full, unsigned Jobs,
            const std::vector<Problem> &Problems) {
  if (MR < 1 || NR < 1) {
    std::fprintf(stderr, "warm: --mr/--nr must be positive (got %lldx%lld)\n",
                 static_cast<long long>(MR), static_cast<long long>(NR));
    return 2;
  }
  JitDiskCache &DC = JitDiskCache::global();
  if (!DC.enabled()) {
    std::fprintf(stderr, "cache disabled (root: %s)\n", DC.root().c_str());
    return 1;
  }
  if (!jitAvailable()) {
    std::fprintf(stderr, "no working C compiler (EXO_CC/cc)\n");
    return 1;
  }
  std::vector<ukr::UkrConfig> Family;
  if (Problems.empty()) {
    Family = ukr::standardShapeFamily(MR, NR, Full);
  } else {
    // Planner-driven warm-up: the kernels Engine::sgemm would select for
    // each problem, deduplicated across problems that share tiles.
    std::set<std::string> Seen;
    for (const Problem &P : Problems) {
      std::printf("plan %lldx%lldx%lld:", static_cast<long long>(P.M),
                  static_cast<long long>(P.N), static_cast<long long>(P.K));
      for (const ukr::UkrConfig &Cfg : gemm::planKernelFamily(P.M, P.N, P.K)) {
        std::printf(" %lldx%lld", static_cast<long long>(Cfg.MR),
                    static_cast<long long>(Cfg.NR));
        if (Seen.insert(Cfg.kernelName()).second)
          Family.push_back(Cfg);
      }
      std::printf("\n");
    }
  }
  std::printf("warming %zu kernel(s) into %s with %u worker(s)...\n",
              Family.size(), DC.root().c_str(), Jobs ? Jobs : 2u);
  ukr::KernelService::Options Opts;
  Opts.Workers = Jobs;
  ukr::KernelService Service(Opts);
  Error Err = Service.warm(Family);
  ukr::printCacheStats(Service.stats(), stdout);
  if (Err) {
    std::fprintf(stderr, "%s\n", Err.message().c_str());
    return 1;
  }
  std::printf("warm ok: %zu kernel(s) ready\n", Service.size());
  return 0;
}

int cmdPrune(uint64_t MaxBytes) {
  JitDiskCache &DC = JitDiskCache::global();
  size_t Evicted = DC.prune(MaxBytes);
  std::printf("evicted %zu artifact(s); %zu remain under %s\n", Evicted,
              DC.list().size(), DC.root().c_str());
  return 0;
}

int cmdVerify(bool Fix) {
  JitDiskCache &DC = JitDiskCache::global();
  size_t Bad = 0;
  for (const auto &E : DC.list()) {
    bool Ok = false;
    // An unparsable sidecar is corruption in its own right (the recorded
    // ABI cannot be trusted), even when the .so itself still loads.
    if (!E.MetaCorrupt) {
      if (void *H = dlopen(E.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL)) {
        Ok = E.Meta.Symbol.empty() ||
             dlsym(H, E.Meta.Symbol.c_str()) != nullptr;
        dlclose(H);
      }
    }
    if (Ok)
      continue;
    ++Bad;
    std::printf("corrupt: k%016llx (%s)%s\n",
                static_cast<unsigned long long>(E.Key),
                E.MetaCorrupt ? "unparsable meta" : E.Meta.Symbol.c_str(),
                Fix ? " — removed" : "");
    if (Fix)
      DC.remove(E.Key);
  }
  std::printf("%zu corrupt artifact(s)%s\n", Bad,
              Bad && !Fix ? " (re-run with --fix to remove)" : "");
  return Bad && !Fix ? 1 : 0;
}

int cmdStats(bool JsonOut) {
  // The process-global caches this CLI can observe directly: the shared
  // Engine plan cache, the shared KernelService JIT counters, and the
  // on-disk artifact store. (A running gemmd's live counters travel over
  // the wire instead — see docs/GEMMD.md.)
  gemm::EngineStats ES = gemm::Engine::global().stats();
  ukr::CacheStats US = ukr::globalCacheStats();
  JitDiskCache &DC = JitDiskCache::global();
  std::vector<JitDiskCache::Entry> Entries = DC.list();
  uint64_t DiskBytes = 0;
  for (const auto &E : Entries)
    DiskBytes += E.Bytes;

  if (JsonOut) {
    benchutil::Json Plan = benchutil::Json::object();
    Plan.set("hits", static_cast<int64_t>(ES.Hits));
    Plan.set("misses", static_cast<int64_t>(ES.Misses));
    Plan.set("builds", static_cast<int64_t>(ES.Builds));
    Plan.set("rebuilds", static_cast<int64_t>(ES.Rebuilds));
    Plan.set("evictions", static_cast<int64_t>(ES.Evictions));
    Plan.set("degenerate", static_cast<int64_t>(ES.Degenerate));
    Plan.set("sticky_errors", static_cast<int64_t>(ES.StickyErrors));
    benchutil::Json Jit = benchutil::Json::object();
    Jit.set("hits", static_cast<int64_t>(US.Hits));
    Jit.set("misses", static_cast<int64_t>(US.Misses));
    Jit.set("fallbacks", static_cast<int64_t>(US.Fallbacks));
    Jit.set("builds", static_cast<int64_t>(US.Builds));
    Jit.set("failures", static_cast<int64_t>(US.Failures));
    Jit.set("disk_hits", static_cast<int64_t>(US.DiskHits));
    Jit.set("compiles", static_cast<int64_t>(US.Compiles));
    Jit.set("compile_ms", US.CompileMs);
    benchutil::Json Disk = benchutil::Json::object();
    Disk.set("enabled", DC.enabled());
    Disk.set("root", DC.root());
    Disk.set("artifacts", static_cast<int64_t>(Entries.size()));
    Disk.set("bytes", static_cast<int64_t>(DiskBytes));
    benchutil::Json Root = benchutil::Json::object();
    Root.set("schema", "ukr_cachectl.stats/v1");
    Root.set("plan_cache", std::move(Plan));
    Root.set("jit_cache", std::move(Jit));
    Root.set("disk_cache", std::move(Disk));
    std::printf("%s\n", Root.dump().c_str());
    return 0;
  }

  std::printf("plan cache:  %llu hit / %llu miss, %llu built (%llu rebuilt), "
              "%llu evicted, %llu degenerate, %llu sticky error(s)\n",
              static_cast<unsigned long long>(ES.Hits),
              static_cast<unsigned long long>(ES.Misses),
              static_cast<unsigned long long>(ES.Builds),
              static_cast<unsigned long long>(ES.Rebuilds),
              static_cast<unsigned long long>(ES.Evictions),
              static_cast<unsigned long long>(ES.Degenerate),
              static_cast<unsigned long long>(ES.StickyErrors));
  std::printf("jit cache:   %llu hit / %llu miss, %llu fallback(s), %llu "
              "build(s) (%llu failed), %llu disk hit(s), %llu compile(s) "
              "(%.1f ms)\n",
              static_cast<unsigned long long>(US.Hits),
              static_cast<unsigned long long>(US.Misses),
              static_cast<unsigned long long>(US.Fallbacks),
              static_cast<unsigned long long>(US.Builds),
              static_cast<unsigned long long>(US.Failures),
              static_cast<unsigned long long>(US.DiskHits),
              static_cast<unsigned long long>(US.Compiles), US.CompileMs);
  std::printf("disk cache:  %zu artifact(s), %llu bytes, root %s%s\n",
              Entries.size(), static_cast<unsigned long long>(DiskBytes),
              DC.root().c_str(), DC.enabled() ? "" : " (disabled)");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Cmd;
  int64_t MR = 8, NR = 12;
  bool Full = false, Fix = false, JsonOut = false;
  unsigned Jobs = 0;
  uint64_t MaxBytes = JitDiskCache::configuredMaxBytes();
  std::vector<Problem> Problems;

  for (int I = 1; I < Argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (std::strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = Value("--dir")) {
      JitDiskCache::setGlobalRoot(V);
    } else if (const char *V = Value("--mr")) {
      MR = std::atoll(V);
    } else if (const char *V = Value("--nr")) {
      NR = std::atoll(V);
    } else if (const char *V = Value("--jobs")) {
      Jobs = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--shape")) {
      Problem P;
      long long M = 0, N = 0, K = 0;
      char Trail = 0;
      if (std::sscanf(V, "%lldx%lldx%lld%c", &M, &N, &K, &Trail) != 3 ||
          M < 1 || N < 1 || K < 1) {
        std::fprintf(stderr, "--shape: '%s' is not MxNxK\n", V);
        return 2;
      }
      P.M = M;
      P.N = N;
      P.K = K;
      Problems.push_back(P);
    } else if (const char *V = Value("--model")) {
      const std::vector<dnn::LayerGemm> *Layers = nullptr;
      if (!std::strcmp(V, "resnet"))
        Layers = &dnn::resnet50Layers();
      else if (!std::strcmp(V, "vgg"))
        Layers = &dnn::vgg16Layers();
      else {
        std::fprintf(stderr, "--model: '%s' is not resnet|vgg\n", V);
        return 2;
      }
      for (const dnn::LayerGemm &L : *Layers)
        Problems.push_back(Problem{L.M, L.N, L.K});
    } else if (const char *V = Value("--max-bytes")) {
      char *End = nullptr;
      MaxBytes = std::strtoull(V, &End, 10);
      if (End == V || *End) {
        // A typo must not parse as 0 and evict the whole cache.
        std::fprintf(stderr, "--max-bytes: '%s' is not a byte count\n", V);
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--full")) {
      Full = true;
    } else if (!std::strcmp(Argv[I], "--fix")) {
      Fix = true;
    } else if (!std::strcmp(Argv[I], "--json")) {
      JsonOut = true;
    } else if (!std::strcmp(Argv[I], "--help") ||
               !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    } else if (Argv[I][0] != '-' && Cmd.empty()) {
      Cmd = Argv[I];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    }
  }

  if (Cmd == "list")
    return cmdList();
  if (Cmd == "warm")
    return cmdWarm(MR, NR, Full, Jobs, Problems);
  if (Cmd == "prune")
    return cmdPrune(MaxBytes);
  if (Cmd == "verify")
    return cmdVerify(Fix);
  if (Cmd == "stats")
    return cmdStats(JsonOut);
  usage(Argv[0]);
  return 2;
}
